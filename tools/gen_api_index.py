"""Regenerate docs/API.md from the package's public exports.

Run from the repository root:  python tools/gen_api_index.py
"""

import inspect
import pathlib

import repro
import repro.algorithms
import repro.analysis
import repro.analysis.flow
import repro.baselines
import repro.bench
import repro.core
import repro.graph
import repro.gpusim
import repro.obs
import repro.obs.profile
import repro.plan
import repro.resilience
import repro.serve
import repro.shard

MODULES = (
    repro, repro.gpusim, repro.graph, repro.core,
    repro.algorithms, repro.baselines, repro.bench, repro.analysis,
    repro.analysis.flow, repro.obs, repro.obs.profile, repro.plan,
    repro.resilience, repro.shard, repro.serve,
)


def kind_of(obj) -> str:
    if inspect.ismodule(obj):
        return "module"
    if inspect.isclass(obj):
        return "class"
    if callable(obj):
        return "function"
    return "constant"


def main() -> None:
    lines = [
        "# API index",
        "",
        "Generated from the package's `__all__` exports "
        "(`python tools/gen_api_index.py` regenerates it).",
        "",
    ]
    for module in MODULES:
        lines.append(f"## `{module.__name__}`")
        lines.append("")
        doc = (module.__doc__ or "").strip().splitlines()
        if doc:
            lines.extend([doc[0], ""])
        lines.append("| name | kind | summary |")
        lines.append("|---|---|---|")
        for name in sorted(getattr(module, "__all__", [])):
            obj = getattr(module, name, None)
            summary = ""
            if obj is not None and not isinstance(
                    obj, (int, float, str, tuple, list, dict, set)):
                docline = (inspect.getdoc(obj) or "").strip().splitlines()
                summary = docline[0] if docline else ""
            summary = summary.replace("|", "/")[:100]
            lines.append(f"| `{name}` | {kind_of(obj)} | {summary} |")
        lines.append("")
    target = pathlib.Path(__file__).resolve().parent.parent / "docs" / "API.md"
    target.write_text("\n".join(lines) + "\n")
    print(f"wrote {target}")


if __name__ == "__main__":
    main()
