#!/usr/bin/env python
"""Ratcheted coverage gate.

Compares a coverage report against the committed floor
(``COVERAGE_FLOOR.json``) and fails when total line coverage drops more
than one point below it.  The floor only moves *up*: when the measured
total exceeds the recorded floor, the gate suggests (or, with
``--update``, performs) a ratchet.

Accepts two report formats:

* ``tools/pycov.py`` output — ``{"tool": "pycov", "total_percent": ...}``
  (local runs, no third-party deps);
* coverage.py JSON — ``{"totals": {"percent_covered": ...}}`` as written
  by ``pytest --cov --cov-report=json`` in CI.

Usage::

    python tools/coverage_gate.py coverage.json
    python tools/coverage_gate.py coverage.json --update
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
FLOOR_PATH = REPO / "COVERAGE_FLOOR.json"

#: The gate trips when coverage falls below ``floor - SLACK`` — one point
#: of slack absorbs measurement differences between the local tracer and
#: coverage.py (branch handling of ``while True``, platform-gated lines).
SLACK = 1.0


def total_percent(report: dict) -> float:
    if "total_percent" in report:  # tools/pycov.py
        return float(report["total_percent"])
    if "totals" in report:  # coverage.py json
        return float(report["totals"]["percent_covered"])
    raise SystemExit("unrecognized coverage report format")


def per_module(report: dict) -> dict:
    if "files" in report and report.get("tool") == "pycov":
        return {name: stats["percent"]
                for name, stats in report["files"].items()}
    if "files" in report:  # coverage.py json
        return {
            name: float(stats["summary"]["percent_covered"])
            for name, stats in report["files"].items()
        }
    return {}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="coverage JSON (pycov or coverage.py)")
    parser.add_argument("--floor", default=str(FLOOR_PATH),
                        help="floor file (default COVERAGE_FLOOR.json)")
    parser.add_argument("--update", action="store_true",
                        help="ratchet the floor up to the measured total")
    parser.add_argument("--modules-out", metavar="PATH",
                        help="write the per-module percentages as JSON "
                             "(CI artifact)")
    args = parser.parse_args(argv)

    report = json.loads(pathlib.Path(args.report).read_text())
    measured = total_percent(report)
    floor_file = pathlib.Path(args.floor)
    floor_doc = json.loads(floor_file.read_text())
    floor = float(floor_doc["floor_percent"])

    if args.modules_out:
        modules = dict(sorted(per_module(report).items(),
                              key=lambda kv: kv[1]))
        pathlib.Path(args.modules_out).write_text(
            json.dumps(modules, indent=2) + "\n"
        )
        print(f"per-module report -> {args.modules_out}")

    limit = floor - SLACK
    print(f"coverage: measured {measured:.2f}%, floor {floor:.2f}% "
          f"(gate at {limit:.2f}%)")
    if measured < limit:
        print(f"FAIL: coverage dropped below {limit:.2f}%")
        return 1
    if measured > floor:
        if args.update:
            floor_doc["floor_percent"] = round(measured, 2)
            floor_doc["tool"] = report.get("tool", "coverage.py")
            floor_file.write_text(json.dumps(floor_doc, indent=2) + "\n")
            print(f"floor ratcheted to {measured:.2f}%")
        else:
            print(f"note: measured exceeds floor; ratchet with --update")
    return 0


if __name__ == "__main__":
    sys.exit(main())
