"""Run the full lint stack: gammalint, then ruff and mypy when available.

Usage (from the repository root):

    python tools/lint.py            # everything that is installed
    python tools/lint.py --strict   # fail if ruff/mypy are missing

gammalint (``repro.analysis``) is stdlib-only and always runs.  ruff and
mypy are optional-dependency extras (``pip install -e .[lint]``); outside
CI they may be absent, in which case they are skipped with a notice so the
repo-specific invariants still get checked everywhere.
"""

from __future__ import annotations

import argparse
import pathlib
import shutil
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def run_gammalint(strict: bool = False) -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.analysis.__main__ import main as gammalint_main

    print("== gammalint ==")
    argv = [
        str(REPO_ROOT / "src"),
        "--tests-dir", str(REPO_ROOT / "tests"),
    ]
    if strict:
        # CI mode also audits the waiver ledger: a module-level
        # allow[code] whose code no longer fires is debt to collect.
        argv.append("--check-waivers")
    return gammalint_main(argv)


def run_external(tool: str, args: list[str], strict: bool) -> int:
    if shutil.which(tool) is None:
        print(f"== {tool} == not installed; "
              f"{'FAIL (--strict)' if strict else 'skipped'} "
              "(pip install -e .[lint])")
        return 1 if strict else 0
    print(f"== {tool} ==")
    return subprocess.run([tool, *args], cwd=REPO_ROOT).returncode


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--strict", action="store_true",
        help="treat missing ruff/mypy as failures (CI mode)",
    )
    args = parser.parse_args(argv)
    statuses = [
        run_gammalint(strict=args.strict),
        run_external("ruff", ["check", "src", "tests", "tools"], args.strict),
        run_external("mypy", [], args.strict),
    ]
    return 1 if any(statuses) else 0


if __name__ == "__main__":
    sys.exit(main())
