#!/usr/bin/env python
"""Render and diff ``BENCH_hotpath.json`` perf-trajectory reports.

Usage:
    python tools/perf_report.py                          # render latest
    python tools/perf_report.py old.json --against new.json
    python tools/perf_report.py --min-speedup 1.5 --only SM 4-clique  # gate

``--against`` compares two report files workload-by-workload (fast-pipeline
wall clock).  ``--min-speedup`` exits non-zero if any workload selected by
``--only`` (prefix match; all workloads when omitted) falls below the bar —
CI uses it to keep the fast pipeline honest.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_REPORT = REPO_ROOT / "BENCH_hotpath.json"


def _load(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except OSError as exc:
        raise SystemExit(f"cannot read {path}: {exc}") from exc
    except ValueError as exc:
        raise SystemExit(f"{path} is not valid JSON: {exc}") from exc


def _render(report: dict) -> str:
    lines = [
        f"hot-path perf report — {report.get('created_utc', 'unknown time')}"
        f" (repeats={report.get('repeats', '?')}"
        f"{', quick' if report.get('quick') else ''})",
        "",
        f"{'workload':10s} {'dataset':8s} {'fast':>9s} {'reference':>10s}"
        f" {'speedup':>8s} {'simulated':>11s}  identical",
    ]
    lines.append("-" * len(lines[-1]))
    for row in report.get("workloads", []):
        lines.append(
            f"{row['workload']:10s} {row['dataset']:8s}"
            f" {row['fast_seconds'] * 1e3:8.1f}ms"
            f" {row['reference_seconds'] * 1e3:9.1f}ms"
            f" {row['speedup']:7.2f}x"
            f" {row['simulated_seconds']:10.4f}s"
            f"  {row['results_identical']}"
        )
    return "\n".join(lines)


def _render_diff(old: dict, new: dict) -> str:
    old_rows = {r["workload"]: r for r in old.get("workloads", [])}
    lines = [
        f"{'workload':10s} {'fast before':>12s} {'fast after':>12s}"
        f" {'delta':>8s}",
    ]
    lines.append("-" * len(lines[-1]))
    for row in new.get("workloads", []):
        prev = old_rows.get(row["workload"])
        if prev is None or not prev.get("fast_seconds"):
            lines.append(f"{row['workload']:10s} {'(new)':>12s}"
                         f" {row['fast_seconds'] * 1e3:10.1f}ms {'':>8s}")
            continue
        delta = ((row["fast_seconds"] - prev["fast_seconds"])
                 / prev["fast_seconds"])
        lines.append(
            f"{row['workload']:10s} {prev['fast_seconds'] * 1e3:10.1f}ms"
            f" {row['fast_seconds'] * 1e3:10.1f}ms {delta:+7.1%}"
        )
    return "\n".join(lines)


def _check_speedups(report: dict, bar: float, names: list[str]) -> list[str]:
    failures = []
    for row in report.get("workloads", []):
        if names and not any(row["workload"].startswith(n) for n in names):
            continue
        if not row.get("results_identical", False):
            failures.append(
                f"{row['workload']}: simulated results diverged between"
                " pipelines"
            )
        if row["speedup"] < bar:
            failures.append(
                f"{row['workload']}: speedup {row['speedup']:.2f}x < {bar}x"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", type=Path, nargs="?", default=DEFAULT_REPORT,
                        help=f"report file (default {DEFAULT_REPORT})")
    parser.add_argument("--against", type=Path, default=None,
                        help="second report to diff this one against")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail if speedup falls below this bar")
    parser.add_argument("--only", nargs="*", default=[], metavar="NAME",
                        help="workload name prefixes --min-speedup applies to")
    args = parser.parse_args(argv)

    report = _load(args.report)
    print(_render(report))

    if args.against is not None:
        newer = _load(args.against)
        print(f"\ndiff {args.report.name} -> {args.against.name}:")
        print(_render_diff(report, newer))
        report = newer  # the gate applies to the newer run

    if args.min_speedup is not None:
        failures = _check_speedups(report, args.min_speedup, args.only)
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        scope = ", ".join(args.only) if args.only else "all workloads"
        print(f"\nspeedup gate >= {args.min_speedup}x passed ({scope})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
