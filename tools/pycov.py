#!/usr/bin/env python
"""Dependency-free line coverage for the repro package.

The container image pins the Python toolchain and does not ship
``coverage``/``pytest-cov``, so local runs and the seeded ratchet floor
use this tracer instead: a ``sys.settrace`` hook records every executed
``(file, line)`` inside ``src/repro``, and the denominator comes from
walking compiled code objects' ``co_lines()`` — the same "executable
lines" definition coverage.py uses for statement coverage.

Usage::

    python tools/pycov.py --out coverage.json -- -x -q tests/
    python tools/pycov.py --report --out coverage.json -- -q

Everything after ``--`` is passed to ``pytest.main``.  The JSON written
is understood by ``tools/coverage_gate.py`` (which also accepts
coverage.py's ``coverage json`` format, used in CI).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import threading

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src"
PACKAGE = SRC / "repro"


def executable_lines(path: pathlib.Path) -> set:
    """Line numbers bearing executable code, via recursive co_lines()."""
    source = path.read_text()
    lines: set = set()
    try:
        code = compile(source, str(path), "exec")
    except SyntaxError:
        return lines

    def walk(obj) -> None:
        for __, __, lineno in obj.co_lines():
            if lineno is not None:
                lines.add(lineno)
        for const in obj.co_consts:
            if hasattr(const, "co_lines"):
                walk(const)

    walk(code)
    # compile() attributes the whole module to line 1 via the implicit
    # return; a module docstring line is not meaningfully executable.
    return lines


class Tracer:
    """Collects executed lines for files under ``src/repro``."""

    def __init__(self) -> None:
        self.hits: dict = {}
        self._prefix = str(PACKAGE) + "/"

    def _trace(self, frame, event, arg):
        filename = frame.f_code.co_filename
        if not filename.startswith(self._prefix):
            return None
        if event == "line":
            self.hits.setdefault(filename, set()).add(frame.f_lineno)
        return self._trace

    def install(self) -> None:
        threading.settrace(self._trace)
        sys.settrace(self._trace)

    def uninstall(self) -> None:
        sys.settrace(None)
        threading.settrace(None)  # type: ignore[arg-type]


def build_report(hits: dict) -> dict:
    files = {}
    total_exec = 0
    total_hit = 0
    for path in sorted(PACKAGE.rglob("*.py")):
        exe = executable_lines(path)
        if not exe:
            continue
        covered = hits.get(str(path), set()) & exe
        rel = str(path.relative_to(REPO))
        files[rel] = {
            "executable": len(exe),
            "covered": len(covered),
            "percent": round(100.0 * len(covered) / len(exe), 2),
        }
        total_exec += len(exe)
        total_hit += len(covered)
    percent = round(100.0 * total_hit / total_exec, 2) if total_exec else 0.0
    return {
        "tool": "pycov",
        "total_percent": percent,
        "total_executable": total_exec,
        "total_covered": total_hit,
        "files": files,
    }


def render(report: dict, worst: int = 15) -> str:
    rows = sorted(report["files"].items(), key=lambda kv: kv[1]["percent"])
    width = max(len(name) for name, __ in rows) if rows else 10
    out = [f"{'module'.ljust(width)}  covered/exec   %"]
    for name, stats in rows[:worst]:
        out.append(
            f"{name.ljust(width)}  "
            f"{stats['covered']:>5}/{stats['executable']:<5}  "
            f"{stats['percent']:6.2f}"
        )
    out.append(f"TOTAL {report['total_percent']:.2f}% "
               f"({report['total_covered']}/{report['total_executable']})")
    return "\n".join(out)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="coverage.json",
                        help="report path (default coverage.json)")
    parser.add_argument("--report", action="store_true",
                        help="print the per-module table (worst first)")
    parser.add_argument("pytest_args", nargs="*",
                        help="arguments after -- go to pytest")
    args = parser.parse_args(argv)

    if str(SRC) not in sys.path:
        sys.path.insert(0, str(SRC))
    if str(REPO) not in sys.path:
        sys.path.insert(0, str(REPO))
    import pytest

    tracer = Tracer()
    tracer.install()
    try:
        exit_code = pytest.main(args.pytest_args or ["-q"])
    finally:
        tracer.uninstall()

    report = build_report(tracer.hits)
    pathlib.Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    if args.report:
        print(render(report))
    print(f"coverage: {report['total_percent']:.2f}% -> {args.out}")
    return int(exit_code)


if __name__ == "__main__":
    sys.exit(main())
