#!/usr/bin/env python
"""Perf regression sentinel: gate perf history, and the CI self-smoke.

Two subcommands:

``check``
    Gate the newest record of each matching perf-history cell against its
    baseline window (``repro.obs.profile.check_run``).  Thin wrapper over
    ``repro perf-report`` so scripts can call either spelling; the exit
    codes are the same contract as ``tools/obs_diff.py``:

    ====  ==========  ================================================
    code  mode        meaning
    ====  ==========  ================================================
    0     both        nothing flagged (or nothing to gate)
    0     --warn-only regressions found but reported only
    1     strict      at least one cell flagged as a regression
    2     strict      no history / no matching cell
    ====  ==========  ================================================

``smoke``
    End-to-end self-test the CI perf-sentinel leg runs: execute a small
    workload three times into a scratch history store, assert a fourth
    identical run is NOT flagged, then inject a synthetic 1.3x slowdown
    into one span subtree (``inject_slowdown``) and assert the sentinel
    flags it *and* attributes it to that subtree.  Writes the verdicts
    and the clean run's critical-path report under ``--out``.  Exit 0
    when every assertion holds, 1 otherwise.

Usage:
    PYTHONPATH=src python tools/perf_sentinel.py check \
        --history benchmarks/reports/history --warn-only
    PYTHONPATH=src python tools/perf_sentinel.py smoke --out reports/
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Synthetic slowdown factor the smoke injects (well past the sentinel's
#: 2% simulated-time floor, far below anything a real run would hide).
SMOKE_FACTOR = 1.3
#: Identical baseline runs recorded before the candidate is gated.
SMOKE_BASELINE_RUNS = 3


def _cmd_check(args: argparse.Namespace) -> int:
    """Delegate to ``repro perf-report`` (single implementation of the
    gate; this entry point exists for tool-shaped CI invocations)."""
    from repro.cli import main as repro_main

    argv = ["perf-report", "--history", str(args.history),
            "--window", str(args.window)]
    for flag, value in (("--bench", args.bench),
                        ("--workload", args.workload),
                        ("--arm", args.arm),
                        ("--json", args.json_out)):
        if value is not None:
            argv += [flag, str(value)]
    if args.warn_only:
        argv.append("--warn-only")
    return repro_main(argv)


def _smoke_run():
    """One instrumented triangle-count run on a small Kronecker graph.

    Returns ``(simulated_seconds, clock_buckets, counters, span_records)``.
    Wall time is deliberately not recorded: the smoke asserts on exact
    sentinel behaviour, and only simulated time is deterministic enough
    for "three identical runs" to mean identical.
    """
    from repro import obs
    from repro.algorithms import triangle_count
    from repro.core import Gamma
    from repro.graph import kronecker

    graph = kronecker(7, 4, seed=1)
    collector = obs.install(obs.SpanCollector())
    engine = Gamma(graph)
    try:
        triangle_count(engine)
        collector.finish()
        return (
            engine.platform.clock.total,
            engine.platform.clock.snapshot(),
            engine.platform.counters.snapshot(),
            obs.span_tree_records(collector),
        )
    finally:
        collector.finish()
        engine.close()


def _heaviest_subtree(records) -> str:
    """Deterministic injection target: the heaviest depth-1 subtree."""
    from repro.obs.profile import aggregate_paths, build_tree
    from repro.obs.profile.spantree import path_depth

    paths = aggregate_paths(build_tree(records))
    candidates = [p for p in paths if path_depth(p) == 1]
    if not candidates:
        raise SystemExit("smoke: span tree has no depth-1 subtrees")
    return max(candidates, key=lambda p: (paths[p]["sim_seconds"], p))


def _cmd_smoke(args: argparse.Namespace) -> int:
    from repro.obs.profile import (
        HistoryStore,
        SentinelConfig,
        check_run,
        inject_slowdown,
        render_critical_path,
        render_verdicts,
    )

    out_dir = Path(args.out) if args.out else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)

    failures = []

    def check(ok: bool, what: str) -> None:
        print(("ok   " if ok else "FAIL ") + what)
        if not ok:
            failures.append(what)

    with tempfile.TemporaryDirectory(prefix="perf-sentinel-smoke-") as tmp:
        store = HistoryStore(Path(tmp) / "history")
        config = SentinelConfig()
        runs = [_smoke_run() for __ in range(SMOKE_BASELINE_RUNS + 1)]
        sims = sorted({sim for sim, *__ in runs})
        check(len(sims) == 1,
              f"{len(runs)} runs simulate identically ({sims})")
        for sim, buckets, counters, records in runs:
            store.append(bench="smoke", workload="triangles-kron7",
                         simulated_seconds=sim, clock_buckets=buckets,
                         counters=counters, span_tree=records)

        rows = store.window("smoke", "triangles-kron7",
                            limit=config.window + 1)
        clean = check_run(rows[0], rows[1:], config)
        check(not clean["flagged"], "clean re-run is not flagged")
        check(not clean["insufficient_history"],
              f"window of {len(rows) - 1} is enough history")

        sim, buckets, counters, records = runs[-1]
        target = _heaviest_subtree(records)
        slowed, added = inject_slowdown(records, target, SMOKE_FACTOR)
        check(added > 0.0, f"injection at {target} added {added:.3e} s")
        injected = store.append(
            bench="smoke", workload="triangles-kron7",
            simulated_seconds=sim + added, clock_buckets=buckets,
            counters=counters, span_tree=slowed,
            extra={"injected": {"path": target, "factor": SMOKE_FACTOR}})
        window = store.window("smoke", "triangles-kron7",
                              limit=config.window + 1,
                              before_seq=injected["seq"])
        verdict = check_run(injected, window, config)
        check(verdict["flagged"],
              f"{SMOKE_FACTOR}x slowdown at {target} is flagged")
        flags = {f["metric"]: f for f in verdict["flags"]}
        sim_flag = flags.get("simulated_seconds")
        check(sim_flag is not None, "simulated_seconds carries the flag")
        top = None
        if sim_flag and sim_flag["attribution"]:
            top = sim_flag["attribution"][0]["path"]
        # Deepest-subtree semantics: the top attribution may name a child
        # of the injected subtree (the heavy node inside it), never an
        # unrelated sibling or a bare ancestor.
        check(top is not None
              and (top == target or top.startswith(target + "/")),
              f"top attribution {top!r} lies within {target!r}")

        store.close()
        print()
        print(render_verdicts([clean, verdict]))
        if out_dir is not None:
            (out_dir / "critical-path.txt").write_text(
                render_critical_path(records) + "\n")
            (out_dir / "perf-verdict-clean.json").write_text(
                json.dumps(clean, indent=2, sort_keys=True) + "\n")
            (out_dir / "perf-verdict-injected.json").write_text(
                json.dumps(verdict, indent=2, sort_keys=True) + "\n")
            print(f"\nartifacts written to {out_dir}")

    if failures:
        print(f"\nsmoke FAILED ({len(failures)} assertion(s))",
              file=sys.stderr)
        return 1
    print("\nsmoke passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    chk = sub.add_parser("check", help="gate perf history (exit 0/1/2)")
    chk.add_argument("--history", default="benchmarks/reports/history",
                     metavar="DIR")
    chk.add_argument("--bench")
    chk.add_argument("--workload")
    chk.add_argument("--arm")
    chk.add_argument("--window", type=int, default=8)
    chk.add_argument("--json", metavar="PATH", dest="json_out")
    chk.add_argument("--warn-only", action="store_true")

    smk = sub.add_parser(
        "smoke", help="self-test: inject a 1.3x slowdown, assert flagged "
                      "and attributed")
    smk.add_argument("--out", metavar="DIR",
                     help="write verdicts + critical-path artifacts here")

    args = parser.parse_args(argv)
    if args.command == "check":
        return _cmd_check(args)
    return _cmd_smoke(args)


if __name__ == "__main__":
    sys.exit(main())
