#!/usr/bin/env python
"""Regression gate over run manifests.

Compares the manifests in a candidate file against a baseline file and
exits non-zero when a counter or simulated-time regression exceeds the
thresholds.  Either file may be:

* a bare run manifest (``repro run --manifest-out``), or
* a ``bench_hotpath.py`` report whose ``workloads[*].manifest`` entries
  each carry one.

Manifests are matched by (system, dataset, task); entries present on only
one side are reported but never fail the gate.  The simulation is
deterministic, so on identical code the diff is empty — the thresholds
exist only to absorb intentional cost-model tweaks.

Exit codes (CI asserts on these, so they are a contract):

====  ==========  =====================================================
code  mode        meaning
====  ==========  =====================================================
0     both        within thresholds; or nothing to gate (empty/
                  pre-telemetry baseline, no comparable manifests)
0     --warn-only regressions or a missing candidate were found, but
                  warn-only mode reports and exits clean
1     strict      at least one regression beyond thresholds
2     strict      the candidate file holds no manifests (broken run
                  or wrong path — distinct from "slower")
====  ==========  =====================================================

An *empty baseline* is exit 0 in both modes: a brand-new workload has
nothing to regress against, and failing there would block the first run
that creates the baseline.

Usage:
    PYTHONPATH=src python tools/obs_diff.py BENCH_hotpath.json new.json
    PYTHONPATH=src python tools/obs_diff.py base-manifest.json cand.json \
        --counter-threshold 0.10 --time-threshold 0.05 --warn-only
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs import diff_manifests, format_findings  # noqa: E402

MANIFEST_SCHEMA_PREFIX = "gamma-manifest/"

#: Documented exit codes (see module docstring; CI asserts on them).
EXIT_OK = 0
EXIT_REGRESSIONS = 1
EXIT_NO_CANDIDATE = 2


def _extract(path: Path) -> "dict[tuple, dict]":
    """Map (system, dataset, task) -> manifest for whatever ``path`` holds."""
    data = json.loads(path.read_text())
    if str(data.get("schema", "")).startswith(MANIFEST_SCHEMA_PREFIX):
        key = (data.get("system"), data.get("dataset"), data.get("task"))
        return {key: data}
    manifests = {}
    for row in data.get("workloads", []):
        manifest = row.get("manifest")
        if not manifest:
            continue
        key = (manifest.get("system"), manifest.get("dataset"),
               manifest.get("task"))
        manifests[key] = manifest
    return manifests


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path)
    parser.add_argument("candidate", type=Path)
    parser.add_argument("--counter-threshold", type=float, default=0.10,
                        help="relative counter growth tolerated (default 0.10)")
    parser.add_argument("--time-threshold", type=float, default=0.05,
                        help="relative simulated-time drift tolerated "
                             "(default 0.05)")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but exit 0 (CI soft-launch)")
    args = parser.parse_args(argv)

    base = _extract(args.baseline)
    cand = _extract(args.candidate)
    if not base:
        print(f"{args.baseline}: no manifests found "
              f"(pre-telemetry baseline?); nothing to gate")
        return EXIT_OK
    if not cand:
        print(f"{args.candidate}: no manifests found", file=sys.stderr)
        return EXIT_OK if args.warn_only else EXIT_NO_CANDIDATE

    regressions = 0
    compared = 0
    for key in sorted(base, key=str):
        label = "/".join(str(k) for k in key)
        if key not in cand:
            print(f"[skip] {label}: only in baseline")
            continue
        compared += 1
        findings = diff_manifests(
            base[key], cand[key],
            counter_threshold=args.counter_threshold,
            time_threshold=args.time_threshold,
        )
        regressions += sum(1 for f in findings if f["regression"])
        print(f"== {label} ==")
        print(format_findings(findings))
    for key in sorted(set(cand) - set(base), key=str):
        print(f"[skip] {'/'.join(str(k) for k in key)}: only in candidate")

    if not compared:
        print("no comparable manifests between the two files")
        return EXIT_OK
    if regressions:
        print(f"\n{regressions} regression(s) beyond thresholds",
              file=sys.stderr)
        return EXIT_OK if args.warn_only else EXIT_REGRESSIONS
    print(f"\nOK: {compared} manifest(s) within thresholds")
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
