"""Unified telemetry: hierarchical spans, metrics, exporters, manifests.

The observability layer ties the simulator's three existing signals —
event :class:`~repro.gpusim.stats.Counters`, the simulated
:class:`~repro.gpusim.clock.SimClock`, and wall-clock phase timing — into
one span tree (run → phase → level → kernel) with machine-readable
exports.  See ``docs/OBSERVABILITY.md`` for the span model, the Chrome
trace / JSONL formats, and the manifest-diff regression gate.

The analysis layer on top — critical-path profiling, the perf-history
store, and the regression sentinel — lives in :mod:`repro.obs.profile`
(imported on demand; it pulls in sqlite3 and is not needed on the hot
telemetry path).
"""

from .exporters import (
    chrome_trace,
    chrome_trace_events,
    metrics_jsonl_lines,
    render_bars,
    render_span_tree,
    span_tree_records,
    write_chrome_trace,
    write_metrics_jsonl,
)
from .manifest import (
    attach_query_tags,
    build_manifest,
    diff_manifests,
    format_findings,
    git_revision,
    load_manifest,
    write_manifest,
)
from .metrics import MetricSample, MetricsRegistry
from .spans import (
    NULL_TELEMETRY,
    NullTelemetry,
    Span,
    SpanCollector,
    adopt_platform,
    install,
    uninstall,
)

__all__ = [
    "NULL_TELEMETRY",
    "NullTelemetry",
    "Span",
    "SpanCollector",
    "MetricSample",
    "MetricsRegistry",
    "adopt_platform",
    "install",
    "uninstall",
    "chrome_trace",
    "chrome_trace_events",
    "write_chrome_trace",
    "metrics_jsonl_lines",
    "write_metrics_jsonl",
    "render_bars",
    "render_span_tree",
    "span_tree_records",
    "attach_query_tags",
    "build_manifest",
    "write_manifest",
    "load_manifest",
    "diff_manifests",
    "format_findings",
    "git_revision",
]
