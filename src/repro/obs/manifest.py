"""Run manifests: one JSON document that pins *what ran* and *what it cost*.

A manifest captures the configuration (knobs, dataset, pipeline mode, git
revision) next to the results (counter totals, simulated-time buckets, span
statistics, metric aggregates, derived utilization figures), so two runs
can be diffed mechanically.  ``tools/obs_diff.py`` and ``repro report
--against`` both call :func:`diff_manifests`; the bench harness embeds one
manifest per workload in ``BENCH_hotpath.json``.

Simulated time and counters are deterministic for a fixed configuration,
so any drift between two manifests of the same workload is a real
behavioural change, not noise — which is what makes the regression gate
trustworthy at tight thresholds.
"""

from __future__ import annotations

import json
import math
import pathlib
import subprocess
import time
from typing import Any, Dict, List, Optional

SCHEMA = "gamma-manifest/1"

#: Counter deltas smaller than this never count as regressions (guards
#: tiny workloads where +1 transaction is a huge ratio).
DEFAULT_COUNTER_FLOOR = 8


def git_revision(root: "pathlib.Path | None" = None) -> str:
    """Short git revision of ``root`` (or the CWD); ``unknown`` off-repo."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(root) if root is not None else None,
            capture_output=True, text=True, timeout=10, check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = proc.stdout.strip()
    return rev if proc.returncode == 0 and rev else "unknown"


def _config_dict(config: Any) -> "Dict[str, Any] | None":
    if config is None:
        return None
    if isinstance(config, dict):
        return config
    import dataclasses
    if dataclasses.is_dataclass(config):
        return dataclasses.asdict(config)
    return {"repr": repr(config)}


def _derived_metrics(platform: Any) -> Dict[str, float]:
    """Utilization figures relative to the cost-model ceilings."""
    from ..gpusim import clock as clk
    from ..gpusim import stats as st
    derived: Dict[str, float] = {}
    counters, clock, cost = platform.counters, platform.clock, platform.cost
    pcie_seconds = (clock.time_in(clk.PCIE_UNIFIED)
                    + clock.time_in(clk.PCIE_ZEROCOPY)
                    + clock.time_in(clk.PCIE_EXPLICIT))
    pcie_bytes = counters.get(st.BYTES_H2D) + counters.get(st.BYTES_D2H)
    if pcie_seconds > 0:
        achieved = pcie_bytes / pcie_seconds
        derived["pcie_achieved_bytes_per_s"] = achieved
        derived["pcie_utilization"] = achieved / cost.pcie_bandwidth
    device_seconds = clock.time_in(clk.DEVICE_MEM)
    if device_seconds > 0:
        achieved = counters.get(st.BYTES_DEVICE) / device_seconds
        derived["device_achieved_bytes_per_s"] = achieved
        derived["device_utilization"] = achieved / cost.device_bandwidth
    faults = counters.get(st.PAGE_FAULTS)
    hits = counters.get(st.PAGE_HITS)
    if faults + hits:
        derived["page_hit_rate"] = hits / (faults + hits)
    return derived


def build_manifest(platform: Any, collector: Any = None, *,
                   system: "str | None" = None,
                   dataset: "str | None" = None,
                   task: "str | None" = None,
                   config: Any = None,
                   wall_seconds: "float | None" = None,
                   extra: "Dict[str, Any] | None" = None) -> Dict[str, Any]:
    """Assemble the manifest for one finished run."""
    from .. import perf  # deferred: keeps this module import-light
    manifest: Dict[str, Any] = {
        "schema": SCHEMA,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "git_rev": git_revision(),
        "pipeline": perf.pipeline_mode(),
        "system": system,
        "dataset": dataset,
        "task": task,
        "config": _config_dict(config),
        "simulated_seconds": platform.clock.total,
        "clock_buckets": platform.clock.snapshot(),
        "counters": platform.counters.snapshot(include_zero=True),
        "derived": _derived_metrics(platform),
        "peak": {
            "device_bytes": getattr(platform.device, "peak", 0),
            "host_bytes": platform.host_peak,
        },
    }
    events = list(getattr(platform, "resilience_log", []))
    if events:
        by_type: Dict[str, int] = {}
        for event in events:
            key = event.get("type", "unknown")
            if event.get("kind"):
                key = f"{key}:{event['kind']}"
            elif event.get("policy"):
                key = f"{key}:{event['policy']}"
            by_type[key] = by_type.get(key, 0) + 1
        manifest["resilience"] = {"events": events, "by_type": by_type}
    if wall_seconds is not None:
        manifest["wall_seconds"] = wall_seconds
    if collector is not None:
        attach_collector_summary(manifest, collector)
    if extra:
        manifest["extra"] = extra
    return manifest


def attach_collector_summary(manifest: Dict[str, Any],
                             collector: Any) -> Dict[str, Any]:
    """Fold a collector's span/metric summary into ``manifest`` in place.

    Split out of :func:`build_manifest` so the sharded process executor can
    attach the *coordinator's* (grafted) collector to a manifest document
    that was assembled inside a worker process.
    """
    by_kind: Dict[str, int] = {}
    for span in collector.walk():
        by_kind[span.kind] = by_kind.get(span.kind, 0) + 1
    root = collector.root
    manifest["spans"] = {
        "count": len(collector.spans),
        "max_depth": collector.max_depth(),
        "by_kind": by_kind,
    }
    if root is not None and "wall_seconds" not in manifest:
        manifest["wall_seconds"] = root.wall_seconds
    manifest["metrics"] = collector.metrics.summary()
    return manifest


def attach_query_tags(manifest: Dict[str, Any], *, query_id: int,
                      tenant: str, priority: int = 0,
                      **fields: Any) -> Dict[str, Any]:
    """Tag a manifest with serve-layer query identity, in place.

    The serve scheduler stamps every per-query manifest with the tenant
    and query id so a manifest doubles as the technical half of a billing
    record (``repro.serve.records`` holds the QoS half); extra keyword
    fields (family, plan id, ...) ride along verbatim.
    """
    manifest["query"] = {"id": query_id, "tenant": tenant,
                         "priority": priority, **fields}
    return manifest


def write_manifest(manifest: Dict[str, Any],
                   path: "str | pathlib.Path") -> pathlib.Path:
    target = pathlib.Path(path)
    target.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return target


def load_manifest(path: "str | pathlib.Path") -> Dict[str, Any]:
    return json.loads(pathlib.Path(path).read_text())


# ---------------------------------------------------------------------------
# Diffing
# ---------------------------------------------------------------------------


def diff_manifests(baseline: Dict[str, Any], candidate: Dict[str, Any],
                   counter_threshold: float = 0.10,
                   time_threshold: float = 0.05,
                   counter_floor: int = DEFAULT_COUNTER_FLOOR,
                   ) -> List[Dict[str, Any]]:
    """Compare two manifests; returns findings, regressions flagged.

    A counter regresses when it grows by more than ``counter_threshold``
    relatively *and* more than ``counter_floor`` absolutely.  Simulated
    time regresses past ``time_threshold`` (it is deterministic, so the
    threshold only absorbs intentional cost-model tweaks).  Improvements
    are reported informationally; they never fail the gate.
    """
    findings: List[Dict[str, Any]] = []

    def finite(value: Any) -> bool:
        return isinstance(value, (int, float)) and math.isfinite(value)

    def note(kind: str, name: str, base: float, cand: float,
             regression: bool) -> None:
        ratio: Optional[float] = (
            (cand / base) if (finite(base) and finite(cand) and base)
            else None)
        findings.append({
            "kind": kind, "name": name, "baseline": base, "candidate": cand,
            "ratio": ratio, "regression": regression,
        })

    base_counters = baseline.get("counters", {})
    cand_counters = candidate.get("counters", {})
    for name in sorted(set(base_counters) | set(cand_counters)):
        raw_base = base_counters.get(name, 0)
        raw_cand = cand_counters.get(name, 0)
        if not finite(raw_base) or not finite(raw_cand):
            # NaN/inf guard: a non-finite candidate is a broken run and
            # fails the gate; a non-finite baseline (candidate fine) only
            # warns — recovery from a corrupt baseline must not fail.
            note("counter", name, raw_base, raw_cand,
                 regression=not finite(raw_cand))
            continue
        base = int(raw_base)
        cand = int(raw_cand)
        if cand == base:
            continue
        grew = cand - base
        if base:
            regression = (grew > counter_floor
                          and grew / base > counter_threshold)
            shrank = -grew > counter_floor and -grew / base > counter_threshold
        else:
            regression = grew > counter_floor
            shrank = False
        if regression or shrank:
            note("counter", name, base, cand, regression)

    base_sim = float(baseline.get("simulated_seconds", 0.0))
    cand_sim = float(candidate.get("simulated_seconds", 0.0))
    if not math.isfinite(cand_sim):
        # NaN never compares > threshold, so without this guard a NaN
        # candidate would sail through the gate silently.
        note("sim_time", "simulated_seconds", base_sim, cand_sim,
             regression=True)
    elif not math.isfinite(base_sim):
        note("sim_time", "simulated_seconds", base_sim, cand_sim,
             regression=False)
    elif base_sim > 0 and abs(cand_sim - base_sim) / base_sim > time_threshold:
        note("sim_time", "simulated_seconds", base_sim, cand_sim,
             regression=cand_sim > base_sim)
    elif base_sim == 0.0 and cand_sim > 0.0:
        # Zero-baseline: no ratio exists; report the appearance of
        # simulated time informationally rather than dividing by zero or
        # staying silent.
        note("sim_time", "simulated_seconds", base_sim, cand_sim,
             regression=False)

    base_res = (baseline.get("resilience") or {}).get("by_type", {})
    cand_res = (candidate.get("resilience") or {}).get("by_type", {})
    for name in sorted(set(base_res) | set(cand_res)):
        base = int(base_res.get(name, 0))
        cand = int(cand_res.get(name, 0))
        if cand == base:
            continue
        # Fault/degradation schedules are deterministic for a fixed plan, so
        # any event-count drift is a behavioural change worth flagging; only
        # *new* event types count as regressions (a run newly degrading is a
        # problem, a fault plan firing less often is not).
        note("resilience", name, base, cand, regression=cand > base)

    base_pipe = baseline.get("pipeline")
    cand_pipe = candidate.get("pipeline")
    if base_pipe and cand_pipe and base_pipe != cand_pipe:
        findings.append({
            "kind": "context", "name": "pipeline",
            "baseline": base_pipe, "candidate": cand_pipe,
            "ratio": None, "regression": False,
        })
    return findings


def format_findings(findings: List[Dict[str, Any]]) -> str:
    """Human-readable one-liner per finding."""
    if not findings:
        return "no differences beyond thresholds"
    lines = []
    for f in findings:
        tag = "REGRESSION" if f["regression"] else "note"
        ratio = f" ({f['ratio']:.2f}x)" if isinstance(f["ratio"], float) else ""
        lines.append(
            f"[{tag}] {f['kind']}:{f['name']} "
            f"{f['baseline']} -> {f['candidate']}{ratio}")
    return "\n".join(lines)
