"""Critical-path analysis over a recorded span tree.

The simulator's span tree is sequential within one platform — children of
a span execute one after another — so the *critical path* of a run is the
chain of spans you would attack first to shrink the total: starting at
the root, repeatedly descend into the child with the largest inclusive
simulated time, as long as that child dominates the parent's own self
time.  Every hop reports inclusive time, self time, and the share of the
root it accounts for, so the output reads as "the run is 12 ms; 8 ms of
it is vertex-extension; 6 ms of that is level 2; ...".

Alongside the path itself, :func:`hot_subtrees` ranks aggregated paths by
*self* time — the flat "where do the cycles actually burn" view that the
path's inclusive framing hides.

All functions take flat span records (see
:func:`repro.obs.exporters.span_tree_records`), so they work on live
collectors and on trees replayed from the perf-history store alike.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Sequence

from .spantree import SpanNode, build_tree

__all__ = [
    "critical_path",
    "hot_subtrees",
    "critical_path_report",
    "render_critical_path",
]


def _metric(node: SpanNode, metric: str) -> float:
    return node.sim_seconds if metric == "sim" else node.wall_seconds


def _metric_self(node: SpanNode, metric: str) -> float:
    return (node.sim_self_seconds if metric == "sim"
            else node.wall_self_seconds)


def critical_path(records: Sequence[Dict[str, Any]],
                  metric: str = "sim") -> List[Dict[str, Any]]:
    """The max-inclusive chain from the root, as one row per hop.

    Each row carries ``path``, ``name``, ``depth``, ``inclusive``,
    ``self``, and ``share`` (of the root's inclusive total).  Descent
    stops when a node has no children, or when the node's own self time
    exceeds every child — at that point the node itself is the bottleneck,
    not anything below it.
    """
    root = build_tree(records)
    if root is None:
        return []
    total = _metric(root, metric)
    rows: List[Dict[str, Any]] = []
    node = root
    while True:
        inclusive = _metric(node, metric)
        rows.append({
            "path": node.path,
            "name": node.name,
            "depth": node.depth,
            "inclusive": inclusive,
            "self": _metric_self(node, metric),
            "share": (inclusive / total) if total > 0 else 0.0,
        })
        if not node.children:
            break
        heaviest = max(node.children, key=lambda c: _metric(c, metric))
        if _metric(heaviest, metric) <= 0.0:
            break
        if _metric_self(node, metric) > _metric(heaviest, metric):
            break
        node = heaviest
    return rows


def hot_subtrees(records: Sequence[Dict[str, Any]], metric: str = "sim",
                 top: int = 10) -> List[Dict[str, Any]]:
    """Aggregated paths ranked by *self* time, largest first."""
    root = build_tree(records)
    if root is None:
        return []
    totals: Dict[str, Dict[str, float]] = {}
    for node in root.walk():
        entry = totals.setdefault(
            node.path, {"self": 0.0, "inclusive": 0.0, "count": 0})
        entry["self"] += _metric_self(node, metric)
        entry["inclusive"] += _metric(node, metric)
        entry["count"] += 1
    grand = math.fsum(entry["self"] for entry in totals.values())
    ranked = sorted(
        totals.items(), key=lambda item: (-item[1]["self"], item[0]))
    return [
        {
            "path": path,
            "self": entry["self"],
            "inclusive": entry["inclusive"],
            "count": entry["count"],
            "share": (entry["self"] / grand) if grand > 0 else 0.0,
        }
        for path, entry in ranked[:top]
        if entry["self"] > 0.0
    ]


def critical_path_report(records: Sequence[Dict[str, Any]],
                         metric: str = "sim",
                         top: int = 10) -> Dict[str, Any]:
    """Machine-readable bundle: the path plus the hot-subtree ranking."""
    return {
        "schema": "gamma-critical-path/1",
        "metric": metric,
        "path": critical_path(records, metric),
        "hot_subtrees": hot_subtrees(records, metric, top=top),
    }


def render_critical_path(records: Sequence[Dict[str, Any]],
                         metric: str = "sim", top: int = 8) -> str:
    """Two-part ASCII report: the descent chain, then the self-time bars."""
    from ..exporters import render_bars

    label = "simulated" if metric == "sim" else "wall"
    rows = critical_path(records, metric)
    if not rows:
        return "(no spans recorded)"
    lines = [f"critical path ({label} time):"]
    for row in rows:
        indent = "  " * row["depth"]
        lines.append(
            f"  {indent}{row['name']:<{max(30 - 2 * row['depth'], 8)}} "
            f"{row['inclusive'] * 1e3:9.3f} ms  {row['share'] * 100:5.1f}%"
            f"  (self {row['self'] * 1e3:.3f} ms)"
        )
    hot = hot_subtrees(records, metric, top=top)
    if hot:
        lines.append("")
        lines.append(f"hot subtrees by self {label} time:")
        lines.append(render_bars(
            [(row["path"], row["self"], row["share"]) for row in hot]))
    return "\n".join(lines)
