"""Per-barrier straggler analysis for sharded (BSP) runs.

``ShardedGamma`` closes every user-visible op with a barrier: the slowest
shard sets the superstep's makespan and every other shard charges the
difference to its ``shard_sync`` bucket.  The engine records one
``barrier_log`` entry per barrier (which shard gated it, how long each
peer waited) and one ``exchange_log`` entry per all-gather (payload bytes
per shard), so this module can answer, after the fact:

* which shard gated each superstep, and which ops it gated;
* how unevenly utilization is spread (the skew the partitioning policy
  should be closing);
* who ships the bytes — each shard's share of the exchanged payload.

Everything here is derived from deterministic simulated quantities, so
the report embeds into the canonical sharded manifest without breaking
byte-identical determinism tests.  Single-shard runs have no barriers and
produce no report (``barrier_log`` stays empty), which keeps N=1 runs
bit-identical to unsharded ``Gamma``.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List

__all__ = ["straggler_report", "render_straggler_report"]

STRAGGLER_SCHEMA = "gamma-straggler/1"

#: Barrier detail kept in the report (ranked by wait); the per-shard
#: aggregates always cover every barrier regardless of this cap.
MAX_BARRIER_ROWS = 12


def straggler_report(engine: Any) -> Dict[str, Any]:
    """Build the straggler report from an engine's barrier/exchange logs.

    ``engine`` is duck-typed: anything exposing ``num_shards``,
    ``barrier_log``, ``exchange_log`` and ``shard_utilization()`` works
    (``ShardedGamma`` is the one producer).  Returns an empty-superstep
    report when no barriers were logged.
    """
    barriers: List[Dict[str, Any]] = list(getattr(engine, "barrier_log", []))
    exchanges: List[Dict[str, Any]] = list(getattr(engine, "exchange_log", []))
    num_shards = int(getattr(engine, "num_shards", 0) or 0)
    utilization = [float(u) for u in engine.shard_utilization()]

    gated = [0] * num_shards
    waits = [[] for __ in range(num_shards)]
    for entry in barriers:
        gating = int(entry["gating_shard"])
        if 0 <= gating < num_shards:
            gated[gating] += 1
        for shard, wait in enumerate(entry["waits"][:num_shards]):
            waits[shard].append(float(wait))

    sent = [0] * num_shards
    for entry in exchanges:
        for shard, payload in enumerate(entry["payload_bytes"][:num_shards]):
            sent[shard] += int(payload)
    total_sent = sum(sent)

    per_shard = []
    for shard in range(num_shards):
        per_shard.append({
            "shard": shard,
            "gated_supersteps": gated[shard],
            "wait_seconds": math.fsum(waits[shard]),
            "exchange_bytes": sent[shard],
            "exchange_share": (sent[shard] / total_sent) if total_sent else 0.0,
            "utilization": utilization[shard] if shard < len(utilization)
            else 1.0,
        })

    worst = sorted(
        barriers,
        key=lambda e: (-max(e["waits"], default=0.0), e["superstep"]),
    )[:MAX_BARRIER_ROWS]
    worst_rows = [
        {
            "superstep": entry["superstep"],
            "op": entry["op"],
            "gating_shard": entry["gating_shard"],
            "max_wait_seconds": max(entry["waits"], default=0.0),
        }
        for entry in worst
        if max(entry["waits"], default=0.0) > 0.0
    ]

    return {
        "schema": STRAGGLER_SCHEMA,
        "num_shards": num_shards,
        "supersteps": len(barriers),
        "exchanges": len(exchanges),
        "exchange_bytes_total": total_sent,
        "utilization": utilization,
        "utilization_skew": (max(utilization) - min(utilization)
                             if utilization else 0.0),
        "total_wait_seconds": math.fsum(
            w for shard_waits in waits for w in shard_waits),
        "per_shard": per_shard,
        "worst_barriers": worst_rows,
    }


def render_straggler_report(report: Dict[str, Any]) -> str:
    """Human-readable straggler summary (one table + worst barriers)."""
    if not report.get("supersteps"):
        return "(no barriers recorded; single-shard run?)"
    lines = [
        f"straggler report: {report['num_shards']} shards, "
        f"{report['supersteps']} supersteps, "
        f"{report['exchanges']} exchanges "
        f"({report['exchange_bytes_total']} bytes)",
        f"utilization skew: {report['utilization_skew']:.1%} "
        f"(total barrier wait {report['total_wait_seconds'] * 1e3:.3f} ms)",
        "",
        f"{'shard':>5s} {'gated':>6s} {'wait-ms':>10s} "
        f"{'exch-bytes':>11s} {'share':>6s} {'util':>6s}",
    ]
    for row in report["per_shard"]:
        lines.append(
            f"{row['shard']:5d} {row['gated_supersteps']:6d} "
            f"{row['wait_seconds'] * 1e3:10.3f} "
            f"{row['exchange_bytes']:11d} "
            f"{row['exchange_share'] * 100:5.1f}% "
            f"{row['utilization'] * 100:5.1f}%"
        )
    worst = report.get("worst_barriers") or []
    if worst:
        lines.append("")
        lines.append("worst barriers (by peer wait):")
        for entry in worst:
            lines.append(
                f"  superstep {entry['superstep']:3d}  "
                f"{entry['op']:<24s} gated by shard "
                f"{entry['gating_shard']}  "
                f"max wait {entry['max_wait_seconds'] * 1e3:.3f} ms"
            )
    return "\n".join(lines)
