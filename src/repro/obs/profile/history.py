"""Perf-history store: append-only JSONL with a SQLite lookup index.

Every benchmark run appends one record per (bench, workload, arm) cell to
``benchmarks/reports/history/history.jsonl``.  The JSONL file is the
source of truth — append-only, human-greppable, merge-friendly — and
``index.sqlite`` is a derived index (seq, key columns, byte offsets) that
makes "the last K runs of this cell" a single indexed query instead of a
full-file scan.  The index is rebuilt from the JSONL whenever the two
disagree, so deleting ``index.sqlite`` (or a partial write) is always
recoverable.

Records carry the run's headline metrics (wall seconds, simulated
seconds), the clock-bucket and counter snapshots, and optionally the full
span-tree records (:func:`repro.obs.exporters.span_tree_records`) that
the regression sentinel's subtree attribution needs.

Fork-safe by the same construction as :class:`repro.plan.cache.PlanCache`:
the SQLite connection is opened lazily per ``os.getpid()`` and dropped on
pickling, so a store inherited across ``fork()`` never reuses the
parent's handle.
"""

from __future__ import annotations

import json
import os
import pathlib
import sqlite3
import time
from typing import Any, Dict, List, Optional

from ..manifest import git_revision

__all__ = ["HistoryStore", "HISTORY_SCHEMA"]

HISTORY_SCHEMA = "gamma-perf-history/1"

_INDEX_SCHEMA = """
CREATE TABLE IF NOT EXISTS records (
    seq      INTEGER PRIMARY KEY,
    bench    TEXT NOT NULL,
    workload TEXT NOT NULL,
    arm      TEXT NOT NULL,
    git_rev  TEXT NOT NULL,
    offset   INTEGER NOT NULL,
    length   INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_cell ON records (bench, workload, arm, seq);
"""


class HistoryStore:
    """Append-only perf history under one directory (JSONL + index)."""

    def __init__(self, root: "str | pathlib.Path") -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.jsonl_path = self.root / "history.jsonl"
        self.index_path = self.root / "index.sqlite"
        self._conn: Optional[sqlite3.Connection] = None
        self._conn_pid: Optional[int] = None
        self._sync_index()

    # -- process boundary ----------------------------------------------
    @property
    def _db(self) -> sqlite3.Connection:
        """This process's connection (reopened after a fork)."""
        pid = os.getpid()
        if self._conn is None or self._conn_pid != pid:
            # Never reuse (or close) a handle inherited across fork();
            # drop the reference and open fresh for this pid.
            self._conn = sqlite3.connect(str(self.index_path))
            self._conn_pid = pid
            self._conn.executescript(_INDEX_SCHEMA)
            self._conn.commit()
        return self._conn

    def __getstate__(self) -> Dict[str, Any]:
        state = self.__dict__.copy()
        state["_conn"] = None
        state["_conn_pid"] = None
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)

    def close(self) -> None:
        if self._conn is not None and self._conn_pid == os.getpid():
            self._conn.close()
        self._conn = None
        self._conn_pid = None

    def __enter__(self) -> "HistoryStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- index maintenance ---------------------------------------------
    def _sync_index(self) -> None:
        """Rebuild the index when it disagrees with the JSONL file."""
        lines = self._count_jsonl_lines()
        (indexed,) = self._db.execute(
            "SELECT COUNT(*) FROM records").fetchone()
        if indexed != lines:
            self.reindex()

    def _count_jsonl_lines(self) -> int:
        if not self.jsonl_path.exists():
            return 0
        count = 0
        with self.jsonl_path.open("rb") as fh:
            for line in fh:
                if line.strip():
                    count += 1
        return count

    def reindex(self) -> int:
        """Rebuild ``index.sqlite`` from scratch; returns the row count."""
        db = self._db
        db.execute("DELETE FROM records")
        rows = []
        if self.jsonl_path.exists():
            offset = 0
            with self.jsonl_path.open("rb") as fh:
                for line in fh:
                    length = len(line)
                    if line.strip():
                        record = json.loads(line)
                        rows.append((
                            int(record.get("seq", len(rows) + 1)),
                            str(record.get("bench", "")),
                            str(record.get("workload", "")),
                            str(record.get("arm", "")),
                            str(record.get("git_rev", "unknown")),
                            offset, length,
                        ))
                    offset += length
        db.executemany(
            "INSERT OR REPLACE INTO records "
            "(seq, bench, workload, arm, git_rev, offset, length) "
            "VALUES (?, ?, ?, ?, ?, ?, ?)", rows)
        db.commit()
        return len(rows)

    # -- writing --------------------------------------------------------
    def append(self, *, bench: str, workload: str, arm: str = "",
               wall_seconds: "float | None" = None,
               simulated_seconds: "float | None" = None,
               clock_buckets: "Dict[str, float] | None" = None,
               counters: "Dict[str, int] | None" = None,
               span_tree: "List[Dict[str, Any]] | None" = None,
               git_rev: "str | None" = None,
               extra: "Dict[str, Any] | None" = None) -> Dict[str, Any]:
        """Append one record; returns the record (with its ``seq``)."""
        db = self._db
        row = db.execute("SELECT MAX(seq) FROM records").fetchone()
        seq = int(row[0] or 0) + 1
        record: Dict[str, Any] = {
            "schema": HISTORY_SCHEMA,
            "seq": seq,
            "created_utc": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "git_rev": git_rev if git_rev is not None else git_revision(),
            "bench": bench,
            "workload": workload,
            "arm": arm,
            "wall_seconds": wall_seconds,
            "simulated_seconds": simulated_seconds,
        }
        if clock_buckets:
            record["clock_buckets"] = dict(clock_buckets)
        if counters:
            record["counters"] = dict(counters)
        if span_tree:
            record["span_tree"] = list(span_tree)
        if extra:
            record["extra"] = dict(extra)
        line = json.dumps(record, sort_keys=True) + "\n"
        data = line.encode("utf-8")
        offset = (self.jsonl_path.stat().st_size
                  if self.jsonl_path.exists() else 0)
        with self.jsonl_path.open("ab") as fh:
            fh.write(data)
        db.execute(
            "INSERT INTO records "
            "(seq, bench, workload, arm, git_rev, offset, length) "
            "VALUES (?, ?, ?, ?, ?, ?, ?)",
            (seq, bench, workload, arm, record["git_rev"], offset,
             len(data)),
        )
        db.commit()
        return record

    # -- reading --------------------------------------------------------
    def _read_at(self, offset: int, length: int) -> Dict[str, Any]:
        with self.jsonl_path.open("rb") as fh:
            fh.seek(offset)
            return json.loads(fh.read(length))

    def window(self, bench: str, workload: str, arm: str = "",
               limit: int = 8,
               before_seq: "int | None" = None) -> List[Dict[str, Any]]:
        """Newest-first records for one cell, optionally before ``seq``."""
        query = ("SELECT offset, length FROM records "
                 "WHERE bench = ? AND workload = ? AND arm = ?")
        params: List[Any] = [bench, workload, arm]
        if before_seq is not None:
            query += " AND seq < ?"
            params.append(before_seq)
        query += " ORDER BY seq DESC LIMIT ?"
        params.append(int(limit))
        rows = self._db.execute(query, params).fetchall()
        return [self._read_at(offset, length) for offset, length in rows]

    def latest(self, bench: str, workload: str,
               arm: str = "") -> "Dict[str, Any] | None":
        """The most recent record for one cell, or ``None``."""
        rows = self.window(bench, workload, arm, limit=1)
        return rows[0] if rows else None

    def cells(self) -> List[Dict[str, str]]:
        """Distinct (bench, workload, arm) cells, sorted, with counts."""
        rows = self._db.execute(
            "SELECT bench, workload, arm, COUNT(*) FROM records "
            "GROUP BY bench, workload, arm "
            "ORDER BY bench, workload, arm").fetchall()
        return [
            {"bench": bench, "workload": workload, "arm": arm,
             "count": count}
            for bench, workload, arm, count in rows
        ]

    def __len__(self) -> int:
        (count,) = self._db.execute(
            "SELECT COUNT(*) FROM records").fetchone()
        return int(count)
