"""Portable span trees: flat records in, navigable ``SpanNode`` trees out.

The collector in :mod:`repro.obs.spans` holds live :class:`Span` objects
tied to one process and one run.  The profiler layer needs span trees that
survive a trip through JSON — the perf-history store keeps one tree per
bench record, and the regression sentinel compares a candidate tree
against a baseline tree recorded days (and commits) earlier.  So the unit
of exchange here is the *record*: one plain dict per span, produced by
:func:`repro.obs.exporters.span_tree_records`, with only JSON-stable
scalar/dict fields.

:func:`build_tree` reassembles records into :class:`SpanNode` objects;
:func:`aggregate_paths` collapses a tree into a ``path -> totals`` table
(repeated siblings with the same name sum together), which is the shape
both the critical-path analyzer and the sentinel's subtree attribution
consume.  Paths are ``/``-joined span names from the root, e.g.
``run/phase:extension/level-2``.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Sequence

__all__ = [
    "SpanNode",
    "build_tree",
    "aggregate_paths",
    "path_depth",
]

#: Path separator; span names never start with it, so prefix tests on
#: ``path + SEP`` are unambiguous.
SEP = "/"


class SpanNode:
    """One span reassembled from a record, with child links and a path."""

    __slots__ = (
        "index", "parent", "name", "kind", "level", "depth", "path",
        "wall_seconds", "wall_self_seconds",
        "sim_seconds", "sim_self_seconds",
        "sim_buckets", "sim_self", "counters", "counters_self",
        "children",
    )

    def __init__(self, record: Dict[str, Any]) -> None:
        self.index = int(record.get("index", -1))
        self.parent = int(record.get("parent", -1))
        self.name = str(record.get("name", "?"))
        self.kind = record.get("kind")
        self.level = record.get("level")
        self.depth = int(record.get("depth", 0))
        self.path = self.name  # finalised by build_tree
        self.wall_seconds = float(record.get("wall_seconds", 0.0))
        self.wall_self_seconds = float(record.get("wall_self_seconds", 0.0))
        self.sim_seconds = float(record.get("sim_seconds", 0.0))
        self.sim_self_seconds = float(record.get("sim_self_seconds", 0.0))
        self.sim_buckets = dict(record.get("sim_buckets") or {})
        self.sim_self = dict(record.get("sim_self") or {})
        self.counters = dict(record.get("counters") or {})
        self.counters_self = dict(record.get("counters_self") or {})
        self.children: List["SpanNode"] = []

    def to_record(self) -> Dict[str, Any]:
        """The flat-record form (inverse of :func:`build_tree`)."""
        return {
            "index": self.index,
            "parent": self.parent,
            "name": self.name,
            "kind": self.kind,
            "level": self.level,
            "depth": self.depth,
            "wall_seconds": self.wall_seconds,
            "wall_self_seconds": self.wall_self_seconds,
            "sim_seconds": self.sim_seconds,
            "sim_self_seconds": self.sim_self_seconds,
            "sim_buckets": dict(self.sim_buckets),
            "sim_self": dict(self.sim_self),
            "counters": dict(self.counters),
            "counters_self": dict(self.counters_self),
        }

    def walk(self) -> Iterable["SpanNode"]:
        """This node and every descendant, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SpanNode({self.path!r}, sim={self.sim_seconds:.3e}s, "
                f"children={len(self.children)})")


def _synthetic_root(roots: List[SpanNode]) -> SpanNode:
    """Wrap multiple top-level spans under one virtual root."""
    root = SpanNode({"index": -1, "parent": -1, "name": "(root)", "depth": 0})
    root.children = roots
    root.wall_seconds = math.fsum(r.wall_seconds for r in roots)
    root.sim_seconds = math.fsum(r.sim_seconds for r in roots)
    return root


def build_tree(records: Sequence[Dict[str, Any]]) -> "SpanNode | None":
    """Reassemble flat span records into one tree; ``None`` when empty.

    Records reference parents by ``index``; a record whose parent index is
    absent (or -1) is a root.  If several roots exist (a collector that was
    never bound opens no implicit ``run`` span) they are wrapped under a
    synthetic ``(root)`` node so callers always get a single tree.
    """
    if not records:
        return None
    nodes = [SpanNode(record) for record in records]
    by_index = {node.index: node for node in nodes}
    roots: List[SpanNode] = []
    for node in nodes:
        parent = by_index.get(node.parent)
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent.children.append(node)
    root = roots[0] if len(roots) == 1 else _synthetic_root(roots)
    _assign_paths(root, root.name)
    return root


def _assign_paths(node: SpanNode, path: str) -> None:
    node.path = path
    for child in node.children:
        _assign_paths(child, f"{path}{SEP}{child.name}")


def path_depth(path: str) -> int:
    """Nesting depth of an aggregated path (root = 0)."""
    return path.count(SEP)


def aggregate_paths(root: "SpanNode | None") -> Dict[str, Dict[str, float]]:
    """Collapse a tree into ``path -> totals`` (siblings of a name sum).

    Each entry carries ``sim_seconds`` / ``wall_seconds`` (inclusive),
    ``sim_self_seconds`` / ``wall_self_seconds`` (self), and ``count``
    (how many spans share the path).  Because siblings never nest inside
    each other, summing inclusive time over one path never double-counts;
    ancestor/descendant overlap lives across *different* paths, which is
    what the sentinel's deepest-subtree filter reasons about.
    """
    table: Dict[str, Dict[str, float]] = {}
    if root is None:
        return table
    for node in root.walk():
        entry = table.get(node.path)
        if entry is None:
            entry = {
                "sim_seconds": 0.0, "sim_self_seconds": 0.0,
                "wall_seconds": 0.0, "wall_self_seconds": 0.0,
                "count": 0,
            }
            table[node.path] = entry
        entry["sim_seconds"] += node.sim_seconds
        entry["sim_self_seconds"] += node.sim_self_seconds
        entry["wall_seconds"] += node.wall_seconds
        entry["wall_self_seconds"] += node.wall_self_seconds
        entry["count"] += 1
    return table
