"""Regression sentinel: noise-aware gating plus subtree attribution.

A candidate run is compared against the baseline *window* — the last K
history records of the same (bench, workload, arm) cell.  The threshold
per metric is ``median + max(nsigma * 1.4826 * MAD, min_rel * median)``:
the MAD term absorbs real wall-clock noise (scaled to a normal sigma
equivalent), while the relative floor keeps tiny-MAD windows from turning
scheduler jitter into pages.  Simulated time is deterministic for fixed
code, so its relative floor is much tighter than wall time's.

When a metric is flagged, the sentinel *attributes* the regression: it
diffs the candidate's span tree against the window's representative tree
path-by-path, keeps the subtrees whose inclusive delta explains at least
``attribution_share`` of the total regression, and then drops any
ancestor whose selected descendant already explains it — so the ranked
table points at the *deepest* responsible subtree, not at ``run``.  Runs
without recorded span trees fall back to clock-bucket deltas.

The machine-readable verdict (``gamma-perf-verdict/1``) is what CI
consumes via ``tools/perf_sentinel.py`` / ``repro perf-report``.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from .spantree import SEP, aggregate_paths, build_tree, path_depth

__all__ = [
    "SentinelConfig",
    "check_run",
    "attribute_subtrees",
    "attribute_buckets",
    "inject_slowdown",
    "render_verdicts",
    "VERDICT_SCHEMA",
]

VERDICT_SCHEMA = "gamma-perf-verdict/1"

#: MAD-to-sigma scale for normally distributed noise.
_MAD_SIGMA = 1.4826


@dataclass(frozen=True)
class SentinelConfig:
    """Gating knobs; defaults suit the deterministic-sim, noisy-wall split."""

    #: Baseline window size (records consulted per cell).
    window: int = 8
    #: Minimum completed baseline runs before gating at all.
    min_window: int = 3
    #: MAD multiplier (in sigma equivalents) on top of the median.
    nsigma: float = 4.0
    #: Relative floor for wall-clock metrics (machine noise).
    min_rel_wall: float = 0.10
    #: Relative floor for simulated time (deterministic; drift is real).
    min_rel_sim: float = 0.02
    #: A subtree/bucket must explain at least this share of the
    #: regression delta to appear in the attribution table.
    attribution_share: float = 0.20
    #: Attribution rows kept (deepest-qualifying, ranked by delta).
    max_attributions: int = 8


def _metric_values(window: Sequence[Dict[str, Any]],
                   metric: str) -> List[float]:
    values = []
    for record in window:
        value = record.get(metric)
        if isinstance(value, (int, float)) and math.isfinite(value):
            values.append(float(value))
    return values


def _check_metric(candidate: float, values: List[float], nsigma: float,
                  min_rel: float) -> Dict[str, Any]:
    median = statistics.median(values)
    mad = statistics.median([abs(v - median) for v in values])
    margin = max(nsigma * _MAD_SIGMA * mad, min_rel * abs(median))
    threshold = median + margin
    return {
        "candidate": candidate,
        "median": median,
        "mad": mad,
        "threshold": threshold,
        "ratio": (candidate / median) if median else None,
        "flagged": bool(candidate > threshold and margin > 0.0),
    }


def _representative(window: Sequence[Dict[str, Any]], metric: str,
                    median: float) -> "Dict[str, Any] | None":
    """The window record with a span tree closest to the metric median."""
    best = None
    best_gap = math.inf
    for record in window:
        if not record.get("span_tree"):
            continue
        value = record.get(metric)
        gap = (abs(float(value) - median)
               if isinstance(value, (int, float)) else math.inf)
        if gap < best_gap:
            best, best_gap = record, gap
    return best


def attribute_subtrees(baseline_tree: Sequence[Dict[str, Any]],
                       candidate_tree: Sequence[Dict[str, Any]],
                       *, metric_field: str = "sim_seconds",
                       share: float = 0.20,
                       max_rows: int = 8) -> List[Dict[str, Any]]:
    """Deepest span subtrees whose inclusive delta explains the regression.

    Diffs the aggregated path tables of the two trees on ``metric_field``
    (inclusive).  Qualifying paths explain at least ``share`` of the root
    delta; ancestors of a qualifying path are dropped in its favour, so
    the table names the most specific subtree that carries the slowdown.
    """
    base = aggregate_paths(build_tree(baseline_tree))
    cand = aggregate_paths(build_tree(candidate_tree))
    deltas = {}
    for path in sorted(set(base) | set(cand)):
        delta = (cand.get(path, {}).get(metric_field, 0.0)
                 - base.get(path, {}).get(metric_field, 0.0))
        if delta > 0.0:
            deltas[path] = delta
    if not deltas:
        return []
    root_paths = [p for p in deltas if path_depth(p) == 0]
    total = max((deltas[p] for p in root_paths), default=0.0)
    if total <= 0.0:
        total = max(deltas.values())
    qualifying = {path for path, delta in deltas.items()
                  if delta >= share * total}
    deepest = {
        path for path in qualifying
        if not any(other.startswith(path + SEP) for other in qualifying)
    }
    ranked = sorted(deepest, key=lambda p: (-deltas[p], p))[:max_rows]
    return [
        {
            "kind": "span_subtree",
            "path": path,
            "baseline": base.get(path, {}).get(metric_field, 0.0),
            "candidate": cand.get(path, {}).get(metric_field, 0.0),
            "delta": deltas[path],
            "share_of_regression": deltas[path] / total,
        }
        for path in ranked
    ]


def attribute_buckets(baseline: Dict[str, float],
                      candidate: Dict[str, float],
                      *, share: float = 0.20,
                      max_rows: int = 8) -> List[Dict[str, Any]]:
    """Clock-bucket fallback attribution (no span trees recorded)."""
    deltas = {}
    for name in sorted(set(baseline) | set(candidate)):
        delta = (float(candidate.get(name, 0.0))
                 - float(baseline.get(name, 0.0)))
        if delta > 0.0:
            deltas[name] = delta
    if not deltas:
        return []
    total = math.fsum(deltas.values())
    ranked = sorted(
        (name for name, delta in deltas.items() if delta >= share * total),
        key=lambda n: (-deltas[n], n))[:max_rows]
    return [
        {
            "kind": "clock_bucket",
            "path": name,
            "baseline": float(baseline.get(name, 0.0)),
            "candidate": float(candidate.get(name, 0.0)),
            "delta": deltas[name],
            "share_of_regression": deltas[name] / total,
        }
        for name in ranked
    ]


#: Metric field -> span-tree field carrying its inclusive per-span value.
_TREE_FIELDS = {
    "simulated_seconds": "sim_seconds",
    "wall_seconds": "wall_seconds",
}


def check_run(candidate: Dict[str, Any],
              window: Sequence[Dict[str, Any]],
              config: "SentinelConfig | None" = None) -> Dict[str, Any]:
    """Gate one candidate record against its baseline window.

    Returns a ``gamma-perf-verdict/1`` document: per-metric stats, the
    flagged metrics with their attribution tables, and the top-level
    ``flagged`` bit CI keys off.  Windows smaller than
    ``config.min_window`` produce an unflagged ``insufficient_history``
    verdict — a new workload must build a baseline before it can fail.
    """
    cfg = config or SentinelConfig()
    verdict: Dict[str, Any] = {
        "schema": VERDICT_SCHEMA,
        "bench": candidate.get("bench"),
        "workload": candidate.get("workload"),
        "arm": candidate.get("arm"),
        "candidate_seq": candidate.get("seq"),
        "candidate_git_rev": candidate.get("git_rev"),
        "window": len(window),
        "metrics": {},
        "flags": [],
        "flagged": False,
        "insufficient_history": False,
    }
    for metric in ("simulated_seconds", "wall_seconds"):
        cand_value = candidate.get(metric)
        if not isinstance(cand_value, (int, float)):
            continue
        values = _metric_values(window, metric)
        if len(values) < cfg.min_window:
            verdict["insufficient_history"] = True
            continue
        min_rel = (cfg.min_rel_sim if metric == "simulated_seconds"
                   else cfg.min_rel_wall)
        stats = _check_metric(float(cand_value), values, cfg.nsigma, min_rel)
        verdict["metrics"][metric] = stats
        if not stats["flagged"]:
            continue
        attribution: List[Dict[str, Any]] = []
        attribution_kind = None
        baseline_record = _representative(window, metric, stats["median"])
        if candidate.get("span_tree") and baseline_record is not None:
            attribution = attribute_subtrees(
                baseline_record["span_tree"], candidate["span_tree"],
                metric_field=_TREE_FIELDS[metric],
                share=cfg.attribution_share,
                max_rows=cfg.max_attributions,
            )
            attribution_kind = "span_tree"
        if not attribution and candidate.get("clock_buckets"):
            base_buckets: Dict[str, float] = {}
            counted = 0
            for record in window:
                buckets = record.get("clock_buckets")
                if not buckets:
                    continue
                counted += 1
                for name in sorted(buckets):
                    base_buckets[name] = (base_buckets.get(name, 0.0)
                                          + float(buckets[name]))
            if counted:
                base_buckets = {name: total / counted
                                for name, total in base_buckets.items()}
                attribution = attribute_buckets(
                    base_buckets, candidate["clock_buckets"],
                    share=cfg.attribution_share,
                    max_rows=cfg.max_attributions,
                )
                attribution_kind = "clock_buckets"
        verdict["flags"].append({
            "metric": metric,
            **stats,
            "attribution_kind": attribution_kind,
            "attribution": attribution,
        })
    verdict["flagged"] = bool(verdict["flags"])
    return verdict


def inject_slowdown(records: Sequence[Dict[str, Any]], path: str,
                    factor: float) -> "tuple[List[Dict[str, Any]], float]":
    """Scale one subtree's simulated time by ``factor`` (test/CI helper).

    Returns ``(new_records, added_seconds)``: every span at ``path`` and
    below has its inclusive/self simulated time scaled, and the added
    inclusive time is propagated up through the ancestors so the tree
    stays internally consistent — exactly what a real slowdown in that
    subtree would look like.  Raises ``KeyError`` for an unknown path.
    """
    root = build_tree(records)
    if root is None:
        raise KeyError(f"no spans to inject into (path {path!r})")
    nodes = {node.index: node for node in root.walk()}
    targets = [node for node in root.walk() if node.path == path]
    if not targets:
        raise KeyError(f"span path {path!r} not found")

    scaled = set()
    for target in targets:
        for node in target.walk():
            scaled.add(node.index)
    added = math.fsum(
        node.sim_seconds * (factor - 1.0) for node in targets)

    out: List[Dict[str, Any]] = []
    for record in records:
        record = dict(record)
        index = int(record.get("index", -1))
        if index in scaled:
            record["sim_seconds"] = (
                float(record.get("sim_seconds", 0.0)) * factor)
            record["sim_self_seconds"] = (
                float(record.get("sim_self_seconds", 0.0)) * factor)
            record["sim_buckets"] = {
                name: value * factor
                for name, value in (record.get("sim_buckets") or {}).items()
            }
            record["sim_self"] = {
                name: value * factor
                for name, value in (record.get("sim_self") or {}).items()
            }
        out.append(record)

    # Propagate each target's inclusive delta to its proper ancestors.
    by_index = {int(r.get("index", -1)): r for r in out}
    for target in targets:
        delta = target.sim_seconds * (factor - 1.0)
        parent = nodes.get(target.parent)
        while parent is not None:
            record = by_index.get(parent.index)
            if record is not None and parent.index not in scaled:
                record["sim_seconds"] = (
                    float(record.get("sim_seconds", 0.0)) + delta)
            parent = nodes.get(parent.parent)
    return out, added


def render_verdicts(verdicts: Sequence[Dict[str, Any]]) -> str:
    """Ranked human-readable table over one or more verdicts."""
    lines: List[str] = []
    flagged = [v for v in verdicts if v.get("flagged")]
    clean = [v for v in verdicts if not v.get("flagged")]
    for verdict in sorted(
            flagged,
            key=lambda v: -max((f.get("ratio") or 0.0)
                               for f in v["flags"])):
        cell = (f"{verdict.get('bench')}/{verdict.get('workload')}"
                f"/{verdict.get('arm') or '-'}")
        lines.append(f"REGRESSION {cell} (window {verdict['window']})")
        for flag in verdict["flags"]:
            ratio = flag.get("ratio")
            lines.append(
                f"  {flag['metric']}: {flag['median']:.6g} -> "
                f"{flag['candidate']:.6g}"
                + (f" ({ratio:.2f}x)" if ratio else "")
                + f"  [threshold {flag['threshold']:.6g}]")
            for row in flag.get("attribution") or []:
                lines.append(
                    f"    {row['share_of_regression'] * 100:5.1f}%  "
                    f"{row['path']}  "
                    f"(+{row['delta'] * 1e3:.3f} ms, {row['kind']})")
    for verdict in clean:
        cell = (f"{verdict.get('bench')}/{verdict.get('workload')}"
                f"/{verdict.get('arm') or '-'}")
        note = (" [insufficient history]"
                if verdict.get("insufficient_history") else "")
        lines.append(f"ok         {cell} (window {verdict['window']}){note}")
    return "\n".join(lines) if lines else "(no verdicts)"
