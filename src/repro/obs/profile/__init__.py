"""Profiling & regression attribution over recorded span trees.

Three layers, all reading the PR 3 telemetry rather than producing it
(hence the gammalint ``obs-profile`` exemption from the obs-span rule):

* :mod:`~repro.obs.profile.critical_path` — walk a run's span tree and
  emit the simulated-time critical path, inclusive/self attribution per
  subtree, and the hot-subtree ranking;
* :mod:`~repro.obs.profile.straggler` — per-barrier straggler analysis
  for sharded BSP runs (which shard gated each superstep, utilization
  skew, exchange-bytes share);
* :mod:`~repro.obs.profile.history` + :mod:`~repro.obs.profile.sentinel`
  — the append-only perf-history store every ``benchmarks/bench_*.py``
  run feeds, and the noise-aware (median ± MAD) regression sentinel that
  flags per-workload regressions and attributes each to the deepest span
  subtree or clock bucket whose delta explains it.

See docs/OBSERVABILITY.md ("Profiling & regression attribution").
"""

from .critical_path import (
    critical_path,
    critical_path_report,
    hot_subtrees,
    render_critical_path,
)
from .history import HISTORY_SCHEMA, HistoryStore
from .sentinel import (
    VERDICT_SCHEMA,
    SentinelConfig,
    attribute_buckets,
    attribute_subtrees,
    check_run,
    inject_slowdown,
    render_verdicts,
)
from .spantree import SpanNode, aggregate_paths, build_tree
from .straggler import render_straggler_report, straggler_report

__all__ = [
    "SpanNode",
    "build_tree",
    "aggregate_paths",
    "critical_path",
    "critical_path_report",
    "hot_subtrees",
    "render_critical_path",
    "straggler_report",
    "render_straggler_report",
    "HistoryStore",
    "HISTORY_SCHEMA",
    "SentinelConfig",
    "check_run",
    "attribute_subtrees",
    "attribute_buckets",
    "inject_slowdown",
    "render_verdicts",
    "VERDICT_SCHEMA",
]
