"""Exporters: Chrome trace-event JSON, JSONL metrics, ASCII renderings.

Three consumers, one span tree:

* :func:`write_chrome_trace` emits the Trace Event Format that Perfetto and
  ``chrome://tracing`` load (``{"traceEvents": [...]}`` with complete
  ``ph: "X"`` events).  Two tracks: pid 0 positions spans on the *wall*
  clock; pid 1 replays the same spans on the *simulated* clock, which is
  what the paper's figures are drawn in.
* :func:`write_metrics_jsonl` streams every metric sample as one JSON
  object per line.
* :func:`render_bars` is the ASCII bar layout that
  :class:`repro.gpusim.trace.TraceRecorder` and ``PhaseTimer`` renderings
  delegate to, and :func:`render_span_tree` is the span-tree flavour used
  by ``repro report``.
"""

from __future__ import annotations

import json
import math
import pathlib
from typing import Any, Dict, List, Sequence, Tuple

from .spans import SpanCollector

_US = 1e6  # trace-event timestamps are microseconds


def span_tree_records(collector: SpanCollector) -> List[Dict[str, Any]]:
    """Flatten the collector's spans into JSON-stable records.

    One plain dict per span (index/parent links, inclusive and self wall
    and simulated time, counter and bucket deltas) — the portable form the
    profiler layer (:mod:`repro.obs.profile`) rebuilds trees from and the
    perf-history store persists alongside each bench record.
    """
    records: List[Dict[str, Any]] = []
    for span in collector.walk():
        records.append({
            "index": span.index,
            "parent": span.parent,
            "name": span.name,
            "kind": span.kind,
            "level": span.level,
            "depth": span.depth,
            "wall_seconds": span.wall_seconds,
            "wall_self_seconds": span.wall_self_seconds,
            "sim_seconds": span.sim_seconds,
            "sim_self_seconds": math.fsum(span.sim_self.values()),
            "sim_buckets": dict(span.sim_buckets),
            "sim_self": dict(span.sim_self),
            "counters": dict(span.counters),
            "counters_self": dict(span.counters_self),
        })
    return records


def render_bars(rows: Sequence[Tuple[str, float, float]],
                width: int = 40,
                empty: str = "(nothing recorded)") -> str:
    """``name  ###---  12.3%  4.567 ms`` lines for (name, seconds, share)."""
    if not rows:
        return empty
    name_width = max(len(name) for name, __, __ in rows)
    lines = []
    for name, seconds, share in rows:
        filled = int(round(share * width))
        bar = "#" * filled + "-" * (width - filled)
        lines.append(
            f"{name.ljust(name_width)}  {bar}  {share * 100:5.1f}%  "
            f"{seconds * 1e3:10.3f} ms"
        )
    return "\n".join(lines)


def render_span_tree(collector: SpanCollector, max_depth: "int | None" = None,
                     top_counters: int = 3) -> str:
    """Indented span tree with wall/sim time and the largest self deltas."""
    lines: List[str] = []
    for span in collector.walk():
        if max_depth is not None and span.depth > max_depth:
            continue
        head = f"{'  ' * span.depth}{span.name}"
        if span.level is not None:
            head += f" [level {span.level}]"
        cells = [f"wall {span.wall_seconds * 1e3:9.3f} ms",
                 f"sim {span.sim_seconds * 1e3:9.3f} ms"]
        hot = sorted(span.counters_self.items(), key=lambda kv: -kv[1])
        if hot:
            cells.append(", ".join(
                f"{name}={value}" for name, value in hot[:top_counters]))
        lines.append(f"{head:<44} {'  '.join(cells)}")
    return "\n".join(lines) if lines else "(no spans recorded)"


def chrome_trace_events(collector: SpanCollector) -> List[Dict[str, Any]]:
    """The ``traceEvents`` list for the Trace Event Format."""
    events: List[Dict[str, Any]] = [
        {"ph": "M", "name": "process_name", "pid": 0, "tid": 0,
         "args": {"name": "wall clock"}},
        {"ph": "M", "name": "process_name", "pid": 1, "tid": 0,
         "args": {"name": "simulated GPU"}},
    ]
    root = collector.root
    base = root.t0 if root is not None else 0.0
    for span in collector.walk():
        args: Dict[str, Any] = {"kind": span.kind}
        if span.level is not None:
            args["level"] = span.level
        if span.attrs:
            args.update(span.attrs)
        if span.counters:
            args["counters"] = span.counters
        if span.sim_buckets:
            args["sim_seconds"] = round(span.sim_seconds, 9)
        events.append({
            "ph": "X", "pid": 0, "tid": 0, "cat": span.kind,
            "name": span.name,
            "ts": round((span.t0 - base) * _US, 3),
            "dur": round(span.wall_seconds * _US, 3),
            "args": args,
        })
        # The simulated track only carries spans that charged sim time;
        # nesting is preserved because the sim clock is monotone.
        if span.sim1 > span.sim0:
            events.append({
                "ph": "X", "pid": 1, "tid": 0, "cat": span.kind,
                "name": span.name,
                "ts": round(span.sim0 * _US, 6),
                "dur": round(span.sim_seconds * _US, 6),
                "args": {"kind": span.kind},
            })
    for sample in collector.metrics.samples:
        if sample.labels:
            continue  # labelled samples stay in the JSONL stream
        events.append({
            "ph": "C", "pid": 0, "tid": 0, "name": sample.name,
            "ts": round(sample.t * _US, 3),
            "args": {"value": sample.value},
        })
    return events


def chrome_trace(collector: SpanCollector) -> Dict[str, Any]:
    return {"traceEvents": chrome_trace_events(collector),
            "displayTimeUnit": "ms"}


def write_chrome_trace(collector: SpanCollector,
                       path: "str | pathlib.Path") -> pathlib.Path:
    """Write a Perfetto-loadable trace; returns the path written."""
    target = pathlib.Path(path)
    target.write_text(json.dumps(chrome_trace(collector)))
    return target


def metrics_jsonl_lines(collector: SpanCollector) -> List[str]:
    return [json.dumps(sample.to_json())
            for sample in collector.metrics.samples]


def write_metrics_jsonl(collector: SpanCollector,
                        path: "str | pathlib.Path") -> pathlib.Path:
    """One JSON object per metric sample; returns the path written."""
    target = pathlib.Path(path)
    lines = metrics_jsonl_lines(collector)
    target.write_text("\n".join(lines) + ("\n" if lines else ""))
    return target
