"""Hierarchical telemetry spans: run → phase → level → kernel.

A span is a timed region of the run that snapshots the platform's global
:class:`~repro.gpusim.stats.Counters` and :class:`~repro.gpusim.clock.SimClock`
buckets at entry and exit, so every region gets its own *inclusive* delta
(everything charged while it was open) and *self* delta (inclusive minus the
children's inclusive deltas).  Self deltas partition the run exactly: summed
over every span they reproduce the platform's global totals, which is the
invariant ``tests/obs/test_spans.py`` pins.

Two implementations share one interface:

* :data:`NULL_TELEMETRY` — the default.  Every hook is a no-op and
  ``span()`` returns one cached no-op context manager, so instrumented hot
  paths pay a single attribute load + truthiness test when nobody is
  listening (the overhead budget ``benchmarks/bench_hotpath.py`` asserts).
* :class:`SpanCollector` — records spans, metrics, and gauges for the
  exporters in :mod:`repro.obs.exporters` and the manifest in
  :mod:`repro.obs.manifest`.

This module is deliberately stdlib-only at import time so
``repro.gpusim.platform`` can import it without a cycle.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterator, List, Optional

from .metrics import MetricsRegistry

#: Span kinds used by the built-in instrumentation, outermost first.
RUN = "run"
PHASE = "phase"
LEVEL = "level"
STAGE = "stage"
KERNEL = "kernel"


class _NullSpan:
    """The no-op context manager returned by :class:`NullTelemetry`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """Telemetry sink that drops everything, as cheaply as possible."""

    __slots__ = ()

    #: Hot paths branch on this before building metric payloads.
    active = False

    def span(self, name: str, kind: str = PHASE,
             level: "int | None" = None, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def metric(self, name: str, value: float, **labels: Any) -> None:
        pass

    def gauge(self, name: str, fn: Callable[[], Any]) -> None:
        pass


#: Shared do-nothing sink; platforms point at this until a collector binds.
NULL_TELEMETRY = NullTelemetry()


class Span:
    """One recorded region.  Built by :class:`SpanCollector`, read by
    exporters; not constructed directly by instrumentation code."""

    __slots__ = (
        "index", "name", "kind", "level", "parent", "depth", "attrs",
        "t0", "t1", "sim0", "sim1",
        "counters", "counters_self", "sim_buckets", "sim_self",
        "_entry_counters", "_entry_buckets", "_child_counters",
        "_child_buckets", "_child_wall",
    )

    def __init__(self, index: int, name: str, kind: str,
                 level: "int | None", parent: int, depth: int,
                 attrs: Dict[str, Any]) -> None:
        self.index = index
        self.name = name
        self.kind = kind
        self.level = level
        self.parent = parent          # parent span index, -1 for the root
        self.depth = depth
        self.attrs = attrs
        self.t0 = 0.0                 # wall-clock perf_counter() bounds
        self.t1 = 0.0
        self.sim0 = 0.0               # simulated-clock bounds (total seconds)
        self.sim1 = 0.0
        self.counters: Dict[str, int] = {}        # inclusive deltas
        self.counters_self: Dict[str, int] = {}   # inclusive minus children
        self.sim_buckets: Dict[str, float] = {}
        self.sim_self: Dict[str, float] = {}
        self._entry_counters: "Dict[str, int] | None" = None
        self._entry_buckets: "Dict[str, float] | None" = None
        self._child_counters: Dict[str, int] = {}
        self._child_buckets: Dict[str, float] = {}
        self._child_wall = 0.0

    @property
    def wall_seconds(self) -> float:
        return max(self.t1 - self.t0, 0.0)

    @property
    def wall_self_seconds(self) -> float:
        return max(self.wall_seconds - self._child_wall, 0.0)

    @property
    def sim_seconds(self) -> float:
        return max(self.sim1 - self.sim0, 0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, kind={self.kind!r}, depth={self.depth}, "
                f"wall={self.wall_seconds:.3e}s, sim={self.sim_seconds:.3e}s)")


class _SpanContext:
    """Context manager handed out by :meth:`SpanCollector.span`."""

    __slots__ = ("_collector", "_name", "_kind", "_level", "_attrs", "_span")

    def __init__(self, collector: "SpanCollector", name: str, kind: str,
                 level: "int | None", attrs: Dict[str, Any]) -> None:
        self._collector = collector
        self._name = name
        self._kind = kind
        self._level = level
        self._attrs = attrs
        self._span: "Span | None" = None

    def __enter__(self) -> Span:
        self._span = self._collector._open(
            self._name, self._kind, self._level, self._attrs)
        return self._span

    def __exit__(self, *exc_info: object) -> bool:
        assert self._span is not None
        self._collector._close(self._span)
        return False


def _delta_int(now: Dict[str, int], then: Dict[str, int]) -> Dict[str, int]:
    return {k: d for k, v in now.items() if (d := v - then.get(k, 0))}


def _delta_float(now: Dict[str, float],
                 then: Dict[str, float]) -> Dict[str, float]:
    return {k: d for k, v in now.items() if (d := v - then.get(k, 0.0)) > 0.0}


def _subtract_children(inclusive: Dict[str, Any],
                       children: Dict[str, Any]) -> Dict[str, Any]:
    out = {}
    for key, value in inclusive.items():
        rest = value - children.get(key, 0)
        # Counters are exact ints; sim buckets can pick up float dust.
        if rest > (0.0 if isinstance(rest, float) else 0):
            out[key] = rest
    return out


class SpanCollector:
    """Records a tree of spans plus a :class:`MetricsRegistry`.

    Typical use (what the CLI and benchmarks do)::

        collector = SpanCollector()
        install(collector)            # next platform constructed binds itself
        engine = build_engine(...)    # GpuPlatform.__init__ calls adopt_platform
        run(engine)
        collector.finish()            # closes the root span, polls gauges

    Or bind explicitly when the platform already exists (tests)::

        collector = SpanCollector().attach(platform)

    Binding at platform construction matters: the root ``run`` span's entry
    snapshot is then the all-zero state, so its inclusive deltas equal the
    platform's lifetime totals.
    """

    active = True

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self.metrics = MetricsRegistry()
        self._stack: List[Span] = []
        self._platform: Any = None
        self._t0 = time.perf_counter()
        self._finished = False

    # -- lifecycle ----------------------------------------------------------
    def bind(self, platform: Any) -> "SpanCollector":
        """Point this collector at ``platform`` and open the root span."""
        if self._platform is not None:
            raise RuntimeError("SpanCollector is already bound to a platform")
        self._platform = platform
        platform.attach_telemetry(self)
        if not self._stack:
            self._open("run", RUN, None, {})
        return self

    #: Alias matching ``TraceRecorder.attach`` for symmetry in tests.
    attach = bind

    def finish(self) -> "SpanCollector":
        """Close any open spans (root included) and poll gauges."""
        if self._finished:
            return self
        self._finished = True
        self.metrics.poll_gauges(t=time.perf_counter() - self._t0)
        while self._stack:
            self._close(self._stack[-1])
        if _default_collector() is self:
            uninstall(self)
        if self._platform is not None:
            self._platform.detach_telemetry()
        return self

    def __enter__(self) -> "SpanCollector":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.finish()

    # -- recording ----------------------------------------------------------
    def span(self, name: str, kind: str = PHASE,
             level: "int | None" = None, **attrs: Any) -> _SpanContext:
        """A context manager recording one span under the current one."""
        return _SpanContext(self, name, kind, level, attrs)

    def metric(self, name: str, value: float, **labels: Any) -> None:
        """Record one metric sample, tagged with the open span (if any)."""
        span = self._stack[-1].index if self._stack else None
        self.metrics.record(name, value, labels=labels,
                            t=time.perf_counter() - self._t0, span=span)

    def gauge(self, name: str, fn: Callable[[], Any]) -> None:
        """Register ``fn`` to be sampled once at :meth:`finish`."""
        self.metrics.gauge(name, fn)

    def _open(self, name: str, kind: str, level: "int | None",
              attrs: Dict[str, Any]) -> Span:
        parent = self._stack[-1] if self._stack else None
        span = Span(
            index=len(self.spans), name=name, kind=kind, level=level,
            parent=parent.index if parent else -1,
            depth=parent.depth + 1 if parent else 0, attrs=attrs,
        )
        platform = self._platform
        if platform is not None:
            span._entry_counters = platform.counters.snapshot(include_zero=True)
            span._entry_buckets = platform.clock.snapshot()
            span.sim0 = platform.clock.total
        self.spans.append(span)
        self._stack.append(span)
        span.t0 = time.perf_counter()
        return span

    def _close(self, span: Span) -> None:
        # Tolerate out-of-order exits (generators torn down late): close
        # every span opened after this one first.
        while self._stack and self._stack[-1] is not span:
            self._close(self._stack[-1])
        if self._stack:
            self._stack.pop()
        span.t1 = time.perf_counter()
        platform = self._platform
        if platform is not None:
            span.sim1 = platform.clock.total
            entry_c = span._entry_counters or {}
            entry_b = span._entry_buckets or {}
            span.counters = _delta_int(
                platform.counters.snapshot(include_zero=True), entry_c)
            span.sim_buckets = _delta_float(platform.clock.snapshot(), entry_b)
        span.counters_self = _subtract_children(
            span.counters, span._child_counters)
        span.sim_self = _subtract_children(span.sim_buckets,
                                           span._child_buckets)
        parent = self._stack[-1] if self._stack else None
        if parent is not None:
            for key, value in span.counters.items():
                parent._child_counters[key] = \
                    parent._child_counters.get(key, 0) + value
            for key, fvalue in span.sim_buckets.items():
                parent._child_buckets[key] = \
                    parent._child_buckets.get(key, 0.0) + fvalue
            parent._child_wall += span.wall_seconds

    # -- inspection ---------------------------------------------------------
    @property
    def root(self) -> "Span | None":
        return self.spans[0] if self.spans else None

    def children(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent == span.index]

    def walk(self) -> Iterator[Span]:
        return iter(self.spans)

    def max_depth(self) -> int:
        return max((s.depth for s in self.spans), default=-1) + 1

    def self_counter_totals(self) -> Dict[str, int]:
        """Sum of every span's *self* counter deltas.

        Equals the platform's global counter totals when the collector was
        bound at platform construction — the partition invariant.
        """
        totals: Dict[str, int] = {}
        for span in self.spans:
            for key, value in span.counters_self.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def self_sim_totals(self) -> Dict[str, float]:
        """Sum of every span's *self* simulated-time deltas."""
        totals: Dict[str, float] = {}
        for span in self.spans:
            for key, value in span.sim_self.items():
                totals[key] = totals.get(key, 0.0) + value
        return totals

    # -- grafting -----------------------------------------------------------
    def graft_records(self, records: List[Dict[str, Any]],
                      shard: "int | None" = None) -> List[Span]:
        """Re-root a worker collector's exported span records here.

        ``records`` is the :func:`repro.obs.exporters.span_tree_records`
        form a shard worker ships back over the pipe.  Indices are rebased
        past the spans already recorded, record roots re-parent under the
        currently open span (the coordinator's ``run`` root), and the
        record roots' *inclusive* deltas are charged to that anchor's child
        accumulators — so the anchor's eventual self deltas stay exact and
        the partition invariant (:meth:`self_counter_totals` equals the
        summed worker totals) survives the graft.
        """
        base = len(self.spans)
        anchor = self._stack[-1] if self._stack else None
        depth0 = anchor.depth + 1 if anchor is not None else 0
        grafted: List[Span] = []
        for record in records:
            parent = int(record.get("parent", -1))
            attrs: Dict[str, Any] = {"grafted": True}
            if shard is not None:
                attrs["shard"] = shard
            span = Span(
                index=base + int(record["index"]),
                name=record["name"], kind=record["kind"],
                level=record.get("level"),
                parent=(base + parent if parent >= 0
                        else (anchor.index if anchor is not None else -1)),
                depth=int(record.get("depth", 0)) + depth0,
                attrs=attrs,
            )
            wall = float(record.get("wall_seconds", 0.0))
            span.t1 = wall
            span._child_wall = max(
                wall - float(record.get("wall_self_seconds", 0.0)), 0.0)
            span.sim1 = float(record.get("sim_seconds", 0.0))
            span.counters = dict(record.get("counters", {}))
            span.counters_self = dict(record.get("counters_self", {}))
            span.sim_buckets = dict(record.get("sim_buckets", {}))
            span.sim_self = dict(record.get("sim_self", {}))
            self.spans.append(span)
            grafted.append(span)
            if parent < 0 and anchor is not None:
                for key, value in span.counters.items():
                    anchor._child_counters[key] = \
                        anchor._child_counters.get(key, 0) + value
                for key, fvalue in span.sim_buckets.items():
                    anchor._child_buckets[key] = \
                        anchor._child_buckets.get(key, 0.0) + fvalue
                anchor._child_wall += span.wall_seconds
        return grafted


# ---------------------------------------------------------------------------
# Default-collector slot.  ``GpuPlatform.__init__`` calls
# :func:`adopt_platform`, so a collector installed *before* the engine is
# built covers platform construction in its root span — the CLI relies on
# this because platforms are created deep inside the system factories.
# ---------------------------------------------------------------------------

_DEFAULT: "Optional[SpanCollector]" = None


def install(collector: SpanCollector) -> SpanCollector:
    """Make ``collector`` adopt the next platform constructed."""
    global _DEFAULT
    _DEFAULT = collector
    return collector


def uninstall(collector: "SpanCollector | None" = None) -> None:
    """Clear the default slot (optionally only if it holds ``collector``)."""
    global _DEFAULT
    if collector is None or _DEFAULT is collector:
        _DEFAULT = None


def _default_collector() -> "Optional[SpanCollector]":
    return _DEFAULT


def adopt_platform(platform: Any) -> None:
    """Bind the installed default collector to ``platform`` (first one wins).

    Called from ``GpuPlatform.__init__``; a no-op unless :func:`install`
    was used and the collector is still unbound.
    """
    if _DEFAULT is not None and _DEFAULT._platform is None:
        _DEFAULT.bind(platform)
