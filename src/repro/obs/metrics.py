"""Metrics registry: point samples plus end-of-run gauges.

Samples are flat ``(name, value, labels, t, span)`` records — the JSONL
exporter streams them verbatim, the manifest stores per-name aggregates.
Gauges are zero-argument callables polled once when the collector finishes;
a gauge may return a scalar or a ``{bucket: value}`` dict (histograms such
as the access planner's page-heat profile), which fans out into one sample
per bucket labelled ``bucket=<key>``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple


@dataclass
class MetricSample:
    """One recorded observation."""

    name: str
    value: float
    labels: Dict[str, Any] = field(default_factory=dict)
    #: Seconds since the collector started (wall clock).
    t: float = 0.0
    #: Index of the span that was open when the sample was taken.
    span: Optional[int] = None

    def to_json(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {"name": self.name, "value": self.value,
                                  "t": round(self.t, 6)}
        if self.labels:
            record["labels"] = self.labels
        if self.span is not None:
            record["span"] = self.span
        return record


class MetricsRegistry:
    """Collects :class:`MetricSample` records and end-of-run gauges."""

    def __init__(self) -> None:
        self.samples: List[MetricSample] = []
        self._gauges: List[Tuple[str, Callable[[], Any]]] = []

    def record(self, name: str, value: float,
               labels: "Dict[str, Any] | None" = None,
               t: float = 0.0, span: "int | None" = None) -> None:
        self.samples.append(MetricSample(
            name=name, value=float(value), labels=dict(labels or {}),
            t=t, span=span))

    def gauge(self, name: str, fn: Callable[[], Any]) -> None:
        """Register ``fn`` for a single poll at :meth:`poll_gauges`."""
        self._gauges.append((name, fn))

    def poll_gauges(self, t: float = 0.0) -> None:
        """Sample every registered gauge once (idempotent: clears the list)."""
        gauges, self._gauges = self._gauges, []
        for name, fn in gauges:
            value = fn()
            if isinstance(value, dict):
                for bucket, bucket_value in value.items():
                    self.record(name, bucket_value,
                                labels={"bucket": str(bucket)}, t=t)
            elif value is not None:
                self.record(name, value, t=t)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-name aggregates: count/min/max/sum/last (manifest payload)."""
        out: Dict[str, Dict[str, float]] = {}
        for sample in self.samples:
            agg = out.get(sample.name)
            if agg is None:
                out[sample.name] = {
                    "count": 1, "min": sample.value, "max": sample.value,
                    "sum": sample.value, "last": sample.value,
                }
            else:
                agg["count"] += 1
                agg["min"] = min(agg["min"], sample.value)
                agg["max"] = max(agg["max"], sample.value)
                agg["sum"] += sample.value
                agg["last"] = sample.value
        return out
