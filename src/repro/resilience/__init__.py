"""Resilience layer: fault injection, checkpoint/resume, degradation.

Three cooperating pieces turn the simulator from a system that merely
*reproduces* the paper's crash cells (Figs. 11/12/14) into one that
survives them:

* :mod:`repro.resilience.faults` — a deterministic :class:`FaultInjector`
  driven by a declarative :class:`FaultPlan`, firing device/host OOM,
  pool exhaustion, PCIe stall bursts, and spill I/O errors at span paths.
* :mod:`repro.resilience.checkpoint` — byte-deterministic serialization of
  engine state plus an atomic on-disk :class:`CheckpointManager`; the
  engine checkpoints after every operation (level granularity).
* :mod:`repro.resilience.policies` — graceful-degradation ladder applied
  by ``Gamma.run``: halve the extension chunk size, demote hot unified
  pages to zero-copy, or engage the disk spill tier.

``faults`` and ``checkpoint`` are dependency-light and imported eagerly
(:mod:`repro.gpusim.platform` pulls them in); ``policies`` and ``runner``
touch the core engine and load lazily to avoid import cycles.
"""

from __future__ import annotations

from .checkpoint import (
    CheckpointManager,
    deserialize_state,
    serialize_state,
)
from .faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    NULL_RESILIENCE,
    NullResilience,
    builtin_plan,
    load_plan,
    plan_from_env,
)

__all__ = [
    "FAULT_KINDS",
    "CheckpointManager",
    "DEGRADATION_POLICIES",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "NULL_RESILIENCE",
    "NullResilience",
    "builtin_plan",
    "deserialize_state",
    "get_policy",
    "load_plan",
    "plan_from_env",
    "serialize_state",
]

_LAZY = {"DEGRADATION_POLICIES", "get_policy"}


def __getattr__(name: str):
    if name in _LAZY:
        from . import policies

        return getattr(policies, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
