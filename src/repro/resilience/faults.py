"""Deterministic fault injection driven by declarative fault plans.

A :class:`FaultPlan` is a seeded, serializable list of :class:`FaultSpec`
entries.  Each spec names a *kind* of fault and an ``at`` pattern matched
(``fnmatch``-style) against the current span path — the same slash-joined
hierarchy :mod:`repro.obs.spans` uses, e.g. ``run/phase:vertex-extension/
level:3`` or ``.../io:pool:alloc``.  Injection is purely count-based: the
N-th time a path matches a spec, the fault fires.  No wall clock and no
global RNG are consulted, so a plan replays identically across processes —
which is what lets the crash-matrix tests compare a faulted-then-resumed
run bit-for-bit against an uninterrupted one.

The module is deliberately dependency-light (stdlib + :mod:`repro.errors`)
so :mod:`repro.gpusim.platform` can import it without cycles.  When no plan
is installed, platforms carry :data:`NULL_RESILIENCE`, whose hooks are
no-ops built like ``NULL_TELEMETRY`` — a cached context manager and an
``active = False`` flag the hot paths can branch on.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Dict, List, Optional, Tuple

from ..errors import (
    DeviceOutOfMemory,
    HostOutOfMemory,
    MemoryPoolExhausted,
    SpillIOError,
    WorkerCrashed,
)

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "NULL_RESILIENCE",
    "NullResilience",
    "SpillIOError",
    "builtin_plan",
    "load_plan",
    "plan_from_env",
]


#: Recognised fault kinds and the clock category stall bursts charge.
FAULT_KINDS = (
    "device_oom",       # raise DeviceOutOfMemory at the injection point
    "host_oom",         # raise HostOutOfMemory
    "pool_exhausted",   # raise MemoryPoolExhausted (block pool pressure)
    "pcie_stall",       # non-raising: charge a stall burst to the clock
    "spill_io",         # raise SpillIOError (disk-tier failure)
    "worker_crash",     # raise WorkerCrashed (shard worker dies abruptly)
)

STALL_CATEGORY = "pcie_stall"

#: Clock category for simulated recovery backoff charged by Gamma.run's
#: degradation retry loop.
BACKOFF_CATEGORY = "resilience_backoff"


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault: *kind* fired at the matching span path.

    ``after`` skips the first N path matches; ``count`` bounds how many
    matches after that actually fire (0 means every subsequent match).
    ``seconds`` is the stall duration for ``pcie_stall``; when left at 0 a
    duration is derived deterministically from the plan seed.
    """

    kind: str
    at: str
    after: int = 0
    count: int = 1
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if self.after < 0 or self.count < 0:
            raise ValueError("FaultSpec.after/count must be non-negative")
        if self.seconds < 0:
            raise ValueError("FaultSpec.seconds must be non-negative")

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "at": self.at,
            "after": self.after,
            "count": self.count,
            "seconds": self.seconds,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        return cls(
            kind=data["kind"],
            at=data["at"],
            after=int(data.get("after", 0)),
            count=int(data.get("count", 1)),
            seconds=float(data.get("seconds", 0.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded list of fault specs (JSON round-trippable)."""

    name: str
    specs: Tuple[FaultSpec, ...]
    seed: int = 0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "specs": [s.to_dict() for s in self.specs],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(
            name=str(data.get("name", "unnamed")),
            seed=int(data.get("seed", 0)),
            specs=tuple(FaultSpec.from_dict(s) for s in data.get("specs", [])),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))


def _derived_stall_seconds(seed: int, spec_index: int, firing: int) -> float:
    """Deterministic stall duration in [0.5ms, 1.5ms) from plan seed."""
    state = (seed * 2654435761 + spec_index * 40503 + firing * 9973) & 0xFFFFFFFF
    state = (state * 1103515245 + 12345) & 0x7FFFFFFF
    return 0.5e-3 + (state / 0x7FFFFFFF) * 1.0e-3


class _PhaseContext:
    """Re-entrant push/pop of one path segment on an injector's stack."""

    __slots__ = ("_injector", "_segment")

    def __init__(self, injector: "FaultInjector", segment: str) -> None:
        self._injector = injector
        self._segment = segment

    def __enter__(self) -> "_PhaseContext":
        self._injector._push(self._segment)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._injector._pop()
        return False


class FaultInjector:
    """Matches span paths against a plan and fires faults deterministically.

    Installed on a platform as ``platform.resilience``; the engine brackets
    phases and levels with :meth:`phase` and calls :meth:`io` at discrete
    injection sites (pool allocation, spill reads/writes, region charges).
    Every fired fault is appended to ``platform.resilience_log`` so it lands
    in the run manifest.
    """

    active = True

    def __init__(self, platform, plan: FaultPlan) -> None:
        self.platform = platform
        self.plan = plan
        self._stack: List[str] = []
        # Per-spec count of path matches so far (fired or not); this is the
        # whole injection state, so checkpoints persist just this list.
        self._matches: List[int] = [0] * len(plan.specs)
        self.events: List[dict] = []

    # -- path bookkeeping --------------------------------------------------
    def _push(self, segment: str) -> None:
        self._stack.append(segment)
        self._check(self.path)

    def _pop(self) -> None:
        self._stack.pop()

    @property
    def path(self) -> str:
        return "/".join(["run"] + self._stack) if self._stack else "run"

    def phase(self, segment: str) -> _PhaseContext:
        """Context manager entering ``segment`` on the span path."""
        return _PhaseContext(self, segment)

    def io(self, site: str) -> None:
        """Point injection site, e.g. ``io("pool:alloc")``."""
        self._check(f"{self.path}/io:{site}")

    # -- matching ----------------------------------------------------------
    def _check(self, path: str) -> None:
        for index, spec in enumerate(self.plan.specs):
            if not fnmatchcase(path, spec.at):
                continue
            self._matches[index] += 1
            hit = self._matches[index]
            if hit <= spec.after:
                continue
            if spec.count and hit > spec.after + spec.count:
                continue
            self._fire(spec, index, hit - spec.after, path)

    def _fire(self, spec: FaultSpec, index: int, firing: int,
              path: str) -> None:
        event = {
            "type": "fault-injected",
            "kind": spec.kind,
            "at": spec.at,
            "path": path,
            "firing": firing,
        }
        self.events.append(event)
        log = getattr(self.platform, "resilience_log", None)
        if log is not None:
            log.append(event)
        if spec.kind == "pcie_stall":
            seconds = spec.seconds or _derived_stall_seconds(
                self.plan.seed, index, firing)
            event["seconds"] = seconds
            self.platform.clock.advance(STALL_CATEGORY, seconds)
            return
        available = self.platform.device.available
        if spec.kind == "device_oom":
            raise DeviceOutOfMemory(available + 1, available,
                                    f"fault:{spec.at}")
        if spec.kind == "pool_exhausted":
            raise MemoryPoolExhausted(available + 1, available,
                                      f"fault:{spec.at}")
        if spec.kind == "host_oom":
            spec_host = self.platform.spec.host_memory_bytes
            free = max(0, spec_host - self.platform._host_used)
            raise HostOutOfMemory(free + 1, free, f"fault:{spec.at}")
        if spec.kind == "worker_crash":
            # Inside a shard worker this escapes the serve loop and the
            # process dies via os._exit — the coordinator only ever sees the
            # broken pipe.  Under the serial backend it propagates directly.
            raise WorkerCrashed(f"injected worker crash at {path}")
        raise SpillIOError(path)

    # -- checkpoint support ------------------------------------------------
    def state(self) -> dict:
        return {"matches": list(self._matches)}

    def restore_state(self, state: dict) -> None:
        matches = list(state.get("matches", []))
        if len(matches) == len(self._matches):
            self._matches = [int(m) for m in matches]


class _NullPhase:
    """No-op context manager shared by every null phase() call."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_PHASE = _NullPhase()


class NullResilience:
    """Fault-hook sink used when no fault plan is installed.

    Mirrors ``NullTelemetry``: allocation-free, a cached context manager,
    and an ``active`` flag so hot paths can skip even the call.
    """

    __slots__ = ()

    active = False

    def phase(self, segment: str) -> _NullPhase:
        return _NULL_PHASE

    def io(self, site: str) -> None:
        return None


NULL_RESILIENCE = NullResilience()


#: Small built-in sweep for the CI chaos leg: a couple of deterministic
#: PCIe stall bursts at extension levels plus a late one-shot device OOM.
#: Mild on purpose — most tier-1 tests should still pass under it.
_BUILTIN_PLANS: Dict[str, FaultPlan] = {
    "ci-default": FaultPlan(
        name="ci-default",
        seed=1789,
        specs=(
            # Phases are entered once per op and io sites once per level,
            # so these offsets target the 2nd/3rd op of multi-level runs.
            FaultSpec(kind="pcie_stall", at="*/phase:vertex-extension",
                      after=1, count=2),
            FaultSpec(kind="pcie_stall", at="*/phase:edge-extension",
                      after=1, count=1),
            FaultSpec(kind="pcie_stall", at="*/phase:aggregation",
                      after=1, count=1),
            # One-shot OOM on the *second* level-3 allocation a platform
            # makes: single-workload runs stay clean, repeat offenders on a
            # shared platform get one recoverable fault.
            FaultSpec(kind="device_oom", at="*/level:3/io:pool:alloc",
                      after=1, count=1),
        ),
    ),
    "smoke-stall": FaultPlan(
        name="smoke-stall",
        seed=7,
        specs=(
            FaultSpec(kind="pcie_stall", at="*/level:*", after=0, count=0,
                      seconds=1e-4),
        ),
    ),
}


def builtin_plan(name: str) -> Optional[FaultPlan]:
    return _BUILTIN_PLANS.get(name)


def load_plan(name_or_path: str) -> FaultPlan:
    """Resolve a plan: built-in name first, else a JSON file path."""
    plan = builtin_plan(name_or_path)
    if plan is not None:
        return plan
    try:
        with open(name_or_path, "r", encoding="utf-8") as handle:
            return FaultPlan.from_json(handle.read())
    except OSError as exc:
        raise ValueError(
            f"unknown fault plan {name_or_path!r}: not a built-in "
            f"({', '.join(sorted(_BUILTIN_PLANS))}) and not a readable "
            f"JSON file ({exc})"
        ) from None


_ENV_VAR = "REPRO_FAULT_PLAN"
_env_cache: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)


def plan_from_env() -> Optional[FaultPlan]:
    """The plan named by ``REPRO_FAULT_PLAN``, parsed once per value."""
    global _env_cache
    value = os.environ.get(_ENV_VAR)
    if not value:
        return None
    cached_value, cached_plan = _env_cache
    if cached_value == value:
        return cached_plan
    plan = load_plan(value)
    _env_cache = (value, plan)
    return plan
