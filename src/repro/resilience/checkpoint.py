"""Byte-deterministic checkpoint serialization and on-disk management.

The checkpoint format is deliberately *not* ``np.savez``: zip containers
embed timestamps, so two identical states would serialize to different
bytes and the crash-matrix differential tests could not compare archives
directly.  Instead a state dict is flattened into

``MAGIC | header-length (8 bytes LE) | JSON header | raw array bytes``

where the header is canonical JSON (sorted keys, no whitespace) in which
every ``numpy`` array has been replaced by a placeholder recording dtype,
shape, and its index into the concatenated raw-byte section.  Arrays are
assigned indices in a deterministic traversal order (sorted dict keys,
list order), so ``serialize_state(deserialize_state(b)) == b`` holds for
any well-formed archive — the property the Hypothesis suite checks.

State values may be: ``None``, ``bool``, ``int``, ``float``, ``str``,
lists/tuples (decoded as lists), string-keyed dicts, and numpy arrays.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, List, Optional

import numpy as np

__all__ = [
    "CheckpointManager",
    "MAGIC",
    "deserialize_state",
    "serialize_state",
]

MAGIC = b"GAMMACKPT1\n"

_ARRAY_KEY = "__gamma_array__"


def _encode(value: Any, buffers: List[bytes]) -> Any:
    if isinstance(value, np.ndarray):
        index = len(buffers)
        buffers.append(np.ascontiguousarray(value).tobytes())
        return {
            _ARRAY_KEY: index,
            "dtype": value.dtype.str,
            "shape": list(value.shape),
        }
    if isinstance(value, dict):
        out = {}
        for key in sorted(value):
            if not isinstance(key, str):
                raise TypeError(
                    f"checkpoint dict keys must be str, got {type(key)!r}")
            out[key] = _encode(value[key], buffers)
        return out
    if isinstance(value, (list, tuple)):
        return [_encode(item, buffers) for item in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot checkpoint value of type {type(value)!r}")


def _decode(value: Any, buffers: List[bytes]) -> Any:
    if isinstance(value, dict):
        if _ARRAY_KEY in value:
            raw = buffers[value[_ARRAY_KEY]]
            array = np.frombuffer(raw, dtype=np.dtype(value["dtype"]))
            return array.reshape(value["shape"]).copy()
        return {key: _decode(item, buffers) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode(item, buffers) for item in value]
    return value


def serialize_state(state: dict) -> bytes:
    """Flatten ``state`` into the deterministic archive format."""
    buffers: List[bytes] = []
    doc = _encode(state, buffers)
    header = json.dumps(
        {"state": doc, "buffers": [len(b) for b in buffers]},
        sort_keys=True, separators=(",", ":"),
    ).encode("utf-8")
    parts = [MAGIC, len(header).to_bytes(8, "little"), header]
    parts.extend(buffers)
    return b"".join(parts)


def deserialize_state(blob: bytes) -> dict:
    """Inverse of :func:`serialize_state`."""
    if not blob.startswith(MAGIC):
        raise ValueError("not a GAMMA checkpoint (bad magic)")
    offset = len(MAGIC)
    header_len = int.from_bytes(blob[offset:offset + 8], "little")
    offset += 8
    header = json.loads(blob[offset:offset + header_len].decode("utf-8"))
    offset += header_len
    buffers: List[bytes] = []
    for length in header["buffers"]:
        buffers.append(blob[offset:offset + length])
        offset += length
    if offset != len(blob):
        raise ValueError(
            f"checkpoint trailing bytes: consumed {offset} of {len(blob)}")
    state = _decode(header["state"], buffers)
    if not isinstance(state, dict):
        raise ValueError("checkpoint root must be a dict")
    return state


class CheckpointManager:
    """Owns one checkpoint file inside a directory; writes are atomic."""

    FILENAME = "checkpoint.bin"

    def __init__(self, directory: str) -> None:
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.path = os.path.join(self.directory, self.FILENAME)

    def save(self, state: dict) -> int:
        """Serialize and atomically replace the checkpoint; returns bytes."""
        blob = serialize_state(state)
        fd, tmp = tempfile.mkstemp(dir=self.directory, prefix=".ckpt-")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
            raise
        return len(blob)

    def load(self) -> Optional[dict]:
        """The stored state, or ``None`` when no checkpoint exists yet."""
        try:
            with open(self.path, "rb") as handle:
                blob = handle.read()
        except FileNotFoundError:
            return None
        return deserialize_state(blob)

    def clear(self) -> None:
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass
