"""Engine-state capture/restore for checkpointing and in-process rewind.

The :class:`~repro.core.framework.Gamma` engine journals every user-visible
operation and snapshots its full state after each one (level granularity —
each extension level is one op).  This module owns what a snapshot contains
and how it is re-applied, in two modes:

* **rewind** — in-process, after a degradation policy adjusted the engine:
  restore tables/planners/clock/counters to the post-op-K state, keep the
  journal, and let replay skip ops ``1..K`` before re-running op ``K+1``
  live under the new configuration.
* **restore** — cross-process resume (``Gamma.run(..., resume=True)``): a
  fresh engine rebuilds its structures (charging whatever construction
  costs), re-installs the journaled state, then overwrites the clock,
  counters, and peaks with the checkpointed values — so a resumed run's
  accounting is bit-for-bit the uninterrupted run's.

Everything captured is checkpoint-serializable (see
:mod:`repro.resilience.checkpoint`); the capture itself is *uncharged* —
checkpointing is host-side bookkeeping, not simulated work.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["capture_state", "restore_state", "rewind"]

STATE_VERSION = 1


def _planner_state(planner) -> dict:
    region = planner.region
    buffer = region.buffer
    return {
        "temporal": planner._temporal.copy(),
        "history_volume": float(planner._history_volume),
        "extension_index": int(planner._extension_index),
        "previous_hot": (
            planner._previous_hot.copy()
            if planner._previous_hot is not None else None
        ),
        "overlap": [float(v) for v in planner.hot_overlap_history],
        "region": {
            "unified_mask": region._unified_mask.copy(),
            "mode_version": int(region._mode_version),
            "buffer": {
                "capacity": int(buffer.capacity),
                "resident": buffer._resident.copy(),
                "last_use": buffer._last_use.copy(),
                "tick": int(buffer._tick),
                "n_resident": int(buffer._n_resident),
                "evictions": int(buffer.evictions),
            },
        },
    }


def _apply_planner_state(planner, state: dict) -> None:
    planner._temporal = np.array(state["temporal"], dtype=np.float64)
    planner._history_volume = float(state["history_volume"])
    planner._extension_index = int(state["extension_index"])
    previous = state.get("previous_hot")
    planner._previous_hot = (
        np.array(previous, dtype=np.int64) if previous is not None else None
    )
    planner.hot_overlap_history = [float(v) for v in state.get("overlap", [])]
    region_state = state.get("region")
    if region_state is None:
        return
    region = planner.region
    region._unified_mask = np.array(region_state["unified_mask"], dtype=bool)
    region._mode_version = int(region_state["mode_version"]) + 1
    buf_state = region_state.get("buffer")
    buffer = region.buffer
    # A degradation policy may have shrunk the page buffer between snapshot
    # and rewind; residency bookkeeping only transfers between equal-sized
    # buffers, so a resized buffer restarts cold (results are unaffected —
    # the buffer only shapes charges).
    if buf_state is not None and int(buf_state["capacity"]) == buffer.capacity:
        buffer._resident = np.array(buf_state["resident"], dtype=bool)
        buffer._last_use = np.array(buf_state["last_use"], dtype=np.int64)
        buffer._tick = int(buf_state["tick"])
        buffer._n_resident = int(buf_state["n_resident"])
        buffer.evictions = int(buf_state["evictions"])


def capture_state(gamma) -> dict:
    """Snapshot everything a resumed run needs, as a serializable dict."""
    platform = gamma.platform
    injector = platform.resilience
    return {
        "version": STATE_VERSION,
        "op_count": len(gamma._journal) if gamma._journal is not None else 0,
        "journal": [
            {"kind": record["kind"], "payload": record["payload"]}
            for record in (gamma._journal or [])
        ],
        "clock": platform.clock.snapshot(),
        "counters": platform.counters.snapshot(include_zero=True),
        "host_used": int(platform._host_used),
        "host_peak": int(platform._host_peak),
        "host_registered_once": bool(platform._host_registered_once),
        "device_peak": int(platform.device.peak),
        "edge_engine": gamma._edge_engine_cache is not None,
        # Lazy residence structures whose (charged) construction must be
        # re-forced on restore so later live ops don't pay it twice.
        "edge_slots": gamma.residence._edge_slots is not None,
        "endpoints": gamma.residence._endpoints_src is not None,
        "tables": [
            {
                "kind": table.kind,
                "name": table.name,
                "columns": table.snapshot_columns(),
            }
            for table in gamma._tables
        ],
        "planners": {
            name: _planner_state(planner)
            for name, planner in gamma.planners.items()
        },
        "injector": injector.state() if injector.active else None,
        "resilience_log": [dict(e) for e in platform.resilience_log],
    }


def _apply_state(gamma, state: dict, restore_log: bool) -> None:
    platform = gamma.platform

    # Structures first: force the lazy edge engine into existence (its
    # planner/region appear in the snapshot), rebuild missing tables, and
    # reload table contents.  All construction charges are junk — the clock
    # and counters are overwritten below.
    if state.get("edge_engine"):
        __ = gamma._edge_engine
    if state.get("edge_slots"):
        __ = gamma.residence.edge_slots
    if state.get("endpoints"):
        gamma.residence._endpoints()
    for index, record in enumerate(state.get("tables", [])):
        if index < len(gamma._tables):
            table = gamma._tables[index]
        else:
            table = gamma._build_table(record["kind"], record["name"])
        table.restore_columns(record["columns"])

    for name, planner_state in state.get("planners", {}).items():
        planner = gamma.planners.get(name)
        if planner is not None:
            _apply_planner_state(planner, planner_state)

    if restore_log:
        # Cross-process resume: re-arm the injector's match counters so a
        # run resumed under the same plan replays the fault schedule
        # deterministically.  In-process rewinds deliberately skip this —
        # a fired one-shot fault already happened in this process's
        # timeline and must not refire on the retry.
        injector_state = state.get("injector")
        if injector_state is not None and platform.resilience.active:
            platform.resilience.restore_state(injector_state)
        platform.resilience_log[:] = [
            dict(e) for e in state.get("resilience_log", [])
        ]

    # Accounting last, overwriting every junk charge made above.
    platform.clock.restore(state["clock"])
    platform.counters.restore(state["counters"])
    platform._host_used = int(state["host_used"])
    platform._host_peak = int(state["host_peak"])
    platform._host_registered_once = bool(state["host_registered_once"])
    platform.device._peak = int(state["device_peak"])

    # Replay bookkeeping: skip the journaled ops, then run live.
    gamma._journal = [
        {"kind": record["kind"], "payload": record["payload"]}
        for record in state.get("journal", [])
    ]
    gamma._replay_cursor = int(state.get("op_count", len(gamma._journal)))
    gamma._op_index = 0


def restore_state(gamma, state: dict) -> None:
    """Cross-process resume: apply a loaded checkpoint to a fresh engine."""
    _apply_state(gamma, state, restore_log=True)


def rewind(gamma, state: Optional[dict] = None) -> None:
    """In-process rewind to the last snapshot (after a degradation step).

    The platform's resilience log is left as-is so the fault/degradation
    events that triggered the rewind survive into the run manifest.
    """
    if state is None:
        state = gamma._last_state
    if state is None:
        raise RuntimeError("no snapshot to rewind to")
    _apply_state(gamma, state, restore_log=False)
