"""Graceful-degradation policies for memory pressure mid-run.

When :meth:`Gamma.run <repro.core.framework.Gamma.run>` catches a memory
fault (device OOM, pool exhaustion, host OOM) or a transient spill I/O
error, it asks the configured policy what to change before rewinding to
the last level checkpoint and retrying.  A policy's :meth:`apply` returns
an event dict describing the adjustment (recorded in the run manifest) or
``None`` to give up, in which case the original exception propagates.

The ladder, mirroring the paper's memory hierarchy (device → host → disk):

* ``halve-chunk`` — re-run the failing extension in row chunks, halving
  the chunk size each attempt.  Smaller chunks shrink the per-call device
  working set (candidate buffers, pre-allocated result blocks) without
  changing the embeddings produced.
* ``demote-pages`` — flip every access planner to zero-copy, drop the hot
  unified pages and shrink the page buffer to one page, returning its
  device bytes to the allocator.  Slower per access, but frees the single
  largest fixed device allocation.
* ``spill`` — engage the disk tier of :mod:`repro.core.spill`: attach a
  spill store to every embedding table with a shrinking host budget, so
  cold columns (and oversized new ones) stream to disk instead of OOMing.

All three treat :class:`~repro.errors.SpillIOError` as transient — the
fault injector models I/O error bursts, so a plain retry is the fix.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import DeviceOutOfMemory, HostOutOfMemory, SpillIOError

__all__ = ["DEGRADATION_POLICIES", "get_policy"]


class HalveChunkPolicy:
    """Retry the failing level with a halved extension chunk size."""

    name = "halve-chunk"

    #: First engagement caps extension chunks at this many rows; every
    #: further attempt halves it, down to one row.
    initial_chunk_rows = 1 << 14

    def apply(self, gamma, exc, attempt: int) -> Optional[dict]:
        if isinstance(exc, SpillIOError):
            return {"action": "retry", "site": exc.site}
        if not isinstance(exc, DeviceOutOfMemory):
            return None
        engines = [gamma._vertex_engine]
        if gamma._edge_engine_cache is not None:
            engines.append(gamma._edge_engine_cache)
        current = engines[0].chunk_rows
        chunk = self.initial_chunk_rows if current is None else current // 2
        if chunk < 1:
            return None
        for engine in engines:
            engine.chunk_rows = chunk
        return {"action": "halve-chunk", "chunk_rows": chunk}


class DemotePagesPolicy:
    """Demote hot unified pages to zero-copy and free the page buffers."""

    name = "demote-pages"

    def __init__(self) -> None:
        self._applied = False

    def apply(self, gamma, exc, attempt: int) -> Optional[dict]:
        if isinstance(exc, SpillIOError):
            return {"action": "retry", "site": exc.site}
        if not isinstance(exc, DeviceOutOfMemory) or self._applied:
            return None
        from ..core.access_planner import ZEROCOPY_ONLY

        self._applied = True
        freed = 0
        for planner in gamma.planners.values():
            planner.mode = ZEROCOPY_ONLY
            # Zero-copy planning never touches the region again, so the
            # demotion itself must clear the unified page set before the
            # buffer shrinks underneath it.
            planner.region.set_unified_pages(np.empty(0, dtype=np.int64))
            freed += planner.region.shrink_buffer(1)
        return {"action": "demote-pages", "freed_bytes": freed}


class EngageSpillPolicy:
    """Engage the disk spill tier with a shrinking host budget."""

    name = "spill"

    def __init__(self) -> None:
        self._budget: int | None = None

    def apply(self, gamma, exc, attempt: int) -> Optional[dict]:
        if isinstance(exc, SpillIOError):
            return {"action": "retry", "site": exc.site}
        if not isinstance(exc, (DeviceOutOfMemory, HostOutOfMemory)):
            return None
        from ..core.spill import SpillPolicy, SpillStore

        if self._budget is None:
            self._budget = max(1, gamma.platform.spec.host_memory_bytes // 4)
        else:
            self._budget //= 2
            if self._budget < 1:
                return None
        if gamma._spill_store is None:
            gamma._spill_store = SpillStore(gamma.platform)
        policy = SpillPolicy(self._budget, keep_columns=1)
        # Cover tables created after this point too (replay rebuilds them
        # through the engine, which consults ``_spill_policy_override``).
        gamma._spill_policy_override = policy
        for table in gamma._tables:
            table.attach_spill(gamma._spill_store, policy)
        return {"action": "spill", "host_budget_bytes": self._budget}


DEGRADATION_POLICIES = {
    policy.name: policy
    for policy in (HalveChunkPolicy, DemotePagesPolicy, EngageSpillPolicy)
}


def get_policy(name: str):
    """A fresh policy instance for ``name`` (see :data:`DEGRADATION_POLICIES`)."""
    try:
        cls = DEGRADATION_POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(DEGRADATION_POLICIES))
        raise ValueError(f"unknown degradation policy {name!r} (one of: {known})")
    return cls()
