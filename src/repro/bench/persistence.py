"""Result persistence and regression diffing.

Figure reports are archived as JSON so successive benchmark runs can be
diffed: a calibration change that silently flips a cell from a win to a
loss (or a crash) should be caught by comparing against the last archived
run, not by eyeballing tables.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, List

from .figures import FigureReport


def report_to_dict(report: FigureReport) -> dict:
    """JSON-serializable view of a figure report."""
    return {
        "figure": report.figure,
        "title": report.title,
        "checks": list(report.checks),
        "rows": [dict(row) for row in report.rows],
        "results": [
            {
                "system": r.system,
                "dataset": r.dataset,
                "task": r.task,
                "simulated_seconds": r.simulated_seconds,
                "peak_memory_bytes": r.peak_memory_bytes,
                "crashed": r.crashed,
                "crash_reason": r.crash_reason,
            }
            for r in report.results
        ],
    }


def save_report(report: FigureReport, path: str | os.PathLike) -> None:
    """Write one report as JSON."""
    with open(path, "w") as handle:
        json.dump(report_to_dict(report), handle, indent=2, sort_keys=True)


def load_report_dict(path: str | os.PathLike) -> dict:
    """Read a previously saved report (as a plain dict)."""
    with open(path) as handle:
        return json.load(handle)


def diff_reports(
    old: dict, new: dict, tolerance: float = 0.25
) -> List[str]:
    """Human-readable regressions between two saved reports.

    Flags: check-status changes, crash-status changes, and simulated-time
    movements beyond ``tolerance`` (relative).  Returns an empty list when
    nothing regressed.
    """
    problems: List[str] = []

    old_checks = {c.split("] ", 1)[-1].split(":", 1)[0]: c for c in old["checks"]}
    new_checks = {c.split("] ", 1)[-1].split(":", 1)[0]: c for c in new["checks"]}
    for key, new_line in new_checks.items():
        old_line = old_checks.get(key)
        if old_line is None:
            continue
        old_ok = old_line.startswith("[OK")
        new_ok = new_line.startswith("[OK")
        if old_ok and not new_ok:
            problems.append(f"check regressed: {key}")

    def index(results: Iterable[dict]) -> dict:
        return {
            (r["system"], r["dataset"], r["task"]): r for r in results
        }

    old_cells = index(old.get("results", []))
    new_cells = index(new.get("results", []))
    for key, new_cell in new_cells.items():
        old_cell = old_cells.get(key)
        if old_cell is None:
            continue
        if old_cell["crashed"] != new_cell["crashed"]:
            problems.append(
                f"crash status changed for {key}: "
                f"{old_cell['crashed']} -> {new_cell['crashed']}"
            )
            continue
        t_old = old_cell.get("simulated_seconds")
        t_new = new_cell.get("simulated_seconds")
        if t_old and t_new and t_old > 0:
            drift = abs(t_new - t_old) / t_old
            if drift > tolerance:
                problems.append(
                    f"time drifted {drift * 100:.0f}% for {key}: "
                    f"{t_old * 1e3:.3f} -> {t_new * 1e3:.3f} ms"
                )
    return problems
