"""Crossover map: at what device size does each system stop working?

The paper's scalability claim can be stated as a boundary: for a fixed
workload, each in-core system has a minimum device-memory size below which
it crashes, while GAMMA's requirement stays flat (its large structures are
host-resident).  This driver sweeps the simulated device size across
powers of two and records each system's outcome — a direct visualization
of "an order of magnitude better scalability in graph size" read along the
memory axis instead.
"""

from __future__ import annotations

from typing import List, Sequence

from ..algorithms import count_kcliques
from ..baselines import GSI, PangolinGPU
from ..core.framework import Gamma, GammaConfig
from ..errors import GammaError
from ..graph import datasets
from ..gpusim.platform import make_platform
from .figures import FigureReport
from .reporting import format_table, shape_check

MIB = 1 << 20


def device_size_sweep(
    dataset: str = "CP",
    k: int = 4,
    sizes_mib: Sequence[int] = (1, 2, 4, 8, 16, 32),
) -> FigureReport:
    """Run kCL-k per system per device size; cells are times or crashes."""
    graph = datasets.load(dataset)
    rows: List[dict] = []
    min_ok = {"GAMMA": None, "Pangolin-GPU": None, "GSI": None}

    def attempt(name, build):
        try:
            engine = build()
            try:
                count_kcliques(engine, k)
                return f"{engine.simulated_seconds * 1e3:.3f}"
            finally:
                engine.close()
        except GammaError as exc:
            return type(exc).__name__

    for size in sizes_mib:
        nbytes = size * MIB
        cells = {
            "GAMMA": attempt("GAMMA", lambda: Gamma(
                graph, GammaConfig(device_memory_bytes=nbytes)
            )),
            "Pangolin-GPU": attempt("Pangolin-GPU", lambda: PangolinGPU(
                graph, platform=make_platform(device_memory_bytes=nbytes)
            )),
            "GSI": attempt("GSI", lambda: GSI(
                graph, platform=make_platform(device_memory_bytes=nbytes)
            )),
        }
        for name, cell in cells.items():
            if min_ok[name] is None and not cell.endswith("Memory"):
                min_ok[name] = size
        rows.append({"device_MiB": size, **cells})

    gamma_min = min_ok["GAMMA"]
    rivals_min = [m for name, m in min_ok.items() if name != "GAMMA"]
    checks = [
        shape_check(
            "Crossover.gamma-needs-least",
            "GAMMA's device requirement is flat (large structures in host "
            "memory); in-core systems need the device to fit everything",
            f"minimum working device size: GAMMA {gamma_min} MiB vs "
            f"in-core {rivals_min} MiB",
            gamma_min is not None
            and all(m is None or m >= gamma_min for m in rivals_min),
        )
    ]
    return FigureReport(
        "Crossover", f"device-memory sweep (kCL-{k} on {dataset}, ms)",
        format_table(rows), checks, rows=rows,
    )
