"""Benchmark harness: workloads, comparative runner, reporting and the
per-figure experiment drivers that regenerate the paper's evaluation
(§VI).  See DESIGN.md §4 for the experiment index."""

from .figures import ALL_FIGURES, FigureReport
from .reporting import (
    counters_table,
    crash_summary,
    format_table,
    geometric_speedup,
    grid_table,
    shape_check,
)
from .runner import SYSTEMS, RunResult, run_gamma_variant, run_grid, run_task
from .workloads import (
    FPM_DATASETS,
    KCL_DATASETS,
    SM_DATASETS,
    Task,
    fpm_support,
    fpm_task,
    kcl_task,
    queries_for_dataset,
    sm_task,
    triangle_task,
)

__all__ = [
    "ALL_FIGURES",
    "FigureReport",
    "counters_table",
    "crash_summary",
    "format_table",
    "geometric_speedup",
    "grid_table",
    "shape_check",
    "SYSTEMS",
    "RunResult",
    "run_gamma_variant",
    "run_grid",
    "run_task",
    "FPM_DATASETS",
    "KCL_DATASETS",
    "SM_DATASETS",
    "Task",
    "fpm_support",
    "fpm_task",
    "kcl_task",
    "queries_for_dataset",
    "sm_task",
    "triangle_task",
]
