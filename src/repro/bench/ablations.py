"""Ablations beyond the paper's figures (DESIGN.md §3).

The paper motivates several design constants without sweeping them: the
8 KB memory-pool block (Challenge 1: "a memory block is only 8 KB"),
embedding-table compaction (§V-A: "the compression is ignored in existing
GPM frameworks"), and the multi-merge checkpoint spacing ``p_size``
(Challenge 3: partitions "of even size" bound subtask imbalance).  These
drivers sweep each one so the design choice is visible as data.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.framework import GammaConfig
from ..core.sort import out_of_core_sort
from ..graph import datasets
from ..gpusim.platform import make_platform
from .figures import FigureReport
from .reporting import format_table, shape_check
from .runner import run_gamma_variant
from .workloads import fpm_support, fpm_task, kcl_task


def ablation_block_size(
    dataset: str = "CL",
    block_sizes: Sequence[int] = (1 << 10, 1 << 13, 1 << 16, 1 << 19),
) -> FigureReport:
    """Memory-pool block size: tiny blocks pay allocator contention, huge
    blocks waste warp tails — 8 KB sits in the flat middle."""
    rows = []
    stats = {}
    for block in block_sizes:
        r = run_gamma_variant(
            dataset, kcl_task(4), GammaConfig(block_bytes=block),
            f"block-{block}",
        )
        assert r.simulated_seconds is not None
        stats[block] = r.simulated_seconds
        rows.append({
            "block_bytes": block,
            "time_ms": f"{r.simulated_seconds * 1e3:.3f}",
        })
    paper_choice = stats[1 << 13]
    checks = [
        shape_check(
            "Ablation.block-size",
            "8 KB blocks are a sweet spot (allocation contention vs waste)",
            f"8 KB within 10% of the best sweep point",
            paper_choice <= 1.1 * min(stats.values()),
        )
    ]
    return FigureReport(
        "Ablation A1", f"memory-pool block size ({dataset}, kCL-4)",
        format_table(rows), checks, rows=rows,
    )


def ablation_compaction(dataset: str = "CP") -> FigureReport:
    """Embedding-table compression on/off: peak memory and time."""
    graph = datasets.load(dataset)
    task = fpm_task(fpm_support(graph.num_edges))
    rows = []
    peaks = {}
    for compaction in (True, False):
        r = run_gamma_variant(
            dataset, task, GammaConfig(compaction=compaction),
            f"compaction={compaction}",
        )
        peaks[compaction] = r.peak_memory_bytes or 0
        rows.append({
            "compaction": compaction,
            "time_ms": f"{(r.simulated_seconds or 0) * 1e3:.3f}",
            "peak_MiB": f"{(r.peak_memory_bytes or 0) / (1 << 20):.2f}",
        })
    checks = [
        shape_check(
            "Ablation.compaction",
            "compression saves space other frameworks leave on the table",
            f"peak {peaks[True] / (1 << 20):.2f} vs {peaks[False] / (1 << 20):.2f} MiB",
            peaks[True] < peaks[False],
        )
    ]
    return FigureReport(
        "Ablation A2", f"embedding-table compaction ({dataset}, FPM)",
        format_table(rows), checks, rows=rows,
    )


def ablation_p_size(
    n: int = 1_000_000,
    p_sizes: Sequence[int] = (1 << 10, 1 << 12, 1 << 14, 1 << 16),
) -> FigureReport:
    """Multi-merge checkpoint spacing: small partitions multiply checkpoint
    searches; huge partitions starve parallelism and grow subtask lists."""
    keys = np.random.default_rng(99).integers(-1 << 62, 1 << 62, n)
    rows = []
    times = {}
    for p_size in p_sizes:
        platform = make_platform()
        out = out_of_core_sort(
            platform, keys, segment_len=n // 8, p_size=p_size
        )
        assert (out == np.sort(keys)).all()
        times[p_size] = platform.clock.total
        rows.append({
            "p_size": p_size,
            "time_ms": f"{platform.clock.total * 1e3:.3f}",
        })
    checks = [
        shape_check(
            "Ablation.p-size",
            "checkpoint spacing is a mild knob once partitions are bounded",
            f"max/min time ratio {max(times.values()) / min(times.values()):.2f}",
            max(times.values()) < 4 * min(times.values()),
        )
    ]
    return FigureReport(
        "Ablation A3", f"multi-merge p_size sweep ({n / 1e6:g}M keys)",
        format_table(rows), checks, rows=rows,
    )


def ablation_buffer_fraction(
    dataset: str = "SL*5",
    fractions: Sequence[float] = (0.05, 0.1, 0.2, 0.4),
) -> FigureReport:
    """Device page-buffer size: more buffer, more hot pages served from
    device memory — until the hot set fits and returns diminish."""
    rows = []
    times = []
    for fraction in fractions:
        r = run_gamma_variant(
            dataset, kcl_task(3), GammaConfig(buffer_fraction=fraction),
            f"buffer-{fraction}",
        )
        assert r.simulated_seconds is not None
        times.append(r.simulated_seconds)
        rows.append({
            "buffer_fraction": fraction,
            "time_ms": f"{r.simulated_seconds * 1e3:.3f}",
        })
    checks = [
        shape_check(
            "Ablation.buffer",
            "larger hot-page buffers help until the hot set fits",
            f"times {['%.1f' % (t * 1e3) for t in times]} ms",
            times[-1] <= times[0],
        )
    ]
    return FigureReport(
        "Ablation A4", f"page-buffer size sweep ({dataset}, kCL-3)",
        format_table(rows), checks, rows=rows,
    )


ALL_ABLATIONS = {
    "block_size": ablation_block_size,
    "compaction": ablation_compaction,
    "p_size": ablation_p_size,
    "buffer_fraction": ablation_buffer_fraction,
}
