"""Benchmark output: paper-style tables and paper-vs-measured summaries.

Every figure's benchmark prints (a) the grid of measured values in the
layout the paper's figure uses and (b) a shape check comparing the paper's
claim (e.g. "GAMMA 67.6% faster than Pangolin-GPU on average") with the
measured ratio, since matching absolute numbers is out of scope
(DESIGN.md §2).
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

from .runner import RunResult


def format_table(
    rows: Iterable[Dict[str, object]], columns: Sequence[str] | None = None
) -> str:
    """A plain fixed-width text table from dict rows."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [[str(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered))
        for i, col in enumerate(columns)
    ]
    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    header = line(list(columns))
    rule = "-" * len(header)
    return "\n".join([header, rule] + [line(r) for r in rendered])


def grid_table(
    results: Sequence[RunResult], value: str = "time"
) -> str:
    """Pivot run results into a dataset x system table.

    ``value`` is "time" (milliseconds) or "memory" (MiB, the Fig. 10 view).
    """
    systems: list[str] = []
    datasets: list[str] = []
    for r in results:
        if r.system not in systems:
            systems.append(r.system)
        if r.dataset not in datasets:
            datasets.append(r.dataset)
    index = {(r.dataset, r.system): r for r in results}
    rows = []
    for dataset in datasets:
        row: Dict[str, object] = {"dataset": dataset}
        for system in systems:
            r = index.get((dataset, system))
            if r is None:
                row[system] = "-"
            elif r.crashed:
                row[system] = "CRASH"
            elif value == "memory":
                row[system] = f"{(r.peak_memory_bytes or 0) / (1 << 20):.2f}"
            else:
                row[system] = f"{(r.simulated_seconds or 0) * 1e3:.3f}"
        rows.append(row)
    return format_table(rows, ["dataset"] + systems)


def counters_table(results: Sequence[RunResult],
                   counters_key: str = "counters") -> str:
    """Raw-counter table with *stable* columns.

    Columns are the canonical counter set unioned with anything observed,
    in a fixed order, zero-filled — so two runs of the same benchmark
    always produce the same header even when an event never fired
    (``Counters.snapshot(include_zero=True)`` supplies the inputs).
    """
    from ..gpusim.stats import CANONICAL_COUNTERS

    with_counters = [r for r in results if r.extra.get(counters_key)]
    if not with_counters:
        return "(no counters recorded)"
    observed: set = set()
    for r in with_counters:
        observed.update(r.extra[counters_key])
    columns = list(CANONICAL_COUNTERS) + sorted(
        observed - set(CANONICAL_COUNTERS))
    rows = []
    for r in with_counters:
        counts = r.extra[counters_key]
        row: Dict[str, object] = {"system": r.system, "dataset": r.dataset}
        row.update({col: counts.get(col, 0) for col in columns})
        rows.append(row)
    return format_table(rows, ["system", "dataset"] + columns)


def geometric_speedup(
    results: Sequence[RunResult], baseline: str, target: str = "GAMMA"
) -> float | None:
    """Geometric-mean speedup of ``target`` over ``baseline`` across every
    (dataset, task) cell where both completed."""
    import math

    ratios = []
    by_key: Dict[tuple, Dict[str, RunResult]] = {}
    for r in results:
        by_key.setdefault((r.dataset, r.task), {})[r.system] = r
    for cell in by_key.values():
        a, b = cell.get(target), cell.get(baseline)
        if a and b and not a.crashed and not b.crashed and a.simulated_seconds:
            ratios.append(b.simulated_seconds / a.simulated_seconds)
    if not ratios:
        return None
    return math.exp(sum(math.log(x) for x in ratios) / len(ratios))


def shape_check(
    name: str,
    paper_claim: str,
    measured: str,
    holds: bool | None,
) -> str:
    """One line of the paper-vs-measured summary."""
    status = "?" if holds is None else ("OK" if holds else "DIVERGES")
    return f"[{status:8s}] {name}: paper: {paper_claim}; measured: {measured}"


def crash_summary(results: Sequence[RunResult]) -> str:
    """Which systems crashed where (the paper's omitted bars)."""
    crashed = [r for r in results if r.crashed]
    if not crashed:
        return "no crashes"
    return "; ".join(
        f"{r.system} on {r.dataset} ({r.crash_reason})" for r in crashed
    )
