"""Per-figure experiment drivers (paper §VI).

Each ``figNN_*``/``tableN_*`` function reruns one figure or table of the
paper's evaluation on the dataset stand-ins and returns a
:class:`FigureReport` with the measured grid plus shape checks against the
paper's claims.  The ``benchmarks/`` directory wraps these in
pytest-benchmark targets; EXPERIMENTS.md records one report per figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..algorithms import count_kcliques, triangle_count
from ..core.framework import Gamma, GammaConfig
from ..core.sort import CPU_SORT, MULTI_MERGE, NAIVE_MERGE, XTR2SORT, out_of_core_sort
from ..graph import datasets, kronecker
from ..gpusim.platform import make_platform
from .reporting import (
    crash_summary,
    format_table,
    geometric_speedup,
    grid_table,
    shape_check,
)
from .runner import run_gamma_variant, run_grid, run_task
from .workloads import (
    FPM_DATASETS,
    KCL_DATASETS,
    SM_DATASETS,
    Task,
    fpm_support,
    fpm_task,
    kcl_task,
    queries_for_dataset,
    sm_task,
)


@dataclass
class FigureReport:
    """One reproduced figure/table: measured data + paper-shape checks."""

    figure: str
    title: str
    table: str
    checks: List[str] = field(default_factory=list)
    results: List[RunResult] = field(default_factory=list)
    rows: List[dict] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"== {self.figure}: {self.title} ==", self.table]
        if self.checks:
            lines.append("")
            lines.extend(self.checks)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Fig. 5 — temporal locality of hot pages
# ---------------------------------------------------------------------------

def fig05_temporal_locality(dataset: str = "CL", k: int = 4) -> FigureReport:
    """Share of an extension's hot pages already hot in the previous
    extension (paper: 'generally over half, up to ~70%')."""
    graph = datasets.load(dataset)
    with Gamma(graph) as engine:
        count_kcliques(engine, k)
        overlaps = engine.planners["neighbors"].hot_overlap_history
    rows = [
        {"extension": i + 2, "hot_page_overlap": f"{x:.2f}"}
        for i, x in enumerate(overlaps)
    ]
    mean_overlap = float(np.mean(overlaps)) if overlaps else 0.0
    checks = [
        shape_check(
            "Fig5.overlap",
            "duplicated hot pages are >= ~50% of hot pages between extensions",
            f"mean overlap {mean_overlap:.2f} on {dataset} kCL-{k}",
            mean_overlap >= 0.4,
        )
    ]
    return FigureReport(
        "Fig. 5", f"temporal locality of hot pages ({dataset})",
        format_table(rows), checks, rows=rows,
    )


# ---------------------------------------------------------------------------
# Fig. 10 — peak memory usage
# ---------------------------------------------------------------------------

def fig10_memory() -> FigureReport:
    """Peak memory (host + device) of the GPU systems per workload."""
    results: List[RunResult] = []
    gpu_systems = ("GAMMA", "Pangolin-GPU", "GSI")
    for dataset in ("EA", "CP", "CL"):
        graph = datasets.load(dataset)
        tasks = [
            sm_task(1),
            fpm_task(fpm_support(graph.num_edges)),
            kcl_task(4),
        ]
        for task in tasks:
            for system in gpu_systems:
                r = run_task(system, dataset, task)
                r.task = task.name
                results.append(r)

    # Per-workload view (the figure's three panels).
    panels = []
    for kind in ("SM", "FPM", "kCL"):
        sub = [r for r in results if r.task.startswith(kind)]
        panels.append(f"-- {kind} --\n" + grid_table(sub, value="memory"))

    sm = [r for r in results if r.task.startswith("SM") and not r.crashed]
    kcl = [r for r in results if r.task.startswith("kCL") and not r.crashed]
    by = lambda rs, sys: [r.peak_memory_bytes for r in rs if r.system == sys]
    checks = [
        shape_check(
            "Fig10.out-of-core",
            "in-core systems exceed device memory on large inputs",
            crash_summary(results),
            any(r.crashed for r in results),
        ),
        shape_check(
            "Fig10.workload-order",
            "SM uses less memory than kCL (most vs fewest pruning conditions)",
            f"GAMMA SM peaks {by(sm, 'GAMMA')} vs kCL peaks {by(kcl, 'GAMMA')}",
            max(by(sm, "GAMMA")) <= max(by(kcl, "GAMMA")),
        ),
    ]
    return FigureReport(
        "Fig. 10", "peak memory usage (MiB, host+device)",
        "\n".join(panels), checks, results=results,
    )


# ---------------------------------------------------------------------------
# Fig. 11 — subgraph matching
# ---------------------------------------------------------------------------

def fig11_sm() -> FigureReport:
    results: List[RunResult] = []
    systems = ("GAMMA", "GSI", "Peregrine")
    for dataset in SM_DATASETS:
        for query in queries_for_dataset(dataset):
            task = sm_task(query)
            for system in systems:
                results.append(run_task(system, dataset, task))

    tables = []
    for query in (1, 2, 3):
        sub = [r for r in results if r.task == f"SM:q{query}"]
        if sub:
            tables.append(f"-- q{query} (ms) --\n" + grid_table(sub))

    small = [r for r in results if r.dataset in ("ER", "EA")]
    large = [r for r in results if r.dataset not in ("ER", "EA")]
    vs_peregrine = geometric_speedup(large, "Peregrine")
    small_gsi = geometric_speedup(small, "GSI")
    checks = [
        shape_check(
            "Fig11.vs-peregrine",
            "GAMMA ~1.5-4x faster than Peregrine beyond the tiny graphs",
            f"geomean speedup {vs_peregrine:.2f}x" if vs_peregrine else "n/a",
            bool(vs_peregrine and vs_peregrine > 1.3),
        ),
        shape_check(
            "Fig11.small-graphs",
            "GAMMA slower than in-core GSI on EA/ER (host-memory prep)",
            f"geomean speedup over GSI on EA/ER {small_gsi:.2f}x" if small_gsi else "n/a",
            bool(small_gsi and small_gsi < 1.0),
        ),
        shape_check(
            "Fig11.crashes",
            "GSI crashes on some datasets (omitted bars)",
            crash_summary(results),
            any(r.crashed and r.system == "GSI" for r in results),
        ),
    ]
    return FigureReport(
        "Fig. 11", "subgraph matching running time",
        "\n".join(tables), checks, results=results,
    )


# ---------------------------------------------------------------------------
# Fig. 12 — k-clique
# ---------------------------------------------------------------------------

def fig12_kcl() -> FigureReport:
    systems = ("GAMMA", "Pangolin-GPU", "Pangolin-ST", "Peregrine")
    results = run_grid(systems, KCL_DATASETS, kcl_task())
    mid = [r for r in results if r.dataset in ("CP", "CL")]
    vs_pangolin = geometric_speedup(mid, "Pangolin-GPU")
    vs_peregrine = geometric_speedup(mid, "Peregrine")
    checks = [
        shape_check(
            "Fig12.vs-pangolin-gpu",
            "GAMMA ~1.7x+ faster than Pangolin-GPU (67.6% speedup)",
            f"geomean {vs_pangolin:.2f}x on mid datasets" if vs_pangolin else
            "Pangolin-GPU crashed on all mid datasets",
            (vs_pangolin is None) or vs_pangolin > 1.2,
        ),
        shape_check(
            "Fig12.vs-peregrine",
            "GAMMA ~1.7x+ faster than Peregrine (73.9% speedup)",
            f"geomean {vs_peregrine:.2f}x on mid datasets" if vs_peregrine else "n/a",
            bool(vs_peregrine and vs_peregrine > 1.3),
        ),
        shape_check(
            "Fig12.crashes",
            "some works crash on some of the datasets",
            crash_summary(results),
            None,
        ),
    ]
    return FigureReport(
        "Fig. 12", f"k-clique (k={4}) running time (ms)",
        grid_table(results), checks, results=results,
    )


# ---------------------------------------------------------------------------
# Fig. 14 — FPM
# ---------------------------------------------------------------------------

def fig14_fpm() -> FigureReport:
    systems = ("GAMMA", "GraphMiner", "Peregrine", "Pangolin-GPU", "Pangolin-ST")
    results: List[RunResult] = []
    for dataset in FPM_DATASETS:
        graph = datasets.load(dataset)
        task = fpm_task(fpm_support(graph.num_edges))
        for system in systems:
            results.append(run_task(system, dataset, task))
    mid = [r for r in results if r.dataset != "EA"]
    vs_graphminer = geometric_speedup(mid, "GraphMiner")
    vs_peregrine = geometric_speedup(mid, "Peregrine")
    checks = [
        shape_check(
            "Fig14.vs-graphminer",
            "GAMMA slightly faster than specialized GraphMiner (24.7%)",
            f"geomean {vs_graphminer:.2f}x" if vs_graphminer else "n/a",
            bool(vs_graphminer and vs_graphminer > 1.0),
        ),
        shape_check(
            "Fig14.vs-peregrine",
            "GAMMA ~1.5x+ faster than Peregrine (50.6% speedup)",
            f"geomean {vs_peregrine:.2f}x" if vs_peregrine else "n/a",
            bool(vs_peregrine and vs_peregrine > 1.2),
        ),
        shape_check(
            "Fig14.scalability",
            "GAMMA survives where in-core Pangolin crashes",
            crash_summary(results),
            any(r.crashed and r.system == "Pangolin-GPU" for r in results)
            and not any(r.crashed and r.system == "GAMMA" for r in results),
        ),
    ]
    return FigureReport(
        "Fig. 14", "frequent pattern mining running time (ms)",
        grid_table(results), checks, results=results,
    )


# ---------------------------------------------------------------------------
# Fig. 15 — density scalability (kronecker)
# ---------------------------------------------------------------------------

def fig15_density(scale: int = 11, factors: Sequence[int] = (2, 4, 8, 16, 32)) -> FigureReport:
    rows = []
    times = []
    for factor in factors:
        graph = kronecker(scale, factor, seed=15, labels=8)
        with Gamma(graph) as engine:
            triangle_count(engine)
            t = engine.simulated_seconds
        times.append(t)
        rows.append(
            {
                "edge_factor": factor,
                "edges": graph.num_edges,
                "time_ms": f"{t * 1e3:.3f}",
            }
        )
    # "approximately linear": time grows no faster than ~quadratically in
    # density while clearly growing.
    growth = times[-1] / times[0]
    density_growth = factors[-1] / factors[0]
    checks = [
        shape_check(
            "Fig15.linearity",
            "running time increases approximately linearly with density",
            f"time x{growth:.1f} for density x{density_growth:.0f}",
            times == sorted(times) and growth < density_growth ** 2,
        )
    ]
    return FigureReport(
        "Fig. 15", f"density scalability (kronecker scale={scale}, triangles)",
        format_table(rows), checks, rows=rows,
    )


# ---------------------------------------------------------------------------
# Fig. 16 — warp scalability
# ---------------------------------------------------------------------------

def fig16_warps(
    dataset: str = "CP", warps: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128)
) -> FigureReport:
    """Speedup over Pangolin-ST as the warp count grows."""
    baseline = run_task("Pangolin-ST", dataset, kcl_task(3))
    assert baseline.simulated_seconds is not None
    rows = []
    speedups = []
    for w in warps:
        r = run_gamma_variant(
            dataset, kcl_task(3), GammaConfig(num_warps=w), f"GAMMA-{w}w"
        )
        assert r.simulated_seconds is not None
        speedup = baseline.simulated_seconds / r.simulated_seconds
        speedups.append(speedup)
        rows.append(
            {"warps": w, "time_ms": f"{r.simulated_seconds * 1e3:.3f}",
             "speedup_vs_pangolin_st": f"{speedup:.2f}"}
        )
    checks = [
        shape_check(
            "Fig16.monotone",
            "approximately linear improvement with warp count",
            f"speedups {['%.1f' % s for s in speedups]}",
            all(b >= a * 0.99 for a, b in zip(speedups, speedups[1:])),
        ),
        shape_check(
            "Fig16.beats-st-early",
            "GAMMA outperforms Pangolin-ST with one or two warps",
            f"speedup at 2 warps = {speedups[1]:.2f}x",
            speedups[1] > 1.0,
        ),
    ]
    return FigureReport(
        "Fig. 16", f"warp scalability on {dataset} (kCL-3, vs Pangolin-ST)",
        format_table(rows), checks, rows=rows,
    )


# ---------------------------------------------------------------------------
# Figs. 17/18 — primitive-optimization ablations
# ---------------------------------------------------------------------------

_ABLATIONS = (
    ("naive", GammaConfig(write_strategy="two_pass", pre_merge=False)),
    ("dynamic-alloc", GammaConfig(write_strategy="dynamic", pre_merge=False)),
    ("dynamic+pre-merge", GammaConfig(write_strategy="dynamic", pre_merge=True)),
)


def _optimization_ablation(
    figure: str, title: str, dataset_names: Sequence[str], task: Task
) -> FigureReport:
    results: List[RunResult] = []
    for dataset in dataset_names:
        for label, config in _ABLATIONS:
            results.append(run_gamma_variant(dataset, task, config, label))
    by = {}
    for r in results:
        by.setdefault(r.dataset, {})[r.system] = r.simulated_seconds
    ok_alloc = all(
        cell["dynamic-alloc"] < cell["naive"] for cell in by.values()
    )
    ok_merge = all(
        cell["dynamic+pre-merge"] <= cell["dynamic-alloc"] for cell in by.values()
    )
    import math

    alloc_gain = math.exp(
        sum(math.log(c["naive"] / c["dynamic-alloc"]) for c in by.values())
        / len(by)
    )
    merge_gain = math.exp(
        sum(
            math.log(c["dynamic-alloc"] / c["dynamic+pre-merge"])
            for c in by.values()
        )
        / len(by)
    )
    checks = [
        shape_check(
            f"{figure}.dynamic-alloc",
            "dynamic allocation speeds up the naive approach (~21.7%)",
            f"geomean gain {100 * (1 - 1 / alloc_gain):.1f}%",
            ok_alloc,
        ),
        shape_check(
            f"{figure}.pre-merge",
            "pre-merge adds further improvement (~25.4%)",
            f"geomean gain {100 * (1 - 1 / merge_gain):.1f}%",
            ok_merge,
        ),
    ]
    return FigureReport(
        figure, title, grid_table(results), checks, results=results
    )


def fig17_sm_optimizations() -> FigureReport:
    return _optimization_ablation(
        "Fig. 17", "effect of optimizations on SM (q2, ms)",
        ("CP", "CL", "CO"), sm_task(2),
    )


def fig18_kcl_optimizations() -> FigureReport:
    return _optimization_ablation(
        "Fig. 18", "effect of optimizations on kCL (k=4, ms)",
        ("CP", "CL"), kcl_task(4),
    )


# ---------------------------------------------------------------------------
# Fig. 19 — multi-merge sorting
# ---------------------------------------------------------------------------

def fig19_multimerge(
    tasks: Sequence[tuple[float, int]] = ((1.0, 4), (1.0, 8), (4.3, 8), (4.3, 16)),
) -> FigureReport:
    """Sorting 64-bit keys: multi-merge vs naive vs xtr2sort.

    The paper's tasks are e.g. '4.3B8W' (4.3 billion keys, 8-way); ours are
    scaled 1000x to '4.3M8W'."""
    rows = []
    ok_naive, ok_xtr = [], []
    for millions, ways in tasks:
        n = int(millions * 1e6)
        keys = np.random.default_rng(19).integers(-1 << 62, 1 << 62, n)
        segment_len = -(-n // ways)
        times = {}
        for method in (MULTI_MERGE, NAIVE_MERGE, XTR2SORT):
            platform = make_platform()
            out_of_core_sort(
                platform, keys, method=method, segment_len=segment_len,
                p_size=1 << 14,
            )
            times[method] = platform.clock.total
        label = f"{millions:g}M{ways}W"
        rows.append(
            {
                "task": label,
                "multi_merge_ms": f"{times[MULTI_MERGE] * 1e3:.2f}",
                "naive_ms": f"{times[NAIVE_MERGE] * 1e3:.2f}",
                "xtr2sort_ms": f"{times[XTR2SORT] * 1e3:.2f}",
            }
        )
        ok_naive.append(times[MULTI_MERGE] < times[NAIVE_MERGE])
        ok_xtr.append(times[MULTI_MERGE] < times[XTR2SORT])
    checks = [
        shape_check(
            "Fig19.vs-naive",
            "optimized multi-merge ~34.2% faster than naive",
            f"faster on {sum(ok_naive)}/{len(ok_naive)} tasks",
            all(ok_naive),
        ),
        shape_check(
            "Fig19.vs-xtr2sort",
            "optimized multi-merge ~20.9% faster than xtr2sort",
            f"faster on {sum(ok_xtr)}/{len(ok_xtr)} tasks",
            all(ok_xtr),
        ),
    ]
    return FigureReport(
        "Fig. 19", "out-of-core multi-merge (64-bit keys)",
        format_table(rows), checks, rows=rows,
    )


# ---------------------------------------------------------------------------
# Fig. 20 — hybrid host-memory access
# ---------------------------------------------------------------------------

def fig20_hybrid() -> FigureReport:
    """Hybrid vs single-mode access, on graphs whose CSR exceeds the device
    page buffer (the regime §IV targets — on smaller graphs every page fits
    the buffer and the three modes converge).

    Workloads span both pathologies: kCL's dense re-reads punish
    uncached zero-copy; UK's sparse labeled probes punish page-granular
    unified migration.  The paper reports hybrid ~2x faster than either
    single mode; our page-batch model gives hybrid a smaller edge over
    unified-only (a few percent to ~10%) but the same ordering — hybrid is
    never beaten, and the losing single mode loses big.
    """
    cells = [
        ("SL*5", sm_task(1)),
        ("SL*5", kcl_task(3)),
        ("UK", sm_task(1)),
    ]
    modes = ("hybrid", "unified", "zerocopy")
    results: List[RunResult] = []
    for dataset, task in cells:
        datasets.load(dataset)
        for mode in modes:
            r = run_gamma_variant(
                dataset, task, GammaConfig(access_mode=mode), mode
            )
            r.dataset = f"{dataset}:{task.name}"  # one table row per cell
            results.append(r)
    by: Dict[str, Dict[str, float]] = {}
    for r in results:
        by.setdefault(r.dataset, {})[r.system] = r.simulated_seconds or 0.0
    robust = all(
        c["hybrid"] <= 1.05 * min(c["unified"], c["zerocopy"])
        for c in by.values()
    )
    beats_worst = all(
        max(c["unified"], c["zerocopy"]) > 1.5 * c["hybrid"]
        for c in by.values()
    )
    beats_unified_somewhere = any(
        c["hybrid"] < c["unified"] for c in by.values()
    )
    checks = [
        shape_check(
            "Fig20.robust",
            "neither single access method alone works well; hybrid adapts",
            "hybrid within 5% of the better single mode on every workload",
            robust,
        ),
        shape_check(
            "Fig20.beats-worst",
            "hybrid ~47-51% faster than single modes",
            "the losing single mode is >=1.5x slower than hybrid everywhere",
            beats_worst,
        ),
        shape_check(
            "Fig20.vs-unified",
            "hybrid faster than unified-only",
            "hybrid strictly beats unified-only on sparse-access workloads",
            beats_unified_somewhere,
        ),
    ]
    return FigureReport(
        "Fig. 20", "hybrid memory access (ms)",
        grid_table(results), checks, results=results,
    )


# ---------------------------------------------------------------------------
# Tables II and III
# ---------------------------------------------------------------------------

def table2_datasets() -> FigureReport:
    rows = datasets.table2_rows()
    checks = [
        shape_check(
            "TableII.coverage",
            "10 datasets from citation/social/email/web/synthetic domains",
            f"{len(rows)} stand-ins built",
            len(rows) == 10,
        )
    ]
    return FigureReport(
        "Table II", "datasets (paper sizes vs scaled stand-ins)",
        format_table(rows), checks, rows=rows,
    )


def table3_cpu_sort(n: int = 2_000_000) -> FigureReport:
    keys = np.random.default_rng(3).integers(-1 << 62, 1 << 62, n)
    times = {}
    for method in (MULTI_MERGE, XTR2SORT, CPU_SORT):
        platform = make_platform()
        out_of_core_sort(platform, keys, method=method, segment_len=n // 8)
        times[method] = platform.clock.total
    rows = [
        {"method": m, "time_ms": f"{t * 1e3:.2f}"} for m, t in times.items()
    ]
    checks = [
        shape_check(
            "TableIII.cpu",
            "CPU-based sorting is much worse than GPU-based methods",
            f"CPU {times[CPU_SORT] / times[MULTI_MERGE]:.1f}x slower than multi-merge",
            times[CPU_SORT] > 3 * times[MULTI_MERGE],
        )
    ]
    return FigureReport(
        "Table III", f"CPU vs GPU external sorting ({n/1e6:g}M keys)",
        format_table(rows), checks, rows=rows,
    )


#: Everything, keyed the way EXPERIMENTS.md indexes them.
ALL_FIGURES = {
    "fig05": fig05_temporal_locality,
    "fig10": fig10_memory,
    "fig11": fig11_sm,
    "fig12": fig12_kcl,
    "fig14": fig14_fpm,
    "fig15": fig15_density,
    "fig16": fig16_warps,
    "fig17": fig17_sm_optimizations,
    "fig18": fig18_kcl_optimizations,
    "fig19": fig19_multimerge,
    "fig20": fig20_hybrid,
    "table2": table2_datasets,
    "table3": table3_cpu_sort,
}
