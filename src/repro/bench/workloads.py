"""Workload definitions for the paper's evaluation (§VI).

Each figure's experiment is a grid of (dataset, system, task parameters).
Parameters are scaled with the dataset stand-ins (DESIGN.md §2) and chosen
so the full benchmark suite completes in minutes of wall time while every
simulated effect the paper reports still appears.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..algorithms import (
    count_kcliques,
    frequent_pattern_mining,
    match_pattern,
    triangle_count,
)
from ..graph.patterns import sm_query

#: Dataset groups used across figures (Table II abbreviations).
SMALL_DATASETS = ("ER", "EA")
MEDIUM_DATASETS = ("CP", "CL", "CO")
LARGE_DATASETS = ("CL*8", "SL*5", "UK")

#: Figure 11's dataset list; the heaviest query (q2) is restricted to the
#: small/medium sets to bound wall time.
SM_DATASETS = SMALL_DATASETS + MEDIUM_DATASETS + ("CL*8",)
SM_QUERIES = (1, 2, 3)

#: Figure 12's dataset list (kCL is the heaviest workload, Fig. 10).
KCL_DATASETS = SMALL_DATASETS + ("CP", "CL")
KCL_K = 4

#: Figure 14's dataset list and per-dataset support thresholds (~0.5% of
#: the stand-in's edge count, as FPM evaluations typically pick).  CO is
#: excluded: its hub-heavy level-2 table exceeds even the scaled *host*
#: budget for every system, so the cell carries no comparative signal.
FPM_DATASETS = ("EA", "CP", "CL")
FPM_ITERATIONS = 2


def fpm_support(num_edges: int) -> int:
    """Support threshold scaled to the stand-in's size."""
    return max(2, num_edges // 200)


@dataclass(frozen=True)
class Task:
    """A runnable GPM task: ``run(engine)`` executes it on any system."""

    name: str
    run: Callable

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Task({self.name})"


def sm_task(query: int) -> Task:
    pattern = sm_query(query)
    return Task(f"SM:q{query}", lambda engine: match_pattern(engine, pattern))


def kcl_task(k: int = KCL_K) -> Task:
    return Task(f"kCL:{k}", lambda engine: count_kcliques(engine, k))


def triangle_task() -> Task:
    return Task("triangles", triangle_count)


def fpm_task(min_support: int, iterations: int = FPM_ITERATIONS) -> Task:
    return Task(
        f"FPM:l{iterations}:s{min_support}",
        lambda engine: frequent_pattern_mining(engine, iterations, min_support),
    )


def queries_for_dataset(abbrev: str) -> Sequence[int]:
    """Which SM queries run on a dataset (q2 explodes on the largest)."""
    if abbrev in ("CL*8", "SL*5", "UK", "IT", "TW"):
        return (1, 3)
    return SM_QUERIES
