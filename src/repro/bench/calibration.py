"""Cost-model sensitivity analysis.

The reproduction's conclusions are *shapes* (who wins, who crashes), not
absolute times — so they must not hinge on any single calibrated constant.
This driver re-runs a core three-system comparison (GAMMA vs Pangolin-GPU
vs Peregrine, kCL on cit-Patent) with each key cost-model constant halved
and doubled, and checks that the paper's ordering

    GAMMA  <  Pangolin-GPU   and   GAMMA  <  Peregrine

survives every perturbation.  A constant whose 4x swing flips the result
would mean the conclusion was an artifact of calibration; the report makes
that visible.
"""

from __future__ import annotations

from dataclasses import fields, replace
from typing import Dict, List

from ..algorithms import count_kcliques
from ..baselines import PangolinGPU, Peregrine
from ..core.framework import Gamma, GammaConfig
from ..errors import GammaError
from ..graph import datasets
from ..gpusim.platform import make_platform
from ..gpusim.spec import DEFAULT_COST, CostModel
from .figures import FigureReport
from .reporting import format_table, shape_check

#: The constants whose calibration could plausibly flip a conclusion.
SENSITIVE_CONSTANTS = (
    "gpu_ipc",
    "pcie_bandwidth",
    "zerocopy_bandwidth",
    "page_fault_overhead",
    "cpu_ops_per_thread",
    "host_register_bandwidth",
)

#: Perturbation factors applied to each constant.
FACTORS = (0.5, 2.0)


def _run_three_systems(cost: CostModel, dataset: str, k: int) -> Dict[str, float | None]:
    """Simulated seconds per system under one cost model (None = crash)."""
    graph = datasets.load(dataset)
    times: Dict[str, float | None] = {}

    def run(name, build):
        try:
            engine = build()
            try:
                count_kcliques(engine, k)
                times[name] = engine.simulated_seconds
            finally:
                engine.close()
        except GammaError:
            times[name] = None

    run("GAMMA", lambda: Gamma(graph, GammaConfig(cost=cost)))
    run("Pangolin-GPU", lambda: PangolinGPU(
        graph, platform=make_platform(cost=cost)
    ))
    run("Peregrine", lambda: Peregrine(
        graph, platform=make_platform(cost=cost)
    ))
    return times


def _ordering_holds(times: Dict[str, float | None]) -> bool:
    gamma = times.get("GAMMA")
    if gamma is None:
        return False
    for rival in ("Pangolin-GPU", "Peregrine"):
        t = times.get(rival)
        if t is not None and gamma >= t:
            return False
    return True


def sensitivity_analysis(dataset: str = "CP", k: int = 4) -> FigureReport:
    """Perturb each sensitive constant by 0.5x/2x and re-check the core
    ordering."""
    valid_names = {f.name for f in fields(CostModel)}
    rows: List[dict] = []
    all_hold = True
    baseline = _run_three_systems(DEFAULT_COST, dataset, k)
    rows.append(
        {
            "constant": "(baseline)",
            "factor": "1.0",
            "GAMMA_ms": _fmt(baseline["GAMMA"]),
            "PangolinGPU_ms": _fmt(baseline["Pangolin-GPU"]),
            "Peregrine_ms": _fmt(baseline["Peregrine"]),
            "ordering": "OK" if _ordering_holds(baseline) else "FLIPPED",
        }
    )
    for name in SENSITIVE_CONSTANTS:
        assert name in valid_names, name
        for factor in FACTORS:
            cost = replace(DEFAULT_COST, **{name: getattr(DEFAULT_COST, name) * factor})
            times = _run_three_systems(cost, dataset, k)
            holds = _ordering_holds(times)
            all_hold &= holds
            rows.append(
                {
                    "constant": name,
                    "factor": f"{factor:g}",
                    "GAMMA_ms": _fmt(times["GAMMA"]),
                    "PangolinGPU_ms": _fmt(times["Pangolin-GPU"]),
                    "Peregrine_ms": _fmt(times["Peregrine"]),
                    "ordering": "OK" if holds else "FLIPPED",
                }
            )
    checks = [
        shape_check(
            "Calibration.robustness",
            "(methodology) conclusions survive 4x swings of every constant",
            f"ordering held on {sum(r['ordering'] == 'OK' for r in rows)}/{len(rows)} perturbations",
            all_hold,
        )
    ]
    return FigureReport(
        "Calibration",
        f"cost-model sensitivity (kCL-{k} on {dataset})",
        format_table(rows), checks, rows=rows,
    )


def _fmt(seconds: float | None) -> str:
    return "CRASH" if seconds is None else f"{seconds * 1e3:.3f}"
