"""Comparative experiment runner.

Runs one task on one system over one dataset stand-in, on a fresh platform,
and records what the paper's figures record: total simulated time (engine
construction included — "the preparation of host memory usage accounts for
a large portion of the total running time" on small graphs, §VI-C), peak
memory, and whether the system crashed (:class:`~repro.errors.GammaError`
— the in-core baselines' device OOM).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Sequence

from ..core.framework import Gamma, GammaConfig
from ..errors import GammaError
from ..graph import datasets
from ..graph.csr import CSRGraph
from .workloads import Task

#: Registry of comparable systems (name -> engine factory taking a graph).
SYSTEMS: Dict[str, Callable[[CSRGraph], Any]] = {}


def register_default_systems() -> None:
    """Populate :data:`SYSTEMS` with GAMMA and every baseline."""
    from ..baselines import GSI, GraphMiner, PangolinGPU, PangolinST, Peregrine

    SYSTEMS.update(
        {
            "GAMMA": Gamma,
            "Pangolin-GPU": PangolinGPU,
            "Pangolin-ST": PangolinST,
            "Peregrine": Peregrine,
            "GSI": GSI,
            "GraphMiner": GraphMiner,
        }
    )


register_default_systems()


@dataclass
class RunResult:
    """One cell of a comparative figure."""

    system: str
    dataset: str
    task: str
    simulated_seconds: float | None = None
    peak_memory_bytes: int | None = None
    peak_device_bytes: int | None = None
    crashed: bool = False
    crash_reason: str = ""
    payload: Any = None
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def display_time(self) -> str:
        if self.crashed:
            return "CRASH"
        return f"{self.simulated_seconds * 1e3:.3f} ms"


def run_task(
    system: str,
    dataset: str,
    task: Task,
    engine_factory: Callable[[CSRGraph], Any] | None = None,
) -> RunResult:
    """Execute ``task`` for ``system`` on ``dataset``'s stand-in.

    Crashes (device/host OOM) are captured, not propagated — they are data
    points in the paper's figures.
    """
    if engine_factory is None:
        if system not in SYSTEMS:
            known = ", ".join(SYSTEMS)
            raise KeyError(f"unknown system {system!r}; known: {known}")
        engine_factory = SYSTEMS[system]
    graph = datasets.load(dataset)
    result = RunResult(system=system, dataset=dataset, task=task.name)
    engine = None
    try:
        engine = engine_factory(graph)
        result.payload = task.run(engine)
        result.simulated_seconds = engine.simulated_seconds
        result.peak_memory_bytes = engine.peak_memory_bytes
        result.peak_device_bytes = engine.peak_device_bytes
        platform = getattr(engine, "platform", None)
        if platform is not None:
            # include_zero keeps report columns identical across runs.
            result.extra["counters"] = platform.counters.snapshot(
                include_zero=True)
    except GammaError as exc:
        result.crashed = True
        result.crash_reason = type(exc).__name__
    finally:
        if engine is not None:
            try:
                engine.close()
            except GammaError:  # pragma: no cover - close-after-crash
                pass
    return result


def run_grid(
    systems: Sequence[str],
    dataset_names: Sequence[str],
    task: Task | Callable[[str], Task],
) -> list[RunResult]:
    """Run a (system x dataset) grid; ``task`` may depend on the dataset."""
    results = []
    for dataset in dataset_names:
        concrete = task(dataset) if callable(task) and not isinstance(task, Task) else task
        for system in systems:
            results.append(run_task(system, dataset, concrete))
    return results


def run_gamma_variant(
    dataset: str, task: Task, config: GammaConfig, label: str
) -> RunResult:
    """Run GAMMA under an ablation configuration (Figs. 16–20)."""
    return run_task(
        label, dataset, task, engine_factory=lambda g: Gamma(g, config)
    )
