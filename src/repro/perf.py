"""Hot-path pipeline selection: batched (fast) vs. retained reference.

The simulator has two implementations of its wall-clock hot paths — the
page-buffer eviction, the charge-derivation arithmetic in
:mod:`repro.gpusim.regions`, and the candidate filtering in
:mod:`repro.core.extension`:

* ``fast`` (the default) — the batched pipeline: amortized partial-select
  LRU eviction, coalesced difference-array page derivation with memoized
  repeat lookups, and progressive (compress-as-you-filter) candidate
  pruning.
* ``reference`` — the original straight-line implementations (full
  ``lexsort`` on evict, expand-then-``np.unique`` page derivation,
  full-width boolean masks).

Both produce bit-for-bit identical simulated time and counters; the
property tests in ``tests/gpusim/test_charge_equivalence.py`` and
``tests/core/test_extension_equivalence.py`` assert exactly that, and
``benchmarks/bench_hotpath.py`` measures the wall-clock gap.  The switch
is process-global (the simulator is single-threaded by design); set the
``REPRO_PIPELINE=reference`` environment variable to select the reference
pipeline for a whole run.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

FAST = "fast"
REFERENCE = "reference"
PIPELINES = (FAST, REFERENCE)

#: Whether the unknown-REPRO_PIPELINE warning has already fired; the env
#: variable is read once per process under normal use, but tools that call
#: ``_mode_from_env()`` repeatedly (or reload config) must not spam it.
_warned_unknown = False


def _mode_from_env() -> str:
    raw = os.environ.get("REPRO_PIPELINE", "")
    value = raw.lower()
    if value in PIPELINES:
        return value
    if value:
        global _warned_unknown
        if not _warned_unknown:
            _warned_unknown = True
            import warnings

            warnings.warn(
                f"REPRO_PIPELINE={raw!r} is not one of {PIPELINES}; using "
                f"{FAST!r}",
                stacklevel=2,
            )
    return FAST


_mode = _mode_from_env()


def pipeline_mode() -> str:
    """The currently selected pipeline (``"fast"`` or ``"reference"``)."""
    return _mode


def use_reference() -> bool:
    """True when the retained reference implementations should run."""
    return _mode == REFERENCE


def set_pipeline(mode: str) -> None:
    """Select the hot-path pipeline for the whole process."""
    if mode not in PIPELINES:
        raise ValueError(f"pipeline must be one of {PIPELINES}, got {mode!r}")
    global _mode
    _mode = mode


@contextmanager
def pipeline(mode: str) -> Iterator[None]:
    """Temporarily select a pipeline (tests and the hot-path bench)."""
    previous = _mode
    set_pipeline(mode)
    try:
        yield
    finally:
        set_pipeline(previous)
