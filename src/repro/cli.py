"""Command-line interface.

Run GPM workloads on any system, list the dataset stand-ins, or regenerate
a figure of the paper's evaluation:

    python -m repro datasets
    python -m repro systems
    python -m repro run --task sm --query 2 --dataset CL --system GAMMA
    python -m repro run --task kcl --k 4 --dataset CP --system Peregrine
    python -m repro run --task fpm --iterations 2 --min-support 50 --metric mni
    python -m repro figure fig12
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import Sequence

from .algorithms import (
    count_kcliques,
    frequent_pattern_mining,
    graphlet_census,
    match_pattern,
    motif_count,
    triangle_count,
)
from .bench.figures import ALL_FIGURES
from .bench.reporting import format_table
from .bench.runner import SYSTEMS
from .errors import GammaError
from .graph import datasets, sm_query
from .graph.catalog import default_catalog


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GAMMA (ICDE 2023) reproduction: graph pattern mining "
                    "on a simulated out-of-core GPU platform",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="print the Table II dataset stand-ins")
    sub.add_parser("systems", help="list the comparable systems")

    run = sub.add_parser("run", help="run one GPM task on one system")
    run.add_argument("--task", required=True,
                     choices=("sm", "kcl", "fpm", "triangles", "motifs", "graphlets"))
    run.add_argument("--dataset", default="CL",
                     help="Table II abbreviation (default CL)")
    run.add_argument("--system", default="GAMMA",
                     help=f"one of: {', '.join(SYSTEMS)}")
    run.add_argument("--query", type=int, default=1,
                     help="SM query number q1-q6 (default 1)")
    run.add_argument("--symmetry-breaking", action="store_true",
                     help="SM: enumerate each subgraph once")
    run.add_argument("--k", type=int, default=4, help="kCL clique size")
    run.add_argument("--iterations", type=int, default=2,
                     help="FPM: maximum pattern edges")
    run.add_argument("--min-support", type=int, default=10,
                     help="FPM: support threshold")
    run.add_argument("--metric", default="instances",
                     choices=("instances", "mni"), help="FPM support metric")
    run.add_argument("--edges", type=int, default=2, help="motifs: size")
    run.add_argument("--plan", default="baseline", metavar="SPEC",
                     help="execution plan: 'baseline' (hand-tuned orders, "
                          "bit-identical to pre-planner runs), 'auto' "
                          "(cost-based planner), or a plan JSON file "
                          "(see docs/PLANNER.md)")
    run.add_argument("--plan-cache-dir", metavar="DIR",
                     help="persist compiled auto plans in DIR/plans.sqlite "
                          "and reuse them across runs")
    run.add_argument("--breakdown", action="store_true",
                     help="print the simulated-time breakdown")
    run.add_argument("--profile", action="store_true",
                     help="print per-phase wall-clock time alongside the "
                          "simulated-time breakdown")
    run.add_argument("--trace-out", metavar="PATH",
                     help="write a Chrome trace-event JSON of the run "
                          "(open in Perfetto / chrome://tracing)")
    run.add_argument("--metrics-out", metavar="PATH",
                     help="write the metric samples as JSON lines")
    run.add_argument("--manifest-out", metavar="PATH",
                     help="write a run manifest (diff with `repro report`)")
    run.add_argument("--critical-path", action="store_true",
                     help="print the simulated-time critical path and the "
                          "hot span subtrees after the run "
                          "(docs/OBSERVABILITY.md)")
    run.add_argument("--history-dir", metavar="DIR",
                     help="append this run's metrics and span tree to the "
                          "perf-history store under DIR (gate later with "
                          "`repro perf-report --history DIR`)")
    run.add_argument("--checkpoint-dir", metavar="DIR",
                     help="GAMMA: write a level-granular checkpoint after "
                          "every completed op (see docs/RESILIENCE.md)")
    run.add_argument("--resume", action="store_true",
                     help="GAMMA: resume from --checkpoint-dir's checkpoint "
                          "instead of starting over")
    run.add_argument("--fault-plan", metavar="NAME_OR_PATH",
                     help="install a deterministic fault-injection plan: a "
                          "built-in name (e.g. ci-default) or a JSON file")
    run.add_argument("--gpus", type=int, default=1, metavar="N",
                     help="GAMMA: shard the run across N simulated GPUs "
                          "(see docs/SHARDING.md)")
    run.add_argument("--shard-policy", default="static",
                     choices=("static", "degree", "stealing"),
                     help="frontier partitioning policy for --gpus > 1")
    run.add_argument("--executor", default=None,
                     choices=("serial", "process"),
                     help="shard execution backend for --gpus > 1: "
                          "'serial' runs shards in-process, 'process' "
                          "forks one worker per shard for true wall-clock "
                          "parallelism (default: $REPRO_SHARD_EXECUTOR or "
                          "serial; results are identical either way)")
    run.add_argument("--interconnect", default="nvlink",
                     choices=("nvlink", "pcie"),
                     help="inter-GPU link model for --gpus > 1 "
                          "(pcie stages through host memory)")
    run.add_argument("--degradation", metavar="POLICY",
                     choices=("halve-chunk", "demote-pages", "spill"),
                     help="GAMMA: degradation policy applied when the run "
                          "hits memory pressure")
    run.add_argument("--max-retries", type=int, default=8,
                     help="GAMMA: degradation retry budget (default 8)")

    figure = sub.add_parser("figure", help="regenerate one evaluation figure")
    figure.add_argument("name", choices=sorted(ALL_FIGURES),
                        help="figure/table key, e.g. fig12")

    plan = sub.add_parser(
        "plan", help="inspect compiled execution plans (docs/PLANNER.md)")
    plan_sub = plan.add_subparsers(dest="plan_command", required=True)
    explain = plan_sub.add_parser(
        "explain", help="compile a plan for one workload and print it")
    explain.add_argument("--task", required=True,
                         choices=("sm", "kcl", "fpm", "motifs"))
    explain.add_argument("--dataset", default="CL",
                         help="Table II abbreviation (default CL)")
    explain.add_argument("--query", type=int, default=1,
                         help="SM query number q1-q6 (default 1)")
    explain.add_argument("--symmetry-breaking", action="store_true",
                         help="SM: plan for once-per-subgraph enumeration")
    explain.add_argument("--k", type=int, default=4, help="kCL clique size")
    explain.add_argument("--iterations", type=int, default=2,
                         help="FPM: maximum pattern edges")
    explain.add_argument("--min-support", type=int, default=10,
                         help="FPM: support threshold")
    explain.add_argument("--metric", default="instances",
                         choices=("instances", "mni"),
                         help="FPM support metric")
    explain.add_argument("--edges", type=int, default=2, help="motifs: size")
    explain.add_argument("--plan", default="auto", metavar="SPEC",
                         help="'auto' (default), 'baseline', or a plan "
                              "JSON file")
    explain.add_argument("--plan-cache-dir", metavar="DIR",
                         help="plan cache directory to consult/populate")
    explain.add_argument("--out", metavar="PATH",
                         help="save the compiled plan as JSON (reusable "
                              "via `repro run --plan PATH`)")

    report = sub.add_parser(
        "report", help="summarize a run manifest, optionally diffing it "
                       "against a baseline manifest")
    report.add_argument("manifest", help="manifest JSON written by "
                                         "`repro run --manifest-out`")
    report.add_argument("--against", metavar="BASELINE",
                        help="baseline manifest; exit 1 on regressions")
    report.add_argument("--counter-threshold", type=float, default=0.10,
                        help="relative counter growth tolerated (default 0.10)")
    report.add_argument("--time-threshold", type=float, default=0.05,
                        help="relative simulated-time drift tolerated "
                             "(default 0.05)")

    perf = sub.add_parser(
        "perf-report",
        help="gate recent perf-history records with the regression "
             "sentinel (docs/OBSERVABILITY.md)")
    perf.add_argument("--history", default="benchmarks/reports/history",
                      metavar="DIR",
                      help="perf-history directory (default "
                           "benchmarks/reports/history)")
    perf.add_argument("--bench", help="gate only this bench")
    perf.add_argument("--workload", help="gate only this workload")
    perf.add_argument("--arm", help="gate only this arm")
    perf.add_argument("--window", type=int, default=8,
                      help="baseline window size (default 8)")
    perf.add_argument("--json", metavar="PATH", dest="json_out",
                      help="write the machine-readable verdicts to PATH")
    perf.add_argument("--warn-only", action="store_true",
                      help="report regressions but exit 0 (CI soft-launch)")

    serve = sub.add_parser(
        "serve", help="run the long-lived mining service (docs/SERVING.md)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8750,
                       help="bind port; 0 picks a free one (default 8750)")
    serve.add_argument("--slots", type=int, default=2,
                       help="concurrent execution slots (default 2)")
    serve.add_argument("--executor", choices=("serial", "process"),
                       metavar="NAME",
                       help="shard backend for multi-GPU queries "
                            "(default: process on >=4-core hosts; "
                            "REPRO_SHARD_EXECUTOR wins)")
    serve.add_argument("--tenant", action="append", default=[],
                       metavar="NAME[:INFLIGHT[:PENDING]]",
                       help="register a tenant with quota overrides "
                            "(repeatable)")
    serve.add_argument("--no-auto-tenants", action="store_true",
                       help="reject queries from unregistered tenants")
    serve.add_argument("--no-reuse-pools", action="store_true",
                       help="cold-start a worker pool per query instead of "
                            "resetting warm pools")
    serve.add_argument("--no-preemption", action="store_true",
                       help="never suspend running queries for "
                            "higher-priority arrivals")
    serve.add_argument("--workdir", metavar="DIR",
                       help="root for per-query checkpoints and the shared "
                            "plan cache (default: a temp dir)")
    serve.add_argument("--manifest-dir", metavar="DIR",
                       help="write per-query manifests and billing records "
                            "here")
    serve.add_argument("--preload", action="append", default=[],
                       metavar="DATASET",
                       help="load a dataset before serving (repeatable)")

    query = sub.add_parser(
        "query", help="submit one query to a running mining service")
    query.add_argument("--url", default="http://127.0.0.1:8750",
                       help="service base URL (default "
                            "http://127.0.0.1:8750)")
    query.add_argument("--task", required=True,
                       choices=("sm", "kcl", "fpm", "motifs"))
    query.add_argument("--dataset", default="CL",
                       help="Table II abbreviation (default CL)")
    query.add_argument("--tenant", default="default",
                       help="tenant to bill (default 'default')")
    query.add_argument("--priority", type=int, default=0,
                       help="admission priority; higher preempts lower")
    query.add_argument("--gpus", type=int, default=1,
                       help="simulated GPUs (default 1)")
    query.add_argument("--shard-policy", default="static",
                       choices=("static", "degree", "stealing"),
                       help="frontier partitioning policy for --gpus > 1")
    query.add_argument("--plan", default="baseline", metavar="SPEC",
                       help="'baseline' (default), 'auto', or a plan JSON "
                            "file")
    query.add_argument("--query", type=int, default=1, dest="sm_query",
                       help="SM query number q1-q6 (default 1)")
    query.add_argument("--symmetry-breaking", action="store_true",
                       help="SM: enumerate each subgraph once")
    query.add_argument("--k", type=int, default=4, help="kCL clique size")
    query.add_argument("--iterations", type=int, default=2,
                       help="FPM: maximum pattern edges")
    query.add_argument("--min-support", type=int, default=10,
                       help="FPM: support threshold")
    query.add_argument("--metric", default="instances",
                       choices=("instances", "mni"),
                       help="FPM support metric")
    query.add_argument("--edges", type=int, default=2, help="motifs: size")
    query.add_argument("--no-stream", action="store_true",
                       help="submit and poll instead of streaming partials")
    query.add_argument("--timeout", type=float, default=300.0,
                       help="client timeout in seconds (default 300)")
    return parser


def _cmd_datasets() -> int:
    print(format_table(datasets.table2_rows()))
    return 0


def _cmd_systems() -> int:
    for name, factory in SYSTEMS.items():
        doc = (factory.__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        print(f"{name:14s} {summary}")
    return 0


#: Tasks the query planner knows how to compile plans for.
_PLANNABLE_TASKS = ("sm", "kcl", "fpm", "motifs")


def _open_plan_cache(cache_dir):
    """Open the persistent plan cache under ``cache_dir`` (or None)."""
    if not cache_dir:
        return None
    import pathlib

    from .plan import PlanCache

    return PlanCache(pathlib.Path(cache_dir) / "plans.sqlite")


def _resolve_cli_plan(args: argparse.Namespace, engine, cache):
    """Map run/explain CLI arguments onto :func:`repro.plan.resolve_plan`."""
    from .plan import resolve_plan

    if args.task == "sm":
        return resolve_plan(
            engine, "sm", pattern=sm_query(args.query), plan=args.plan,
            cache=cache, symmetry_breaking=args.symmetry_breaking)
    if args.task == "kcl":
        return resolve_plan(engine, "kclique", plan=args.plan, cache=cache,
                            k=args.k)
    if args.task == "fpm":
        return resolve_plan(engine, "fpm", plan=args.plan, cache=cache,
                            iterations=args.iterations,
                            min_support=args.min_support,
                            support_metric=args.metric)
    return resolve_plan(engine, "motif", plan=args.plan, cache=cache,
                        num_edges=args.edges)


def _cmd_run(args: argparse.Namespace) -> int:
    if args.system not in SYSTEMS:
        print(f"unknown system {args.system!r}; see `repro systems`",
              file=sys.stderr)
        return 2
    if args.task not in _PLANNABLE_TASKS and (
            args.plan != "baseline" or args.plan_cache_dir):
        print(f"--plan/--plan-cache-dir apply to "
              f"{'/'.join(_PLANNABLE_TASKS)} runs, not {args.task}",
              file=sys.stderr)
        return 2
    from .gpusim.trace import PhaseTimer

    timer = PhaseTimer()
    with timer.phase("load-dataset"):
        graph = datasets.load(args.dataset)
    print(f"{args.dataset}: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges (stand-in; see DESIGN.md)")
    collector = None
    if (args.trace_out or args.metrics_out or args.manifest_out
            or args.critical_path or args.history_dir):
        from . import obs

        # Install before the engine exists: the first GpuPlatform built
        # adopts the default collector, so the root span covers engine
        # construction (residence staging, pool allocation, ...).
        collector = obs.install(obs.SpanCollector())
    sharded = getattr(args, "gpus", 1) > 1
    if sharded and args.system != "GAMMA":
        print(f"--gpus needs the GAMMA engine, not {args.system}",
              file=sys.stderr)
        return 2
    with timer.phase("build-engine"):
        if sharded:
            from .gpusim.spec import InterconnectSpec
            from .shard import ShardedGamma

            engine = ShardedGamma(
                graph,
                num_shards=args.gpus,
                policy=args.shard_policy,
                interconnect=InterconnectSpec(kind=args.interconnect),
                executor=args.executor,
            )
        else:
            engine = SYSTEMS[args.system](graph)
    trace = None
    if args.breakdown or args.profile:
        from .gpusim.trace import TraceRecorder

        trace = TraceRecorder().attach(engine.platform)
        if sharded and engine.executor_name == "process":
            print("note: --breakdown/--profile trace the coordinator only "
                  "under --executor process (shard platforms live in "
                  "worker processes)", file=sys.stderr)
    if args.fault_plan:
        from .resilience import load_plan

        plan = load_plan(args.fault_plan)
        if sharded:
            # Shard 0, matching the old platform-level install.
            engine.install_fault_plan(plan)
        else:
            engine.platform.install_fault_plan(plan)
    plan_obj = None
    plan_cache = None
    try:
        if args.task in _PLANNABLE_TASKS:
            plan_cache = _open_plan_cache(args.plan_cache_dir)
            try:
                with timer.phase("plan"):
                    plan_obj = _resolve_cli_plan(args, engine, plan_cache)
            except (OSError, ValueError) as exc:
                print(f"bad --plan {args.plan!r}: {exc}", file=sys.stderr)
                return 2
        if args.task == "sm":
            task_fn = lambda eng: match_pattern(  # noqa: E731
                eng, sm_query(args.query),
                symmetry_breaking=args.symmetry_breaking,
                plan=plan_obj,
            )
        elif args.task == "kcl":
            task_fn = lambda eng: count_kcliques(  # noqa: E731
                eng, args.k, plan=plan_obj)
        elif args.task == "triangles":
            task_fn = triangle_count
        elif args.task == "fpm":
            task_fn = lambda eng: frequent_pattern_mining(  # noqa: E731
                eng, args.iterations, args.min_support,
                support_metric=args.metric, plan=plan_obj,
            )
        elif args.task == "motifs":
            task_fn = lambda eng: motif_count(  # noqa: E731
                eng, args.edges, plan=plan_obj)
        else:  # graphlets
            task_fn = lambda eng: graphlet_census(eng, args.k)  # noqa: E731

        resilient = bool(
            args.checkpoint_dir or args.resume or args.degradation
        )
        with timer.phase("run-task"):
            if resilient:
                if not hasattr(engine, "run"):
                    print(f"--checkpoint-dir/--resume/--degradation need "
                          f"a GAMMA engine, not {args.system}",
                          file=sys.stderr)
                    return 2
                result = engine.run(
                    task_fn,
                    checkpoint_dir=args.checkpoint_dir,
                    resume=args.resume,
                    policy=args.degradation,
                    max_retries=args.max_retries,
                )
            else:
                result = task_fn(engine)

        if args.task == "sm":
            print(f"query q{args.query}: {result.embeddings} embeddings, "
                  f"{result.unique_subgraphs} unique subgraphs")
        elif args.task == "kcl":
            print(f"{args.k}-cliques: {result.cliques}")
        elif args.task == "triangles":
            print(f"triangles: {result.triangles}")
        elif args.task == "fpm":
            catalog = default_catalog(graph.num_labels)
            print(f"frequent patterns (support >= {args.min_support}, "
                  f"{args.metric}):")
            for name, support in catalog.describe(result.patterns)[:20]:
                print(f"  {name:24s} {support}")
        elif args.task == "motifs":
            catalog = default_catalog(graph.num_labels)
            print(f"{args.edges}-edge motifs "
                  f"({result.total_instances} instances):")
            for name, support in catalog.describe(result.histogram)[:20]:
                print(f"  {name:24s} {support}")
        else:  # graphlets
            catalog = default_catalog(graph.num_labels)
            print(f"{args.k}-vertex graphlets "
                  f"({result.total} induced occurrences):")
            for name, support in catalog.describe(result.histogram)[:20]:
                print(f"  {name:24s} {support}")

        events = list(
            getattr(engine, "resilience_log", None)
            or getattr(engine.platform, "resilience_log", [])
        )
        if events:
            print(f"resilience events: {len(events)}")
            for event in events:
                kind = event.get("kind") or event.get("policy") or ""
                where = event.get("path") or event.get("error") or ""
                print(f"  {event['type']}:{kind} {where}")
        if plan_obj is not None and args.plan != "baseline":
            line = f"plan: {plan_obj.plan_id} [{plan_obj.source}]"
            if plan_obj.predicted_seconds:
                line += (f" predicted "
                         f"{plan_obj.predicted_seconds * 1e3:.3f} ms")
            print(line)
            if plan_cache is not None:
                stats = plan_cache.stats()
                print(f"plan cache: hits={stats['hits']} "
                      f"misses={stats['misses']} ({plan_cache.path})")
        print(f"simulated time: {engine.simulated_seconds * 1e3:.3f} ms; "
              f"peak memory: {engine.peak_memory_bytes / (1 << 20):.2f} MiB")
        if sharded:
            utils = ", ".join(
                f"gpu{i}={u:.1%}"
                for i, u in enumerate(engine.shard_utilization())
            )
            print(f"shards: {args.gpus} ({args.shard_policy}, "
                  f"{args.interconnect}); utilization: {utils}")
        if trace is not None and (args.breakdown or args.profile):
            print("\nwhere the time went:")
            print(trace.render())
        if args.profile:
            from . import perf

            print(f"\nwall-clock profile (pipeline: {perf.pipeline_mode()}):")
            print(timer.render())
        if collector is not None:
            _write_obs_outputs(args, engine, collector,
                               plan=plan_obj, plan_cache=plan_cache)
        return 0
    except GammaError as exc:
        print(f"CRASH: {type(exc).__name__}: {exc}")
        return 1
    finally:
        if plan_cache is not None:
            plan_cache.close()
        if collector is not None:
            collector.finish()  # idempotent; detaches on the crash path too
        engine.close()


def _plan_manifest_extra(engine, plan, plan_cache):
    """The manifest's ``plan`` block: identity plus predicted-vs-actual."""
    doc = {
        "id": plan.plan_id,
        "source": plan.source,
        "planner_version": plan.planner_version,
        "predicted_seconds": plan.predicted_seconds,
        "baseline_predicted_seconds": plan.baseline_predicted_seconds,
        "actual_seconds": engine.simulated_seconds,
    }
    if plan_cache is not None:
        doc["cache"] = plan_cache.stats()
    return {"plan": doc}


def _write_obs_outputs(args, engine, collector, plan=None,
                       plan_cache=None) -> None:
    """Close the telemetry collector and emit the requested artifacts."""
    from . import obs

    # Process-backend sharded runs graft the worker span trees under the
    # coordinator's root before the collector closes.
    finalize = getattr(engine, "finalize_telemetry", None)
    if finalize is not None:
        finalize()
    collector.finish()
    platform = getattr(engine, "platform", None)
    if args.trace_out:
        obs.write_chrome_trace(collector, args.trace_out)
        print(f"trace written to {args.trace_out}")
    if args.metrics_out:
        obs.write_metrics_jsonl(collector, args.metrics_out)
        print(f"metrics written to {args.metrics_out}")
    if args.manifest_out:
        if platform is None:
            print("manifest not written: engine exposes no platform",
                  file=sys.stderr)
            return
        from .shard import ShardedGamma, build_sharded_manifest

        extra = (_plan_manifest_extra(engine, plan, plan_cache)
                 if plan is not None else None)
        if isinstance(engine, ShardedGamma):
            manifest = build_sharded_manifest(
                engine, collector,
                system=args.system, dataset=args.dataset, task=args.task,
                config=getattr(engine, "config", None),
                extra=extra,
            )
        else:
            manifest = obs.build_manifest(
                platform, collector,
                system=args.system, dataset=args.dataset, task=args.task,
                config=getattr(engine, "config", None),
                extra=extra,
            )
        obs.write_manifest(manifest, args.manifest_out)
        print(f"manifest written to {args.manifest_out}")
    if args.critical_path or args.history_dir:
        records = obs.span_tree_records(collector)
    if args.critical_path:
        from .obs.profile import render_critical_path

        print()
        print(render_critical_path(records))
    if args.history_dir:
        from .obs.profile import HistoryStore

        root = collector.root
        with HistoryStore(args.history_dir) as store:
            record = store.append(
                bench="cli",
                workload=f"{args.task}-{args.dataset}",
                arm=args.system,
                wall_seconds=(root.wall_seconds
                              if root is not None else None),
                simulated_seconds=engine.simulated_seconds,
                clock_buckets=(platform.clock.snapshot()
                               if platform is not None else None),
                counters=(platform.counters.snapshot()
                          if platform is not None else None),
                span_tree=records,
            )
        print(f"perf history: appended seq {record['seq']} "
              f"to {args.history_dir}")


def _cmd_plan_explain(args: argparse.Namespace) -> int:
    """Compile (or load) a plan without running it and print the choice."""
    import types

    graph = datasets.load(args.dataset)
    print(f"{args.dataset}: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges")
    # resolve_plan only consults the engine for its graph; skip building
    # the simulator for a planning-only command.
    engine = types.SimpleNamespace(graph=graph)
    plan_cache = _open_plan_cache(args.plan_cache_dir)
    try:
        try:
            plan_obj = _resolve_cli_plan(args, engine, plan_cache)
        except (OSError, ValueError) as exc:
            print(f"bad --plan {args.plan!r}: {exc}", file=sys.stderr)
            return 2
        print(plan_obj.describe())
        if plan_cache is not None:
            stats = plan_cache.stats()
            print(f"plan cache: hits={stats['hits']} "
                  f"misses={stats['misses']} "
                  f"persisted={stats['persisted']} ({plan_cache.path})")
        if args.out:
            plan_obj.save(args.out)
            print(f"plan written to {args.out} "
                  f"(run it: repro run --task {args.task} "
                  f"--dataset {args.dataset} --plan {args.out})")
        return 0
    finally:
        if plan_cache is not None:
            plan_cache.close()


def _cmd_report(args: argparse.Namespace) -> int:
    from . import obs

    manifest = obs.load_manifest(args.manifest)
    print(f"system={manifest.get('system')} "
          f"dataset={manifest.get('dataset')} "
          f"task={manifest.get('task')} "
          f"pipeline={manifest.get('pipeline')} "
          f"git={manifest.get('git_rev')}")
    sim = manifest.get("simulated_seconds")
    if sim is not None:
        print(f"simulated time: {sim * 1e3:.3f} ms")
    buckets = manifest.get("clock_buckets") or {}
    if buckets:
        total = math.fsum(buckets.values()) or 1.0
        rows = [(name, seconds, seconds / total)
                for name, seconds in sorted(
                    buckets.items(), key=lambda kv: -kv[1])]
        print("\nsimulated-time buckets:")
        print(obs.render_bars(rows))
    counters = manifest.get("counters") or {}
    if counters:
        print("\ncounters:")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            print(f"  {name.ljust(width)}  {counters[name]}")
    metrics = manifest.get("metrics") or {}
    if metrics:
        print("\nmetrics:")
        width = max(len(name) for name in metrics)
        for name in sorted(metrics):
            stats = metrics[name]
            print(f"  {name.ljust(width)}  n={stats['count']} "
                  f"sum={stats['sum']:g} last={stats['last']:g}")
    if args.against:
        baseline = obs.load_manifest(args.against)
        findings = obs.diff_manifests(
            baseline, manifest,
            counter_threshold=args.counter_threshold,
            time_threshold=args.time_threshold,
        )
        print(f"\ndiff against {args.against}:")
        print(obs.format_findings(findings))
        if any(f.get("regression") for f in findings):
            return 1
    return 0


def _cmd_perf_report(args: argparse.Namespace) -> int:
    """Sentinel-gate the newest history record of each matching cell.

    Exit codes mirror ``tools/obs_diff.py``'s contract: 0 clean (or
    ``--warn-only``), 1 when a cell is flagged, 2 when there is no
    history to gate (missing directory or no matching cell).
    """
    import json
    import pathlib

    from .obs.profile import (HistoryStore, SentinelConfig, check_run,
                              render_verdicts)

    root = pathlib.Path(args.history)
    if not (root / "history.jsonl").exists():
        print(f"{root}: no perf history found", file=sys.stderr)
        return 0 if args.warn_only else 2
    config = SentinelConfig(window=args.window)
    verdicts = []
    with HistoryStore(root) as store:
        cells = [
            cell for cell in store.cells()
            if (args.bench is None or cell["bench"] == args.bench)
            and (args.workload is None or cell["workload"] == args.workload)
            and (args.arm is None or cell["arm"] == args.arm)
        ]
        if not cells:
            print("no matching history cells", file=sys.stderr)
            return 0 if args.warn_only else 2
        for cell in cells:
            rows = store.window(cell["bench"], cell["workload"],
                                arm=cell["arm"], limit=config.window + 1)
            verdicts.append(check_run(rows[0], rows[1:], config))
    print(render_verdicts(verdicts))
    if args.json_out:
        pathlib.Path(args.json_out).write_text(
            json.dumps(verdicts, indent=2, sort_keys=True) + "\n")
        print(f"verdicts written to {args.json_out}")
    if any(v["flagged"] for v in verdicts):
        return 0 if args.warn_only else 1
    return 0


def _cmd_figure(name: str) -> int:
    report = ALL_FIGURES[name]()
    print(report.render())
    diverged = any(c.startswith("[DIVERGES") for c in report.checks)
    return 1 if diverged else 0


def _parse_tenant_flag(flag: str) -> tuple:
    """``NAME[:INFLIGHT[:PENDING]]`` -> (name, max_inflight, max_pending)."""
    parts = flag.split(":")
    name = parts[0]
    if not name:
        raise GammaError(f"bad --tenant spec {flag!r}")
    try:
        inflight = int(parts[1]) if len(parts) > 1 and parts[1] else None
        pending = int(parts[2]) if len(parts) > 2 and parts[2] else None
    except ValueError:
        raise GammaError(f"bad --tenant spec {flag!r}")
    return name, inflight, pending


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import MiningService, Scheduler, ServeConfig

    config = ServeConfig(
        slots=args.slots,
        executor=args.executor,
        reuse_pools=not args.no_reuse_pools,
        preemption=not args.no_preemption,
        workdir=args.workdir,
        manifest_dir=args.manifest_dir,
        auto_register=not args.no_auto_tenants,
    )
    scheduler = Scheduler(config)
    for flag in args.tenant:
        name, inflight, pending = _parse_tenant_flag(flag)
        scheduler.queue.register_tenant(name, max_inflight=inflight,
                                        max_pending=pending)
    for abbrev in args.preload:
        scheduler._graph(abbrev)
    service = MiningService(scheduler, host=args.host, port=args.port)
    host, port = service.address
    print(f"gamma mining service on http://{host}:{port} "
          f"({args.slots} slots; POST /v1/shutdown or Ctrl-C to stop)")
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
        service.close()
    return 0


def _abridge(doc, max_items: int = 6):
    """Compact large dict fields (motif/FPM histograms) for terminal
    output; the full payload is always available over the API."""
    if isinstance(doc, dict):
        if len(doc) > max_items:
            head = dict(sorted(doc.items())[:max_items])
            return {**{k: _abridge(v) for k, v in head.items()},
                    "...": f"{len(doc) - max_items} more"}
        return {k: _abridge(v) for k, v in doc.items()}
    return doc


def _cmd_query(args: argparse.Namespace) -> int:
    from .serve import ServeClient

    spec = {
        "family": args.task,
        "tenant": args.tenant,
        "priority": args.priority,
        "dataset": args.dataset,
        "gpus": args.gpus,
        "shard_policy": args.shard_policy,
        "plan": args.plan,
        "k": args.k,
        "query": args.sm_query,
        "symmetry_breaking": args.symmetry_breaking,
        "num_edges": args.edges,
        "iterations": args.iterations,
        "min_support": args.min_support,
        "support_metric": args.metric,
    }
    client = ServeClient(args.url, timeout=args.timeout)
    if args.no_stream:
        import time as _time
        submitted = client.submit_nowait(spec)
        query_id = submitted["query"]
        print(f"query {query_id} queued")
        deadline = _time.monotonic() + args.timeout
        while _time.monotonic() < deadline:
            doc = client.query(query_id)
            if doc["status"] in ("completed", "failed"):
                break
            _time.sleep(0.1)
        else:
            print("timed out waiting for the query", file=sys.stderr)
            return 1
    else:
        records = list(client.submit(spec))
        for record in records:
            kind = record["type"]
            if kind == "partial":
                detail = {key: value for key, value in record.items()
                          if key not in ("seq", "query", "type", "n")}
                print(f"  level {record.get('level')}: "
                      f"{_abridge(detail)}")
            elif kind in ("preempted", "resumed", "crash"):
                print(f"  [{kind}]")
        doc = client.query(records[0]["query"])
    if doc["status"] == "completed":
        print(f"query {doc['query']} completed: "
              f"{_abridge(doc['result'])}")
        billing = doc.get("billing") or {}
        print(f"billed: {billing.get('simulated_seconds')} simulated "
              f"seconds, latency {billing.get('latency_seconds'):.3f}s, "
              f"{billing.get('preemptions')} preemptions")
        return 0
    print(f"query {doc['query']} failed: {doc.get('error')}",
          file=sys.stderr)
    return 1


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "datasets":
            return _cmd_datasets()
        if args.command == "systems":
            return _cmd_systems()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "plan":
            return _cmd_plan_explain(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "perf-report":
            return _cmd_perf_report(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "query":
            return _cmd_query(args)
        return _cmd_figure(args.name)
    except BrokenPipeError:  # output piped into head/less and closed early
        return 0


if __name__ == "__main__":  # pragma: no cover - module execution path
    sys.exit(main())
