"""Exception hierarchy for the GAMMA reproduction.

Every error raised by this package derives from :class:`GammaError` so callers
can catch framework failures without masking programming errors.  The
out-of-memory errors double as the paper's "crash" cells: in-core baselines
(Pangolin-GPU, GSI) abort with :class:`DeviceOutOfMemory` on graphs whose
intermediate results exceed device memory, which the benchmark harness reports
the same way Figs. 11/12/14 report crashed runs.
"""

from __future__ import annotations


class GammaError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class DeviceOutOfMemory(GammaError):
    """Raised when a device-memory allocation exceeds remaining capacity.

    Mirrors a CUDA ``cudaErrorMemoryAllocation``: in-core engines die with
    this, while GAMMA avoids it by keeping large structures in host memory.
    """

    def __init__(self, requested: int, available: int, tag: str = "") -> None:
        self.requested = requested
        self.available = available
        self.tag = tag
        suffix = f" for {tag!r}" if tag else ""
        super().__init__(
            f"device OOM{suffix}: requested {requested} bytes, "
            f"{available} available"
        )


class MemoryPoolExhausted(DeviceOutOfMemory):
    """Raised when the result-buffer block pool cannot serve a block.

    A subclass of :class:`DeviceOutOfMemory` because callers handle it the
    same way (the pool *is* device memory); kept distinct so fault plans and
    degradation policies can tell pool pressure from allocator pressure.
    """


class HostOutOfMemory(GammaError):
    """Raised when registered host regions exceed the simulated host budget."""

    def __init__(self, requested: int, available: int, tag: str = "") -> None:
        self.requested = requested
        self.available = available
        self.tag = tag
        suffix = f" for {tag!r}" if tag else ""
        super().__init__(
            f"host OOM{suffix}: requested {requested} bytes, "
            f"{available} available"
        )


class SpillIOError(GammaError):
    """Raised when a spill-tier read or write fails (simulated disk fault)."""

    def __init__(self, site: str, message: str = "") -> None:
        self.site = site
        detail = message or f"simulated I/O failure at {site!r}"
        super().__init__(detail)


class InvalidGraphError(GammaError):
    """Raised for malformed graph inputs (bad CSR, negative IDs, ...)."""


class InvalidPatternError(GammaError):
    """Raised for malformed query patterns (disconnected, empty, ...)."""


class ExecutionError(GammaError):
    """Raised when a primitive is invoked in an invalid engine state."""
