"""Exception hierarchy for the GAMMA reproduction.

Every error raised by this package derives from :class:`GammaError` so callers
can catch framework failures without masking programming errors.  The
out-of-memory errors double as the paper's "crash" cells: in-core baselines
(Pangolin-GPU, GSI) abort with :class:`DeviceOutOfMemory` on graphs whose
intermediate results exceed device memory, which the benchmark harness reports
the same way Figs. 11/12/14 report crashed runs.
"""

from __future__ import annotations


class GammaError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class DeviceOutOfMemory(GammaError):
    """Raised when a device-memory allocation exceeds remaining capacity.

    Mirrors a CUDA ``cudaErrorMemoryAllocation``: in-core engines die with
    this, while GAMMA avoids it by keeping large structures in host memory.
    """

    def __init__(self, requested: int, available: int, tag: str = "") -> None:
        self.requested = requested
        self.available = available
        self.tag = tag
        suffix = f" for {tag!r}" if tag else ""
        super().__init__(
            f"device OOM{suffix}: requested {requested} bytes, "
            f"{available} available"
        )

    def __reduce__(self):
        # Default Exception pickling replays ``args`` (the formatted
        # message) into __init__; rebuild from the real fields instead so
        # faults survive the worker->coordinator pipe.
        return (type(self), (self.requested, self.available, self.tag))


class MemoryPoolExhausted(DeviceOutOfMemory):
    """Raised when the result-buffer block pool cannot serve a block.

    A subclass of :class:`DeviceOutOfMemory` because callers handle it the
    same way (the pool *is* device memory); kept distinct so fault plans and
    degradation policies can tell pool pressure from allocator pressure.
    """


class HostOutOfMemory(GammaError):
    """Raised when registered host regions exceed the simulated host budget."""

    def __init__(self, requested: int, available: int, tag: str = "") -> None:
        self.requested = requested
        self.available = available
        self.tag = tag
        suffix = f" for {tag!r}" if tag else ""
        super().__init__(
            f"host OOM{suffix}: requested {requested} bytes, "
            f"{available} available"
        )

    def __reduce__(self):
        return (type(self), (self.requested, self.available, self.tag))


class SpillIOError(GammaError):
    """Raised when a spill-tier read or write fails (simulated disk fault)."""

    def __init__(self, site: str, message: str = "") -> None:
        self.site = site
        self.message = message
        detail = message or f"simulated I/O failure at {site!r}"
        super().__init__(detail)

    def __reduce__(self):
        return (type(self), (self.site, self.message))


class WorkerCrashed(GammaError):
    """Raised when a shard worker process dies mid-command.

    Covers both injected crashes (the ``worker_crash`` fault kind) and real
    kills (``SIGKILL``, OOM-killer).  Unlike the out-of-memory family this is
    *not* retried in place by the degradation ladder: the worker's in-memory
    state is gone, so recovery means resuming a fresh engine from the last
    per-shard checkpoint.
    """

    def __init__(self, message: str, shard: "int | None" = None,
                 exit_code: "int | None" = None) -> None:
        self.shard = shard
        self.exit_code = exit_code
        super().__init__(message)

    def __reduce__(self):
        return (type(self), (self.args[0] if self.args else "",
                             self.shard, self.exit_code))


class QueryPreempted(GammaError):
    """Raised between levels to suspend a running query.

    The serve scheduler's level hook raises this when a higher-priority
    query is waiting.  It deliberately does *not* belong to the
    out-of-memory family, so :meth:`Gamma.run`'s degradation ladder lets
    it propagate: the scheduler catches it, the op-journal checkpoint
    already holds every completed level, and a later resume replays the
    journal bit-identically before continuing.
    """

    def __init__(self, query_id: "int | None" = None,
                 level: "int | None" = None) -> None:
        self.query_id = query_id
        self.level = level
        where = f" at level {level}" if level is not None else ""
        who = f"query {query_id}" if query_id is not None else "query"
        super().__init__(f"{who} preempted{where}")

    def __reduce__(self):
        return (type(self), (self.query_id, self.level))


class AdmissionError(GammaError):
    """Raised when the serve queue rejects a query at admission time.

    Covers unknown tenants (when auto-registration is disabled) and
    per-tenant ``max_pending`` overflows.  Maps to HTTP 429/403 in the
    service layer.
    """

    def __init__(self, message: str, tenant: "str | None" = None) -> None:
        self.tenant = tenant
        super().__init__(message)

    def __reduce__(self):
        return (type(self), (self.args[0] if self.args else "", self.tenant))


class InvalidGraphError(GammaError):
    """Raised for malformed graph inputs (bad CSR, negative IDs, ...)."""


class InvalidPatternError(GammaError):
    """Raised for malformed query patterns (disconnected, empty, ...)."""


class ExecutionError(GammaError):
    """Raised when a primitive is invoked in an invalid engine state."""
