"""k-clique listing (kCL) on the GAMMA primitives.

Cliques are enumerated in ascending vertex order (each new vertex must be
adjacent to *all* matched vertices and larger than the last), so every
k-clique appears exactly once — the standard canonicality constraint that
makes kCL the lightest-pruned, heaviest-intermediate-result workload of the
paper's evaluation (its Fig. 10 memory ceiling).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import InvalidPatternError


@dataclass
class KCliqueResult:
    """Outcome of one kCL run."""

    k: int
    cliques: int
    simulated_seconds: float
    peak_memory_bytes: int


def count_kcliques(engine, k: int, keep_table: bool = False, plan=None,
                   level_hook=None):
    """List/count all k-cliques.

    Returns :class:`KCliqueResult`, or ``(result, table)`` with
    ``keep_table=True`` (the table rows are the cliques, ascending order).

    Every matching order of a complete pattern is isomorphic, so the plan
    only validates/records provenance here; ascending-id growth is already
    canonical.

    ``level_hook``, when given, is called after each completed level with a
    summary dict; it may raise (e.g. :class:`~repro.errors.QueryPreempted`)
    to suspend between levels without losing journaled work.
    """
    if k < 1:
        raise InvalidPatternError("k must be >= 1")
    from ..plan import resolve_plan

    resolve_plan(engine, "kclique", plan=plan, k=k)
    start = engine.simulated_seconds
    table = engine.new_vertex_table(f"kCL:{k}")
    engine.seed_vertices(table)
    if level_hook is not None:
        level_hook({"level": 1, "stage": "seed",
                    "embeddings": table.num_embeddings})
    for depth in range(1, k):
        # New vertex adjacent to every matched vertex, id-ordered.
        engine.vertex_extension(
            table,
            anchor_cols=list(range(depth)),
            greater_than_col=depth - 1,
            injective=False,  # the ordering constraint already implies it
        )
        if level_hook is not None:
            level_hook({"level": depth + 1, "stage": "extend",
                        "embeddings": table.num_embeddings})
    result = KCliqueResult(
        k=k,
        cliques=table.num_embeddings,
        simulated_seconds=engine.simulated_seconds - start,
        peak_memory_bytes=engine.peak_memory_bytes,
    )
    if keep_table:
        return result, table
    table.release()
    return result
