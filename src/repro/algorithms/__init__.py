"""GPM algorithms built on the framework primitives (paper §III-C).

Every driver is engine-agnostic: it accepts any object exposing the Fig. 3
interface — :class:`repro.core.Gamma` or any baseline engine — so the same
algorithm code runs on every system the evaluation compares.
"""

from .fpm import FPMResult, frequent_pattern_mining
from .graphlets import GraphletResult, graphlet_census
from .kclique import KCliqueResult, count_kcliques
from .motif import MotifResult, motif_count
from .subgraph_matching import SMResult, match_pattern, match_pattern_binary
from .triangle import TriangleResult, triangle_count

__all__ = [
    "FPMResult",
    "frequent_pattern_mining",
    "GraphletResult",
    "graphlet_census",
    "KCliqueResult",
    "count_kcliques",
    "MotifResult",
    "motif_count",
    "SMResult",
    "match_pattern",
    "match_pattern_binary",
    "TriangleResult",
    "triangle_count",
]
