"""Graphlet census: connected *induced* k-vertex subgraphs by class.

Motif counting (:mod:`repro.algorithms.motif`) counts subgraphs by their
edge set; network science usually wants *graphlets* — induced subgraphs,
where absent edges matter (an induced wedge is a wedge whose closing edge
is absent).  The census:

1. enumerates every connected k-vertex set once, growing a v-ET with the
   union-neighborhood extension (Definition 3.1's ``N_v(M)``), anchored at
   the set's minimum vertex and deduplicated per level;
2. probes the graph for every pair among the k vertices (vectorized
   ``has_edges``) to get the induced edge bitmask;
3. canonicalizes each distinct (bitmask, label vector) once and histograms.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..errors import ExecutionError
from ..graph.canonical import canonical_code_int


@dataclass
class GraphletResult:
    """Census outcome: canonical code -> number of induced occurrences."""

    k: int
    histogram: dict
    total: int
    simulated_seconds: float
    peak_memory_bytes: int


def _dedup_vertex_sets(engine, table) -> None:
    """Drop rows that repeat an already-seen vertex set (growth-order
    duplicates)."""
    engine.dedup(table)


def graphlet_census(engine, k: int) -> GraphletResult:
    """Count all connected induced ``k``-vertex subgraphs by class."""
    if not 2 <= k <= 5:
        raise ExecutionError("graphlet census supports 2 <= k <= 5")
    start = engine.simulated_seconds
    graph = engine.graph
    table = engine.new_vertex_table(f"graphlets:{k}")
    engine.seed_vertices(table)
    for depth in range(1, k):
        # New vertex adjacent to ANY current vertex and larger than the
        # set's minimum (column 0), so each set grows from its min vertex.
        engine.vertex_extension_any(
            table,
            anchor_cols=list(range(depth)),
            greater_than_col=0,
        )
        _dedup_vertex_sets(engine, table)

    mats = table.materialize()
    histogram = _classify_induced(engine, graph, mats, k)
    result = GraphletResult(
        k=k,
        histogram=histogram,
        total=int(sum(histogram.values())),
        simulated_seconds=engine.simulated_seconds - start,
        peak_memory_bytes=engine.peak_memory_bytes,
    )
    table.release()
    return result


def _classify_induced(engine, graph, mats: np.ndarray, k: int) -> Dict[int, int]:
    """Histogram rows by the canonical class of their induced subgraph."""
    if len(mats) == 0:
        return {}
    pairs = list(itertools.combinations(range(k), 2))
    # Induced-edge bitmask per row (vectorized adjacency probes).
    bitmask = np.zeros(len(mats), dtype=np.int64)
    probe_ops = 0
    for bit, (i, j) in enumerate(pairs):
        present = graph.has_edges(mats[:, i], mats[:, j])
        bitmask |= present.astype(np.int64) << bit
        probe_ops += len(mats)
    _charge(engine, probe_ops * 8)

    # Pack (bitmask, labels in column order) into one key per row.
    num_labels = max(1, graph.num_labels)
    labels = graph.labels[mats]  # (n, k)  # gammalint: allow[charge] -- label gather billed with the classify charge below
    key = bitmask
    for col in range(k):
        key = key * num_labels + labels[:, col]
    uniq, counts = np.unique(key, return_counts=True)
    _charge(engine, len(mats) * int(np.log2(max(2, len(mats)))))

    histogram: Dict[int, int] = {}
    for packed, count in zip(uniq.tolist(), counts.tolist()):
        code = _canonical_of_packed(packed, k, num_labels, pairs)
        histogram[code] = histogram.get(code, 0) + int(count)
    return histogram


def _canonical_of_packed(packed: int, k: int, num_labels: int, pairs) -> int:
    labels = []
    for __ in range(k):
        labels.append(packed % num_labels)
        packed //= num_labels
    labels.reverse()
    bitmask = packed
    edges = [pairs[bit] for bit in range(len(pairs)) if bitmask >> bit & 1]
    return canonical_code_int(edges, labels)


def _charge(engine, ops: int) -> None:
    platform = engine.platform
    if getattr(engine, "_is_cpu", False):
        platform.cpu.work(ops)
    else:
        platform.kernel.launch("graphlets:classify", element_ops=ops)
