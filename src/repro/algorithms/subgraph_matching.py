"""Subgraph matching (paper §III-C1, Algorithm 1).

Two implementations, as the paper advertises ("SM can use both types of
extension"):

* :func:`match_pattern` — worst-case-optimal join via vertex extension:
  one query vertex per iteration, with adjacency/label/injectivity
  constraints pushed into the extension;
* :func:`match_pattern_binary` — binary join via edge extension: one query
  edge per iteration, filtering extended embeddings against the partial
  assignment.

Both count *embeddings* (automorphic images separately), matching the
embedding-table semantics; ``unique_subgraphs`` divides by the pattern's
automorphism count.

The drivers are engine-agnostic: any object implementing the Fig. 3
interface (GAMMA or a baseline) works.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InvalidPatternError
from ..graph.patterns import Pattern


@dataclass
class SMResult:
    """Outcome of one subgraph matching run."""

    pattern: str
    embeddings: int
    unique_subgraphs: int
    simulated_seconds: float
    peak_memory_bytes: int


def match_pattern(
    engine,
    pattern: Pattern,
    keep_table: bool = False,
    symmetry_breaking: bool = False,
    plan=None,
    level_hook=None,
):
    """WOJ subgraph matching (Algorithm 1).

    With ``symmetry_breaking=True``, the pattern's automorphism-derived
    ordering restrictions are pushed into the extensions, so each subgraph
    is enumerated exactly once (``embeddings == unique_subgraphs``) and the
    intermediate tables shrink by the automorphism factor.

    ``plan`` selects the matching order: ``None``/``"baseline"`` keeps the
    hand-tuned order (bit-identical to the pre-planner driver), ``"auto"``
    asks the query planner, and a :class:`~repro.plan.CompiledPlan` (or a
    plan-file path) is executed as-is.

    Returns :class:`SMResult`, or ``(SMResult, table)`` with
    ``keep_table=True``.
    """
    from ..plan import resolve_plan

    plan = resolve_plan(engine, "sm", pattern=pattern, plan=plan,
                        symmetry_breaking=symmetry_breaking)
    symmetry_breaking = plan.symmetry_breaking
    order = list(plan.order)
    if sorted(order) != list(range(pattern.num_vertices)):
        raise InvalidPatternError(
            f"plan order {order} does not cover the pattern's "
            f"{pattern.num_vertices} vertices")
    position = {qv: step for step, qv in enumerate(order)}
    restrictions = (
        [tuple(r) for r in plan.restrictions] if symmetry_breaking else []
    )
    table = engine.new_vertex_table(f"SM:{pattern.name}")
    start = engine.simulated_seconds

    first_label = pattern.label(order[0]) if pattern.labeled else None
    engine.seed_vertices(table, label=first_label)
    if level_hook is not None:
        level_hook({"level": 1, "stage": "seed",
                    "embeddings": table.num_embeddings})

    for step in range(1, len(order)):
        qv = order[step]
        anchors = [position[w] for w in pattern.neighbors(qv) if position[w] < step]
        if not anchors:
            raise InvalidPatternError(
                f"matching order leaves {qv} disconnected at step {step}"
            )
        label = pattern.label(qv) if pattern.labeled else None
        # A restriction (a < b) applies at the step placing the later of
        # the two query vertices.
        greater_than_cols = [
            position[a] for a, b in restrictions
            if b == qv and position[a] < step
        ]
        less_than_cols = [
            position[b] for a, b in restrictions
            if a == qv and position[b] < step
        ]
        engine.vertex_extension(
            table, anchors, label=label,
            greater_than_cols=greater_than_cols,
            less_than_cols=less_than_cols,
        )
        if level_hook is not None:
            level_hook({"level": step + 1, "stage": "extend",
                        "embeddings": table.num_embeddings})

    embeddings = table.num_embeddings
    autos = pattern.automorphism_count()
    result = SMResult(
        pattern=pattern.name,
        embeddings=embeddings,
        unique_subgraphs=embeddings if symmetry_breaking else embeddings // autos,
        simulated_seconds=engine.simulated_seconds - start,
        peak_memory_bytes=engine.peak_memory_bytes,
    )
    if keep_table:
        return result, table
    table.release()
    return result


def match_pattern_binary(engine, pattern: Pattern, plan=None) -> SMResult:
    """Binary-join subgraph matching via edge extension.

    The driver grows an e-ET one query edge at a time and keeps a
    host-side assignment matrix (query vertex -> data vertex per row) to
    filter each extension against the query structure.  The plan pins the
    e-ET orientation: the seed's per-edge forward/backward capability masks
    are the source of truth for row orientation, rather than re-deriving an
    alignment permutation after the engine partitions the seed.
    """
    from ..plan import resolve_plan

    plan = resolve_plan(engine, "sm-binary", pattern=pattern, plan=plan)
    edge_order = [tuple(e) for e in plan.edge_order]
    start = engine.simulated_seconds
    table = engine.new_edge_table(f"SM-bj:{pattern.name}")

    graph = engine.graph
    # Seed: all data edges whose endpoint labels match the first query edge
    # (in either orientation).  assign[r, qv] = matched data vertex or -1.
    qu, qv = edge_order[0]
    src, dst = graph.edge_src, graph.edge_dst  # gammalint: allow[charge] -- binary-join bookkeeping on host; traffic is billed by the seed/extension/filter primitives
    engine.seed_edges(table)
    k = pattern.num_vertices
    n0 = table.num_embeddings

    if pattern.labeled:
        fwd = (graph.labels[src] == pattern.label(qu)) & (  # gammalint: allow[charge] -- binary-join bookkeeping on host; traffic is billed by the seed/extension/filter primitives
            graph.labels[dst] == pattern.label(qv)  # gammalint: allow[charge] -- binary-join bookkeeping on host; traffic is billed by the seed/extension/filter primitives
        )
        bwd = (graph.labels[src] == pattern.label(qv)) & (  # gammalint: allow[charge] -- binary-join bookkeeping on host; traffic is billed by the seed/extension/filter primitives
            graph.labels[dst] == pattern.label(qu)  # gammalint: allow[charge] -- binary-join bookkeeping on host; traffic is billed by the seed/extension/filter primitives
        )
    else:
        fwd = np.ones(n0, dtype=bool)
        bwd = np.ones(n0, dtype=bool)
    # An edge matching both ways yields two embeddings; duplicate such rows.
    # The table keeps one row per seeded edge; to honor both orientations we
    # re-seed with explicit duplication (forward copies first, then backward).
    rows = np.concatenate([np.flatnonzero(fwd), np.flatnonzero(bwd)])
    table.release()
    table = engine.new_edge_table(f"SM-bj:{pattern.name}")
    edge_ids = np.arange(graph.num_edges, dtype=np.int64)[rows]
    table.seed(edge_ids)
    # Sharded engines partition the seed by unit ownership, reordering rows
    # (stably) into shard-major order.  Orientation is recovered from the
    # plan's seed-edge capability masks instead of re-deriving an alignment
    # permutation: a stable partition keeps both copies of a dual-orientation
    # edge adjacent in relative order, so the first occurrence of an edge id
    # is the forward copy whenever the edge *can* match forward, and any
    # second occurrence is the backward copy.
    rows = table.column_values(0)
    order_idx = np.argsort(rows, kind="stable")
    sorted_rows = rows[order_idx]
    occ_sorted = np.zeros(len(rows), dtype=np.int64)
    occ_sorted[1:] = sorted_rows[1:] == sorted_rows[:-1]
    occ = np.empty(len(rows), dtype=np.int64)
    occ[order_idx] = occ_sorted
    orient_fwd = (occ == 0) & fwd[rows]
    assign = np.full((len(rows), k), -1, dtype=np.int64)
    assign[orient_fwd, qu] = src[rows[orient_fwd]]
    assign[orient_fwd, qv] = dst[rows[orient_fwd]]
    assign[~orient_fwd, qu] = dst[rows[~orient_fwd]]
    assign[~orient_fwd, qv] = src[rows[~orient_fwd]]

    matched = {qu, qv}
    for t in range(1, len(edge_order)):
        eu, ev = edge_order[t]
        # Orient so eu is already matched.
        if eu not in matched and ev in matched:
            eu, ev = ev, eu
        if eu not in matched:
            raise InvalidPatternError("edge order must stay connected")
        ev_matched = ev in matched

        engine.edge_extension(table)
        parents = table.column_parents(table.depth - 1)
        new_edges = table.column_values(table.depth - 1)
        e_src, e_dst = graph.edge_endpoints(new_edges)  # gammalint: allow[charge] -- binary-join bookkeeping on host; traffic is billed by the seed/extension/filter primitives
        a = assign[parents]

        anchor = a[:, eu]
        # The new edge must touch the data vertex assigned to eu; the other
        # endpoint is the candidate for ev.
        other = np.where(e_src == anchor, e_dst, np.where(
            e_dst == anchor, e_src, -1
        ))
        ok = other >= 0
        if ev_matched:
            ok &= other == a[:, ev]
        else:
            if pattern.labeled:
                ok &= (
                    graph.labels[np.maximum(other, 0)] == pattern.label(ev)  # gammalint: allow[charge] -- binary-join bookkeeping on host; traffic is billed by the seed/extension/filter primitives
                )
            # Injectivity: the new vertex must not already be assigned.
            ok &= ~(a == other[:, None]).any(axis=1)
        engine.filtering(table, keep_mask=ok)

        # Rebuild assignment for surviving rows.
        surv = np.flatnonzero(ok)
        assign = a[surv]
        if not ev_matched:
            assign = assign.copy()
            assign[:, ev] = other[surv]
        matched.add(ev)

    embeddings = table.num_embeddings
    autos = pattern.automorphism_count()
    result = SMResult(
        pattern=pattern.name + "+binary-join",
        embeddings=embeddings,
        unique_subgraphs=embeddings // autos if autos else embeddings,
        simulated_seconds=engine.simulated_seconds - start,
        peak_memory_bytes=engine.peak_memory_bytes,
    )
    table.release()
    return result
