"""Triangle counting — the simplest GPM workload, used by the quickstart
example and as a fast correctness cross-check for the engines.

Implemented as 3-clique listing with the ascending-order canonicality
constraint, so each triangle is counted exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass

from .kclique import count_kcliques


@dataclass
class TriangleResult:
    triangles: int
    simulated_seconds: float
    peak_memory_bytes: int


def triangle_count(engine) -> TriangleResult:
    """Count all triangles in the engine's data graph."""
    result = count_kcliques(engine, 3)
    return TriangleResult(
        triangles=result.cliques,
        simulated_seconds=result.simulated_seconds,
        peak_memory_bytes=result.peak_memory_bytes,
    )
