"""Frequent pattern mining (paper §III-C2, Algorithm 2).

FPM grows an edge-oriented embedding table level by level.  Each iteration
aggregates embeddings into the pattern table by canonical label, prunes
patterns below the support threshold together with their instances, and —
if another iteration follows — extends every surviving embedding by one
adjacent edge.  Support is instance frequency (the paper's §III definition),
so duplicate discoveries of the same edge set are removed before counting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.filtering import MinSupport
from ..core.pattern_table import PatternTable
from ..errors import ExecutionError


@dataclass
class FPMResult:
    """Outcome of one FPM run."""

    iterations: int
    min_support: int
    #: Frequent patterns of the final level (canonical code -> support).
    patterns: dict
    #: Number of frequent patterns discovered per level (1-indexed).
    frequent_per_level: list[int] = field(default_factory=list)
    simulated_seconds: float = 0.0
    peak_memory_bytes: int = 0


def frequent_pattern_mining(
    engine, iterations: int, min_support: int,
    support_metric: str = "instances", plan=None, level_hook=None,
) -> FPMResult:
    """Algorithm 2: mine all patterns of up to ``iterations`` edges with
    support at least ``min_support``.

    ``support_metric`` selects the paper's instance-frequency support or
    minimum-image-based (MNI) support; MNI is anti-monotone, so with it the
    support filter is a safe prune rather than a heuristic one.

    ``plan`` selects per-level growth strategies: the baseline grows
    unordered and dedups (the pre-planner behavior), while the planner's
    ordered strategy at the pair level generates each 2-edge set exactly
    once (only ids above the seed edge extend) and skips the dedup pass —
    identical pattern counts, one sort pass cheaper."""
    if iterations < 1:
        raise ExecutionError("FPM needs at least one iteration")
    from ..plan import resolve_plan

    plan = resolve_plan(engine, "fpm", plan=plan, iterations=iterations,
                        min_support=min_support,
                        support_metric=support_metric)
    constraint = MinSupport(min_support)
    start = engine.simulated_seconds

    table = engine.new_edge_table("FPM")
    engine.seed_edges(table)
    if level_hook is not None:
        level_hook({"level": 0, "stage": "seed",
                    "embeddings": table.num_embeddings})
    pattern_table = PatternTable()
    frequent_per_level: list[int] = []

    for level in range(1, iterations + 1):
        rows_before_filter = table.num_embeddings
        codes = engine.aggregation(
            table, pattern_table, support_metric=support_metric
        )
        engine.filtering(
            table,
            pattern_table=pattern_table,
            row_codes=codes,
            constraint=constraint,
        )
        frequent_per_level.append(len(pattern_table))
        if level_hook is not None:
            level_hook({"level": level, "stage": "filter",
                        "frequent": len(pattern_table),
                        "patterns": {str(code): support
                                     for code, support
                                     in sorted(pattern_table.as_dict().items())}})
        if level < iterations:
            strategy = (dict(plan.level_strategies[level - 1])
                        if level - 1 < len(plan.level_strategies)
                        else {"ordered": False, "dedup": True})
            # Ordered growth is only sound when the support filter dropped
            # nothing: a pair {a, b} with a < b whose smaller edge was
            # pruned must still be generated from the surviving row b, and
            # the ascending restriction would forbid that.  (Deeper levels
            # are never ordered: ascending growth also misses sets whose
            # bridge edge has the largest id.)
            ordered_ok = (level == 1
                          and table.num_embeddings == rows_before_filter)
            if strategy.get("ordered") and ordered_ok:
                # Ordered growth: every level-1 row holds one edge, so
                # restricting candidates to larger ids yields each pair
                # exactly once — no dedup needed.
                engine.edge_extension(table, greater_than_col=0)
            else:
                engine.edge_extension(table)
                # Same edge set, multiple growth orders -> one instance.
                engine.dedup(table)

    result = FPMResult(
        iterations=iterations,
        min_support=min_support,
        patterns=pattern_table.as_dict(),
        frequent_per_level=frequent_per_level,
        simulated_seconds=engine.simulated_seconds - start,
        peak_memory_bytes=engine.peak_memory_bytes,
    )
    table.release()
    return result
