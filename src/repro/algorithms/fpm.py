"""Frequent pattern mining (paper §III-C2, Algorithm 2).

FPM grows an edge-oriented embedding table level by level.  Each iteration
aggregates embeddings into the pattern table by canonical label, prunes
patterns below the support threshold together with their instances, and —
if another iteration follows — extends every surviving embedding by one
adjacent edge.  Support is instance frequency (the paper's §III definition),
so duplicate discoveries of the same edge set are removed before counting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.filtering import MinSupport
from ..core.pattern_table import PatternTable
from ..errors import ExecutionError


@dataclass
class FPMResult:
    """Outcome of one FPM run."""

    iterations: int
    min_support: int
    #: Frequent patterns of the final level (canonical code -> support).
    patterns: dict
    #: Number of frequent patterns discovered per level (1-indexed).
    frequent_per_level: list[int] = field(default_factory=list)
    simulated_seconds: float = 0.0
    peak_memory_bytes: int = 0


def frequent_pattern_mining(
    engine, iterations: int, min_support: int, support_metric: str = "instances"
) -> FPMResult:
    """Algorithm 2: mine all patterns of up to ``iterations`` edges with
    support at least ``min_support``.

    ``support_metric`` selects the paper's instance-frequency support or
    minimum-image-based (MNI) support; MNI is anti-monotone, so with it the
    support filter is a safe prune rather than a heuristic one."""
    if iterations < 1:
        raise ExecutionError("FPM needs at least one iteration")
    constraint = MinSupport(min_support)
    start = engine.simulated_seconds

    table = engine.new_edge_table("FPM")
    engine.seed_edges(table)
    pattern_table = PatternTable()
    frequent_per_level: list[int] = []

    for level in range(1, iterations + 1):
        codes = engine.aggregation(
            table, pattern_table, support_metric=support_metric
        )
        engine.filtering(
            table,
            pattern_table=pattern_table,
            row_codes=codes,
            constraint=constraint,
        )
        frequent_per_level.append(len(pattern_table))
        if level < iterations:
            engine.edge_extension(table)
            # Same edge set, multiple growth orders -> one instance.
            engine.dedup(table)

    result = FPMResult(
        iterations=iterations,
        min_support=min_support,
        patterns=pattern_table.as_dict(),
        frequent_per_level=frequent_per_level,
        simulated_seconds=engine.simulated_seconds - start,
        peak_memory_bytes=engine.peak_memory_bytes,
    )
    table.release()
    return result
