"""Motif counting: the distribution of small connected subgraphs.

Counts every connected subgraph of exactly ``num_edges`` edges, grouped by
pattern (canonical label).  This exercises the same edge-extension +
aggregation pipeline as FPM but stresses aggregation hardest, since nothing
is pruned along the way.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.pattern_table import PatternTable
from ..errors import ExecutionError


@dataclass
class MotifResult:
    """Histogram of ``num_edges``-edge connected subgraphs by pattern."""

    num_edges: int
    #: canonical code -> instance count (patterns of num_edges edges only).
    histogram: dict
    total_instances: int
    simulated_seconds: float
    peak_memory_bytes: int


def motif_count(engine, num_edges: int, plan=None,
                level_hook=None) -> MotifResult:
    """Count all connected ``num_edges``-edge subgraphs by pattern.

    ``plan`` selects per-level growth strategies (see
    :func:`repro.algorithms.fpm.frequent_pattern_mining`); the planner's
    ordered pair-level growth skips the first dedup pass with identical
    histograms.  ``level_hook`` is called after each completed stage (see
    :func:`repro.algorithms.kclique.count_kcliques`); the final
    ``aggregate`` stage carries the full histogram."""
    if num_edges < 1:
        raise ExecutionError("motifs need at least one edge")
    from ..plan import resolve_plan

    plan = resolve_plan(engine, "motif", plan=plan, num_edges=num_edges)
    start = engine.simulated_seconds
    table = engine.new_edge_table(f"motif:{num_edges}")
    engine.seed_edges(table)
    if level_hook is not None:
        level_hook({"level": 1, "stage": "seed",
                    "embeddings": table.num_embeddings})
    for level in range(1, num_edges):
        strategy = (dict(plan.level_strategies[level - 1])
                    if level - 1 < len(plan.level_strategies)
                    else {"ordered": False, "dedup": True})
        if strategy.get("ordered"):
            if level != 1:
                raise ExecutionError(
                    "ordered edge growth is only sound at the pair level"
                )
            engine.edge_extension(table, greater_than_col=0)
        else:
            engine.edge_extension(table)
        if strategy.get("dedup", True):
            engine.dedup(table)
        if level_hook is not None:
            level_hook({"level": level + 1, "stage": "extend",
                        "embeddings": table.num_embeddings})
    pattern_table = PatternTable()
    engine.aggregation(table, pattern_table)
    histogram = pattern_table.as_dict()
    if level_hook is not None:
        level_hook({"level": num_edges, "stage": "aggregate",
                    "histogram": {str(code): count
                                  for code, count in sorted(histogram.items())},
                    "total_instances": sum(histogram.values())})
    result = MotifResult(
        num_edges=num_edges,
        histogram=histogram,
        total_instances=sum(histogram.values()),
        simulated_seconds=engine.simulated_seconds - start,
        peak_memory_bytes=engine.peak_memory_bytes,
    )
    table.release()
    return result
