"""Per-query billing / QoS records.

Every completed (or failed) query yields one ``gamma-billing/1`` record:
identity (query id, tenant, priority), what ran (family, params, dataset,
execution shape), what it cost (simulated seconds, peak memory, queue and
execution wall time), and how rough the ride was (preemptions, resumes,
crashes).  The record is the telemetry manifest's billing-facing sibling:
manifests answer "what did the hardware do", billing records answer "what
does the tenant owe and did we meet the QoS bar".
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict

__all__ = ["BILLING_SCHEMA", "billing_record", "write_billing_record"]

BILLING_SCHEMA = "gamma-billing/1"


def _iso(stamp: "float | None") -> "str | None":
    if stamp is None:
        return None
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(stamp))


def billing_record(state, *, executor: "str | None" = None) -> Dict[str, Any]:
    """Build the billing/QoS record for a finished :class:`QueryState`."""
    spec = state.spec
    result = state.result or {}
    return {
        "schema": BILLING_SCHEMA,
        "query": state.id,
        "tenant": spec.tenant,
        "priority": spec.priority,
        "family": spec.family,
        "params": spec.params(),
        "dataset": spec.dataset,
        "gpus": spec.gpus,
        "shard_policy": spec.shard_policy if spec.gpus > 1 else None,
        "executor": executor or state.executor_used,
        "plan": spec.plan,
        "status": state.status,
        "submitted_utc": _iso(state.submitted_wall),
        "finished_utc": _iso(state.finished_wall),
        "queue_seconds": state.queue_seconds,
        "exec_seconds": state.exec_seconds,
        "latency_seconds": state.latency_seconds,
        "stages": state.stages_emitted,
        "preemptions": state.preemptions,
        "resumes": state.resumes,
        "crashes": state.crashes,
        "simulated_seconds": result.get("simulated_seconds"),
        "peak_memory_bytes": result.get("peak_memory_bytes"),
        "error": state.error,
    }


def write_billing_record(record: Dict[str, Any], directory: str) -> str:
    """Write one record as ``billing-<id>.json`` under ``directory``."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"billing-{record['query']:06d}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
