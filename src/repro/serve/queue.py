"""Admission queue: per-tenant quotas, priority scheduling, fair shares.

The queue is the single synchronization point of the serve layer.  It
owns every :class:`QueryState` (queued, running, or finished), admits
submissions against per-tenant quotas, and hands runnable queries to
scheduler workers under a fairness bound:

* **Admission** — a tenant must be registered (or auto-registered with
  the default quota); exceeding its ``max_pending`` backlog raises
  :class:`~repro.errors.AdmissionError` (HTTP 429).
* **Priority** — among eligible queries, higher ``priority`` wins;
  ties break toward the tenant with fewer queries in flight, then
  least-recently-scheduled tenant, then submission order.  A preempted
  query keeps its original submission sequence, so it resumes ahead of
  its tenant's later arrivals at equal priority (across tenants the
  least-recently-scheduled tenant still wins the tie).
* **Fairness** — with ``slots`` concurrent execution slots and ``A``
  active tenants (pending or in-flight work), each tenant's fair share
  is ``slots // A``; a tenant is never scheduled beyond ``share + 1``
  queries in flight (nor beyond its own ``max_inflight``).  Every
  acquire/release appends an accounting event to :attr:`trace`, which
  the fairness property suite replays.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import AdmissionError
from .query import QuerySpec
from .stream import ResultStream

__all__ = ["DEFAULT_QUOTA", "QueryQueue", "QueryState", "TenantQuota"]


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits."""

    #: Hard cap on this tenant's concurrently executing queries.
    max_inflight: int = 2
    #: Hard cap on this tenant's queued-but-not-running backlog.
    max_pending: int = 64


DEFAULT_QUOTA = TenantQuota()

#: Lifecycle states a query moves through.
QUEUED = "queued"
RUNNING = "running"
PREEMPTED = "preempted"
COMPLETED = "completed"
FAILED = "failed"


class QueryState:
    """Mutable per-query bookkeeping (owned by the queue, one per submit)."""

    def __init__(self, query_id: int, spec: QuerySpec, seq: int) -> None:
        self.id = query_id
        self.spec = spec
        self.seq = seq
        self.status = QUEUED
        self.stream = ResultStream(query_id)
        self.checkpoint_dir: "str | None" = None
        #: Stage counter for the *current* driver invocation (reset per
        #: attempt; replayed stages re-count up to ``stages_emitted``).
        self.stage_calls = 0
        #: High-water mark of stages actually streamed (dedups replay).
        self.stages_emitted = 0
        self.preemptions = 0
        self.resumes = 0
        self.crashes = 0
        self.result: "dict | None" = None
        self.billing: "dict | None" = None
        self.error: "str | None" = None
        self.submitted_wall = time.time()
        self.submitted_mono = time.monotonic()
        self.finished_wall: "float | None" = None
        self.finished_mono: "float | None" = None
        self.queue_seconds = 0.0
        self.exec_seconds = 0.0
        self.executor_used: "str | None" = None
        self._wait_since: "float | None" = self.submitted_mono

    @property
    def done(self) -> bool:
        return self.status in (COMPLETED, FAILED)

    @property
    def latency_seconds(self) -> "float | None":
        if self.finished_mono is None:
            return None
        return self.finished_mono - self.submitted_mono

    def snapshot(self) -> dict:
        """JSON-safe status document (the HTTP ``GET /v1/query`` body)."""
        return {
            "query": self.id,
            "tenant": self.spec.tenant,
            "family": self.spec.family,
            "priority": self.spec.priority,
            "status": self.status,
            "stages": self.stages_emitted,
            "preemptions": self.preemptions,
            "resumes": self.resumes,
            "crashes": self.crashes,
            "result": self.result,
            "error": self.error,
        }


class QueryQueue:
    """Thread-safe priority queue with tenant quotas and fair shares."""

    def __init__(self, slots: int = 2, auto_register: bool = True,
                 default_quota: "TenantQuota | None" = None) -> None:
        self.slots = max(1, int(slots))
        self.auto_register = auto_register
        self.default_quota = default_quota or DEFAULT_QUOTA
        self._cond = threading.Condition()
        self._quotas: Dict[str, TenantQuota] = {}
        self._pending: List[QueryState] = []
        self._inflight: Dict[str, int] = {}
        self._last_pick: Dict[str, int] = {}
        self._states: Dict[int, QueryState] = {}
        self._next_id = 1
        self._tick = 0
        #: Accounting events ({"event", "query", "tenant", "share",
        #: "inflight", ...}) the fairness property suite replays.
        self.trace: List[dict] = []

    # -- tenants -------------------------------------------------------------
    def register_tenant(self, name: str,
                        max_inflight: "int | None" = None,
                        max_pending: "int | None" = None) -> TenantQuota:
        quota = TenantQuota(
            max_inflight=(max_inflight if max_inflight is not None
                          else self.default_quota.max_inflight),
            max_pending=(max_pending if max_pending is not None
                         else self.default_quota.max_pending),
        )
        with self._cond:
            self._quotas[name] = quota
            self._inflight.setdefault(name, 0)
        return quota

    def tenants(self) -> dict:
        with self._cond:
            return {
                name: {
                    "max_inflight": quota.max_inflight,
                    "max_pending": quota.max_pending,
                    "inflight": self._inflight.get(name, 0),
                    "pending": sum(1 for state in self._pending
                                   if state.spec.tenant == name),
                }
                for name, quota in sorted(self._quotas.items())
            }

    # -- admission -----------------------------------------------------------
    def submit(self, spec: QuerySpec) -> QueryState:
        spec.validate()
        tenant = spec.tenant
        with self._cond:
            quota = self._quotas.get(tenant)
            if quota is None:
                if not self.auto_register:
                    raise AdmissionError(
                        f"unknown tenant {tenant!r} (auto-registration "
                        "is disabled)", tenant=tenant)
                quota = self.default_quota
                self._quotas[tenant] = quota
                self._inflight.setdefault(tenant, 0)
            backlog = sum(1 for state in self._pending
                          if state.spec.tenant == tenant)
            if backlog >= quota.max_pending:
                raise AdmissionError(
                    f"tenant {tenant!r} backlog full "
                    f"({backlog}/{quota.max_pending} pending)",
                    tenant=tenant)
            state = QueryState(self._next_id, spec, seq=self._next_id)
            self._next_id += 1
            self._states[state.id] = state
            self._pending.append(state)
            state.stream.emit("queued", tenant=tenant,
                              family=spec.family, priority=spec.priority)
            self._cond.notify_all()
            return state

    def get(self, query_id: int) -> "QueryState | None":
        with self._cond:
            return self._states.get(query_id)

    # -- fairness ------------------------------------------------------------
    def _active_tenants(self) -> List[str]:
        active = {state.spec.tenant for state in self._pending}
        active.update(name for name, count in self._inflight.items()
                      if count > 0)
        return sorted(active)

    def _share(self, active_count: int) -> int:
        return self.slots // max(1, active_count)

    def _eligible(self, state: QueryState, share: int,
                  released: "str | None" = None) -> bool:
        tenant = state.spec.tenant
        inflight = self._inflight.get(tenant, 0)
        if released == tenant:
            inflight -= 1
        quota = self._quotas.get(tenant, self.default_quota)
        return inflight < min(quota.max_inflight, share + 1)

    def _pick(self, released: "str | None" = None) -> "QueryState | None":
        if not self._pending:
            return None
        active = self._active_tenants()
        share = self._share(len(active))
        eligible = [state for state in self._pending
                    if self._eligible(state, share, released)]
        if not eligible:
            return None
        eligible.sort(key=lambda state: (
            -state.spec.priority,
            self._inflight.get(state.spec.tenant, 0),
            self._last_pick.get(state.spec.tenant, 0),
            state.seq,
        ))
        return eligible[0]

    # -- scheduling ----------------------------------------------------------
    def acquire(self, block: bool = False,
                timeout: "float | None" = None) -> "QueryState | None":
        """Pop the next runnable query (or None when nothing is eligible)."""
        deadline = (time.monotonic() + timeout) if timeout is not None \
            else None
        with self._cond:
            while True:
                state = self._pick()
                if state is not None:
                    tenant = state.spec.tenant
                    active = self._active_tenants()
                    self._pending.remove(state)
                    self._inflight[tenant] = \
                        self._inflight.get(tenant, 0) + 1
                    self._tick += 1
                    self._last_pick[tenant] = self._tick
                    self.trace.append({
                        "event": "acquire", "query": state.id,
                        "tenant": tenant,
                        "share": self._share(len(active)),
                        "active": active,
                        "inflight": dict(self._inflight),
                    })
                    return state
                if not block:
                    return None
                wait = None
                if deadline is not None:
                    wait = deadline - time.monotonic()
                    if wait <= 0:
                        return None
                self._cond.wait(wait)

    def release(self, state: QueryState) -> None:
        """A query left execution for good (completed or failed)."""
        with self._cond:
            tenant = state.spec.tenant
            self._inflight[tenant] = max(
                0, self._inflight.get(tenant, 0) - 1)
            self.trace.append({
                "event": "release", "query": state.id, "tenant": tenant,
                "inflight": dict(self._inflight),
            })
            self._cond.notify_all()

    def requeue(self, state: QueryState) -> None:
        """A preempted/crash-retried query goes back, keeping its seq."""
        with self._cond:
            tenant = state.spec.tenant
            self._inflight[tenant] = max(
                0, self._inflight.get(tenant, 0) - 1)
            state.status = PREEMPTED
            state._wait_since = time.monotonic()
            self._pending.append(state)
            self.trace.append({
                "event": "requeue", "query": state.id, "tenant": tenant,
                "inflight": dict(self._inflight),
            })
            self._cond.notify_all()

    def preemptor_waiting(self, victim: QueryState) -> bool:
        """Is a strictly-higher-priority query runnable if ``victim`` yields?

        Eligibility is evaluated *as if* the victim had released its slot,
        so a same-tenant high-priority query at the fairness bound still
        counts — requeueing the victim is exactly what frees its budget.
        """
        with self._cond:
            if not self._pending:
                return False
            active = self._active_tenants()
            share = self._share(len(active))
            victim_tenant = victim.spec.tenant
            return any(
                state.spec.priority > victim.spec.priority
                and self._eligible(state, share, released=victim_tenant)
                for state in self._pending
            )

    # -- reporting -----------------------------------------------------------
    def pending_count(self, tenant: "str | None" = None) -> int:
        with self._cond:
            if tenant is None:
                return len(self._pending)
            return sum(1 for state in self._pending
                       if state.spec.tenant == tenant)

    def inflight_count(self, tenant: "str | None" = None) -> int:
        with self._cond:
            if tenant is None:
                return sum(self._inflight.values())
            return self._inflight.get(tenant, 0)

    def states(self) -> List[QueryState]:
        with self._cond:
            return [self._states[qid] for qid in sorted(self._states)]

    def stats(self) -> dict:
        with self._cond:
            states = list(self._states.values())
            return {
                "slots": self.slots,
                "submitted": len(states),
                "pending": len(self._pending),
                "inflight": sum(self._inflight.values()),
                "completed": sum(1 for s in states
                                 if s.status == COMPLETED),
                "failed": sum(1 for s in states if s.status == FAILED),
                "preemptions": sum(s.preemptions for s in states),
                "crashes": sum(s.crashes for s in states),
                "tenants": len(self._quotas),
            }
