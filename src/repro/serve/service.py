"""The HTTP front end: stdlib ``http.server`` over the scheduler.

Endpoints (all JSON):

* ``GET  /healthz`` — liveness plus queue stats.
* ``GET  /v1/stats`` — scheduler statistics.
* ``GET  /v1/tenants`` — registered tenants and their quota usage.
* ``POST /v1/query`` — submit a :class:`~repro.serve.query.QuerySpec`
  body.  Default is streaming: the response is ``application/x-ndjson``,
  one stream record per line (``queued``/``started``/``partial``/
  ``preempted``/``resumed``/``crash``/``result``/``error``/``billing``),
  held open until the query finishes.  ``?wait=0`` returns the query id
  immediately instead (poll with ``GET /v1/query/<id>``).
* ``GET  /v1/query/<id>`` — status snapshot, records so far, billing.
* ``POST /v1/shutdown`` — stop accepting work and exit ``serve_forever``.

Admission failures map to 429, malformed specs to 400, unknown ids to
404.  :class:`ServeClient` is the urllib-based client the CLI and the
load-generator benchmark share.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Iterator, Optional, Tuple

from ..errors import AdmissionError, ExecutionError, GammaError
from .query import QuerySpec
from .scheduler import Scheduler

__all__ = ["MiningService", "ServeClient"]


def _json_bytes(doc: Any) -> bytes:
    return (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")


class _Handler(BaseHTTPRequestHandler):
    """One request; ``server.scheduler`` is the shared scheduler."""

    # HTTP/1.0 keeps streaming simple: no chunked framing needed, the
    # client reads lines until the connection closes.
    protocol_version = "HTTP/1.0"

    def log_message(self, fmt: str, *args) -> None:  # pragma: no cover
        if self.server.verbose:  # type: ignore[attr-defined]
            super().log_message(fmt, *args)

    @property
    def scheduler(self) -> Scheduler:
        return self.server.scheduler  # type: ignore[attr-defined]

    # -- plumbing ------------------------------------------------------------
    def _reply(self, status: int, doc: Any) -> None:
        body = _json_bytes(doc)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        try:
            return json.loads(raw.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ExecutionError(f"invalid JSON body: {exc}") from exc

    def _query_flag(self, name: str, default: bool) -> bool:
        path, _, query = self.path.partition("?")
        del path
        for pair in query.split("&"):
            key, _, value = pair.partition("=")
            if key == name:
                return value not in ("0", "false", "no")
        return default

    # -- routes --------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server casing)
        path = self.path.partition("?")[0]
        if path == "/healthz":
            self._reply(200, {"ok": True, **self.scheduler.stats()})
        elif path == "/v1/stats":
            self._reply(200, self.scheduler.stats())
        elif path == "/v1/tenants":
            self._reply(200, self.scheduler.queue.tenants())
        elif path.startswith("/v1/query/"):
            self._get_query(path[len("/v1/query/"):])
        else:
            self._reply(404, {"error": f"unknown path {path!r}"})

    def _get_query(self, ident: str) -> None:
        try:
            query_id = int(ident)
        except ValueError:
            self._reply(400, {"error": f"bad query id {ident!r}"})
            return
        state = self.scheduler.queue.get(query_id)
        if state is None:
            self._reply(404, {"error": f"no query {query_id}"})
            return
        doc = state.snapshot()
        doc["records"] = state.stream.records()
        doc["billing"] = state.billing
        self._reply(200, doc)

    def do_POST(self) -> None:  # noqa: N802 (http.server casing)
        path = self.path.partition("?")[0]
        if path == "/v1/query":
            self._post_query()
        elif path == "/v1/shutdown":
            self._reply(200, {"ok": True, "stopping": True})
            threading.Thread(target=self.server.shutdown,
                             daemon=True).start()
        else:
            self._reply(404, {"error": f"unknown path {path!r}"})

    def _post_query(self) -> None:
        try:
            spec = QuerySpec.from_dict(self._read_body())
            state = self.scheduler.submit(spec)
        except AdmissionError as exc:
            self._reply(429, {"error": str(exc), "tenant": exc.tenant})
            return
        except (ExecutionError, GammaError, TypeError) as exc:
            self._reply(400, {"error": str(exc)})
            return
        if not self._query_flag("wait", True):
            self._reply(202, {"query": state.id, "status": state.status})
            return
        # Stream records until the query finishes; HTTP/1.0 close-delimits.
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        try:
            for record in state.stream.follow():
                self.wfile.write(_json_bytes(record))
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # client went away; the query keeps running


class MiningService:
    """The long-lived server: scheduler + ThreadingHTTPServer."""

    def __init__(self, scheduler: Scheduler, host: str = "127.0.0.1",
                 port: int = 0, verbose: bool = False) -> None:
        self.scheduler = scheduler
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._server.scheduler = scheduler  # type: ignore[attr-defined]
        self._server.verbose = verbose  # type: ignore[attr-defined]
        self._thread: "threading.Thread | None" = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._server.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "MiningService":
        """Run scheduler workers and serve HTTP on a background thread."""
        self.scheduler.start()
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True,
            name="gamma-serve-http")
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Blocking mode for the CLI (returns after ``/v1/shutdown``)."""
        self.scheduler.start()
        try:
            self._server.serve_forever()
        finally:
            self.close()

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.scheduler.close()

    def __enter__(self) -> "MiningService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ServeClient:
    """Minimal urllib client for :class:`MiningService`."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _get(self, path: str) -> Dict[str, Any]:
        try:
            with urllib.request.urlopen(self.base_url + path,
                                        timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            detail = json.loads(exc.read().decode("utf-8") or "{}")
            raise ExecutionError(
                f"HTTP {exc.code}: {detail.get('error', exc.reason)}")

    def _post(self, path: str, doc: Any) -> Dict[str, Any]:
        request = urllib.request.Request(
            self.base_url + path, data=_json_bytes(doc),
            headers={"Content-Type": "application/json"}, method="POST")
        try:
            with urllib.request.urlopen(
                    request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            detail = json.loads(exc.read().decode("utf-8") or "{}")
            raise AdmissionError(detail.get("error", str(exc))) \
                if exc.code == 429 else ExecutionError(
                    f"HTTP {exc.code}: {detail.get('error', exc.reason)}")

    def health(self) -> Dict[str, Any]:
        return self._get("/healthz")

    def stats(self) -> Dict[str, Any]:
        return self._get("/v1/stats")

    def tenants(self) -> Dict[str, Any]:
        return self._get("/v1/tenants")

    def query(self, query_id: int) -> Dict[str, Any]:
        return self._get(f"/v1/query/{query_id}")

    def shutdown(self) -> Dict[str, Any]:
        return self._post("/v1/shutdown", {})

    def submit_nowait(self, spec: "QuerySpec | dict") -> Dict[str, Any]:
        doc = spec.to_dict() if isinstance(spec, QuerySpec) else spec
        return self._post("/v1/query?wait=0", doc)

    def submit(self, spec: "QuerySpec | dict",
               timeout: "float | None" = None) -> Iterator[Dict[str, Any]]:
        """Submit and yield the query's stream records as they arrive."""
        doc = spec.to_dict() if isinstance(spec, QuerySpec) else spec
        request = urllib.request.Request(
            self.base_url + "/v1/query", data=_json_bytes(doc),
            headers={"Content-Type": "application/json"}, method="POST")
        try:
            response = urllib.request.urlopen(
                request, timeout=timeout or self.timeout)
        except urllib.error.HTTPError as exc:
            detail = json.loads(exc.read().decode("utf-8") or "{}")
            message = detail.get("error", str(exc))
            if exc.code == 429:
                raise AdmissionError(message, tenant=detail.get("tenant"))
            raise ExecutionError(f"HTTP {exc.code}: {message}")
        with response:
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))

    def run(self, spec: "QuerySpec | dict",
            timeout: "float | None" = None) -> Dict[str, Any]:
        """Submit, drain the stream, return the final status snapshot."""
        records = list(self.submit(spec, timeout=timeout))
        query_id: Optional[int] = records[0]["query"] if records else None
        if query_id is None:
            raise ExecutionError("empty response stream")
        doc = self.query(query_id)
        doc["records"] = records
        return doc
