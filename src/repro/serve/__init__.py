"""Mining service mode: multi-tenant query serving for the GAMMA engine.

The serve layer turns the batch engine into a long-lived service:

* :class:`QuerySpec` / :class:`QueryQueue` — plain-data queries admitted
  under per-tenant quotas with priority scheduling and fair shares;
* :class:`Scheduler` — level-by-level execution over per-query
  ``Gamma``/``ShardedGamma`` engines, with checkpoint-journal preemption,
  crash containment, warm process-pool reuse, and a shared plan cache;
* :class:`ResultStream` — per-query JSON-record streams (chunked
  JSON-lines over HTTP);
* :class:`MiningService` / :class:`ServeClient` — the stdlib
  ``http.server`` front end and its urllib client;
* :func:`billing_record` — per-query telemetry-derived billing/QoS
  records.

See ``docs/SERVING.md`` for the admission/quota/preemption model and the
wire formats.
"""

from .query import FAMILIES, QuerySpec, fold_partials, result_payload, run_query
from .queue import DEFAULT_QUOTA, QueryQueue, QueryState, TenantQuota
from .records import BILLING_SCHEMA, billing_record, write_billing_record
from .scheduler import Scheduler, ServeConfig
from .service import MiningService, ServeClient
from .stream import ResultStream

__all__ = [
    "BILLING_SCHEMA",
    "DEFAULT_QUOTA",
    "FAMILIES",
    "MiningService",
    "QueryQueue",
    "QuerySpec",
    "QueryState",
    "ResultStream",
    "Scheduler",
    "ServeClient",
    "ServeConfig",
    "TenantQuota",
    "billing_record",
    "fold_partials",
    "result_payload",
    "run_query",
    "write_billing_record",
]
