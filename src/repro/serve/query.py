"""Query specifications and the family dispatch the serve scheduler runs.

A :class:`QuerySpec` is the plain-data description of one mining request:
the task family plus its parameters, the dataset, the execution shape
(GPU count, shard policy, executor backend), and the tenancy fields the
admission queue cares about (tenant, priority).  Specs are frozen and
JSON-round-trippable — they arrive over HTTP, cross no process boundary
with live handles, and appear verbatim in billing records.

:func:`run_query` dispatches a spec to the matching algorithm driver with
the scheduler's ``level_hook`` threaded through, so per-level partials
stream out of exactly the same op sequence a batch run executes — the
streamed-vs-batch parity suite leans on that being *structural*, not a
re-implementation.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..errors import ExecutionError

__all__ = [
    "FAMILIES",
    "QuerySpec",
    "fold_partials",
    "result_payload",
    "run_query",
]

#: Task families the service admits (CLI task-name spelling).
FAMILIES = ("kcl", "sm", "motifs", "fpm")

#: Accepted aliases -> canonical family name.
_FAMILY_ALIASES = {
    "kclique": "kcl",
    "clique": "kcl",
    "motif": "motifs",
    "subgraph": "sm",
    "match": "sm",
}

_CRASH_POLICIES = ("retry", "fail")


@dataclass(frozen=True)
class QuerySpec:
    """One admissible mining query (plain data, JSON-round-trippable)."""

    family: str = "kcl"
    tenant: str = "default"
    priority: int = 0
    dataset: str = "ER"
    #: Simulated GPUs; 1 runs a plain ``Gamma``, >1 a ``ShardedGamma``.
    gpus: int = 1
    shard_policy: str = "static"
    #: Shard backend name; ``None`` defers to the scheduler's default
    #: (:func:`repro.shard.serve_default_executor`).
    executor: "str | None" = None
    plan: str = "baseline"
    # family parameters (unused ones keep their defaults)
    k: int = 4
    query: int = 1
    symmetry_breaking: bool = False
    num_edges: int = 2
    iterations: int = 2
    min_support: int = 10
    support_metric: str = "instances"
    #: Degradation policy name applied under memory pressure
    #: (``halve-chunk`` / ``demote-pages`` / ``spill``; ``None`` lets
    #: memory faults fail the query).
    degradation: "str | None" = None
    #: What the scheduler does when a worker dies mid-query.
    on_crash: str = "retry"
    #: Deterministic fault injection (a ``FaultPlan.to_dict()`` document);
    #: the crash-matrix suite drives worker deaths through this.
    fault_plan: "dict | None" = None
    #: Shard the fault plan installs on (multi-GPU queries).
    fault_shard: int = 0

    def validate(self) -> "QuerySpec":
        if self.family not in FAMILIES:
            raise ExecutionError(
                f"unknown query family {self.family!r}; "
                f"expected one of {FAMILIES}")
        if self.gpus < 1:
            raise ExecutionError("gpus must be >= 1")
        if self.on_crash not in _CRASH_POLICIES:
            raise ExecutionError(
                f"on_crash must be one of {_CRASH_POLICIES}, "
                f"got {self.on_crash!r}")
        if self.family == "kcl" and self.k < 1:
            raise ExecutionError("k must be >= 1")
        if self.family == "fpm" and self.iterations < 1:
            raise ExecutionError("iterations must be >= 1")
        if self.family == "motifs" and self.num_edges < 1:
            raise ExecutionError("num_edges must be >= 1")
        return self

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, doc: dict) -> "QuerySpec":
        if not isinstance(doc, dict):
            raise ExecutionError("query spec must be a JSON object")
        known = {field.name for field in dataclasses.fields(cls)}
        fields = {}
        for key, value in doc.items():
            if key not in known:
                raise ExecutionError(f"unknown query field {key!r}")
            fields[key] = value
        family = fields.get("family", "kcl")
        fields["family"] = _FAMILY_ALIASES.get(family, family)
        return cls(**fields).validate()

    def params(self) -> dict:
        """The family-relevant parameters only (billing-record view)."""
        if self.family == "kcl":
            return {"k": self.k}
        if self.family == "sm":
            return {"query": self.query,
                    "symmetry_breaking": self.symmetry_breaking}
        if self.family == "motifs":
            return {"num_edges": self.num_edges}
        return {"iterations": self.iterations,
                "min_support": self.min_support,
                "support_metric": self.support_metric}


def run_query(engine, spec: QuerySpec, level_hook=None, plan=None):
    """Run one query's driver on ``engine``; returns the result dataclass.

    ``plan`` overrides ``spec.plan`` (the scheduler pre-resolves ``auto``
    plans through its shared :class:`~repro.plan.PlanCache`).
    """
    from ..algorithms import (
        count_kcliques,
        frequent_pattern_mining,
        match_pattern,
        motif_count,
    )
    from ..graph import sm_query

    plan = plan if plan is not None else spec.plan
    if spec.family == "kcl":
        return count_kcliques(engine, spec.k, plan=plan,
                              level_hook=level_hook)
    if spec.family == "sm":
        return match_pattern(engine, sm_query(spec.query), plan=plan,
                             symmetry_breaking=spec.symmetry_breaking,
                             level_hook=level_hook)
    if spec.family == "motifs":
        return motif_count(engine, spec.num_edges, plan=plan,
                           level_hook=level_hook)
    if spec.family == "fpm":
        return frequent_pattern_mining(
            engine, spec.iterations, spec.min_support,
            support_metric=spec.support_metric, plan=plan,
            level_hook=level_hook)
    raise ExecutionError(f"unknown query family {spec.family!r}")


def result_payload(spec: QuerySpec, result) -> dict:
    """JSON-safe result document (pattern-code keys stringified/sorted)."""
    payload = dataclasses.asdict(result)
    for key in ("histogram", "patterns"):
        if key in payload:
            payload[key] = {str(code): count for code, count
                            in sorted(payload[key].items())}
    return payload


def fold_partials(spec: QuerySpec, partials: list) -> dict:
    """Reduce a query's streamed partials to the batch-result fields.

    The parity contract: for every completed query, the folded partials
    must equal the corresponding fields of a batch run's result — the
    stream is a prefix view of the same computation, not an estimate.
    """
    if not partials:
        return {}
    last = partials[-1]
    if spec.family == "kcl":
        return {"cliques": last.get("embeddings")}
    if spec.family == "sm":
        return {"embeddings": last.get("embeddings")}
    if spec.family == "motifs":
        aggregates = [p for p in partials if p.get("stage") == "aggregate"]
        if not aggregates:
            return {}
        return {"histogram": aggregates[-1].get("histogram"),
                "total_instances": aggregates[-1].get("total_instances")}
    filters = [p for p in partials if p.get("stage") == "filter"]
    if not filters:
        return {}
    return {"patterns": filters[-1].get("patterns"),
            "frequent_per_level": [p.get("frequent") for p in filters]}
