"""Per-query result streams: ordered JSON-safe records, followable live.

Every query owns one :class:`ResultStream`.  The scheduler emits
lifecycle and per-level records into it; HTTP handlers (and tests)
``follow()`` it concurrently, receiving each record exactly once, in
emission order, until the stream closes.  Records are plain dicts with a
monotonically increasing ``seq`` — the chunked JSON-lines wire format is
just one record per line.
"""

from __future__ import annotations

import threading
from typing import Iterator, List, Optional

__all__ = ["ResultStream"]


class ResultStream:
    """Thread-safe append-only record log with blocking followers."""

    def __init__(self, query_id: int) -> None:
        self.query_id = query_id
        self._records: List[dict] = []
        self._cond = threading.Condition()
        self._closed = False

    def emit(self, kind: str, **payload) -> dict:
        """Append one record; wakes every follower."""
        with self._cond:
            if self._closed:
                raise RuntimeError(
                    f"stream for query {self.query_id} is closed")
            record = {"seq": len(self._records) + 1,
                      "query": self.query_id, "type": kind}
            record.update(payload)
            self._records.append(record)
            self._cond.notify_all()
            return record

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def records(self) -> List[dict]:
        """Snapshot of everything emitted so far."""
        with self._cond:
            return list(self._records)

    def wait(self, timeout: "float | None" = None) -> bool:
        """Block until the stream closes; True when it did."""
        with self._cond:
            return self._cond.wait_for(lambda: self._closed, timeout)

    def follow(self, timeout: Optional[float] = None) -> Iterator[dict]:
        """Yield records in order, blocking for new ones until close.

        ``timeout`` bounds each *wait* (not the total); a stall past it
        stops the iteration early rather than hanging a handler thread.
        """
        cursor = 0
        while True:
            with self._cond:
                ready = self._cond.wait_for(
                    lambda: len(self._records) > cursor or self._closed,
                    timeout)
                if not ready:
                    return
                batch = self._records[cursor:]
                cursor += len(batch)
                done = self._closed and cursor == len(self._records)
            for record in batch:
                yield record
            if done:
                return
