"""The serve scheduler: level-by-level execution with preemption.

One :class:`Scheduler` drains a :class:`~repro.serve.queue.QueryQueue`,
building a fresh ``Gamma``/``ShardedGamma`` per attempt and running the
query's driver through ``engine.run`` with a per-query checkpoint
directory.  Three properties fall out of how the pieces compose:

* **Streaming == batch.**  The driver's ``level_hook`` fires after each
  completed level *inside the same op sequence a batch run executes*, so
  streamed partials are a prefix view of the batch computation, never a
  re-implementation of it.
* **Preemption is free.**  Every op is journaled and snapshotted by the
  checkpointing layer (PR 4), so the hook can raise
  :class:`~repro.errors.QueryPreempted` between levels: the engine is
  torn down, the query requeued, and the next attempt replays the
  journal bit-identically before continuing — a high-priority tenant
  never waits behind a long k-clique run, and the preempt/resume parity
  suite pins byte-identical results.
* **Crashes are contained.**  A :class:`~repro.errors.WorkerCrashed`
  from the process backend marks only that query (retry from checkpoint
  or fail, per its ``on_crash`` policy); the broken pool is evicted and
  other tenants never notice.

Two driving modes share the same ``_execute`` core: ``run_until_idle``
drains synchronously on the calling thread (the deterministic mode every
property test uses), and ``start``/``stop`` run ``slots`` worker threads
for the HTTP service and the load-generator benchmark.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.framework import Gamma
from ..errors import (
    ExecutionError,
    GammaError,
    QueryPreempted,
    WorkerCrashed,
)
from ..shard import PROCESS_EXECUTOR, ProcessExecutor, ShardedGamma
from ..shard.executor import serve_default_executor
from . import queue as serve_queue
from .query import QuerySpec, result_payload, run_query
from .queue import QueryQueue, QueryState
from .records import billing_record, write_billing_record
from .stream import ResultStream  # noqa: F401  (re-exported surface)

__all__ = ["Scheduler", "ServeConfig"]


@dataclass
class ServeConfig:
    """Scheduler-wide settings (per-query knobs live on the spec)."""

    #: Concurrent execution slots (worker threads in threaded mode).
    slots: int = 2
    #: Default shard backend for multi-GPU queries; ``None`` resolves via
    #: :func:`repro.shard.serve_default_executor` (process on >=4 cores).
    executor: "str | None" = None
    #: Keep process pools alive between queries (same dataset + shape).
    reuse_pools: bool = True
    #: Allow higher-priority queries to suspend running ones.
    preemption: bool = True
    #: Checkpoint-resume retries granted to a query whose worker crashed.
    crash_retries: int = 1
    #: Root for per-query checkpoint dirs (a temp dir when ``None``).
    workdir: "str | None" = None
    #: When set, per-query manifests and billing records land here.
    manifest_dir: "str | None" = None
    #: Engine configuration shared by every query's engine.
    gamma_config: Any = None
    auto_register: bool = True
    default_max_inflight: int = 2
    default_max_pending: int = 64


class Scheduler:
    """Runs admitted queries over per-query engines, preemptibly."""

    def __init__(self, config: "ServeConfig | None" = None,
                 graphs: "Dict[str, Any] | None" = None,
                 queue: "QueryQueue | None" = None) -> None:
        self.config = config or ServeConfig()
        self.queue = queue if queue is not None else QueryQueue(
            slots=self.config.slots,
            auto_register=self.config.auto_register,
            default_quota=serve_queue.TenantQuota(
                max_inflight=self.config.default_max_inflight,
                max_pending=self.config.default_max_pending,
            ),
        )
        self._graphs: Dict[str, Any] = dict(graphs or {})
        self._workdir = self.config.workdir or tempfile.mkdtemp(
            prefix="gamma-serve-")
        self._own_workdir = self.config.workdir is None
        self._lock = threading.Lock()
        self._plan_lock = threading.Lock()
        self._plan_cache = None
        self._pools: Dict[Tuple[str, int], List[ProcessExecutor]] = {}
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._idle_workers = 0
        self._closed = False

    # -- submission ----------------------------------------------------------
    def submit(self, spec: "QuerySpec | dict") -> QueryState:
        if isinstance(spec, dict):
            spec = QuerySpec.from_dict(spec)
        return self.queue.submit(spec)

    # -- graphs / plans / pools ----------------------------------------------
    def _graph(self, abbrev: str):
        with self._lock:
            graph = self._graphs.get(abbrev)
        if graph is None:
            from ..graph import datasets
            graph = datasets.load(abbrev)
            with self._lock:
                self._graphs[abbrev] = graph
        return graph

    def plan_cache(self):
        """The shared :class:`~repro.plan.PlanCache` (lazily opened)."""
        with self._plan_lock:
            if self._plan_cache is None:
                from ..plan import PlanCache
                self._plan_cache = PlanCache(
                    os.path.join(self._workdir, "plan-cache.sqlite"))
            return self._plan_cache

    def _resolve_plan(self, engine, spec: QuerySpec):
        """Pre-resolve ``auto`` plans through the shared cache."""
        if spec.plan != "auto":
            return spec.plan
        from ..graph import sm_query
        from ..plan import resolve_plan
        cache = self.plan_cache()
        with self._plan_lock:
            if spec.family == "sm":
                return resolve_plan(
                    engine, "sm", pattern=sm_query(spec.query),
                    plan="auto", cache=cache,
                    symmetry_breaking=spec.symmetry_breaking)
            if spec.family == "kcl":
                return resolve_plan(engine, "kclique", plan="auto",
                                    cache=cache, k=spec.k)
            if spec.family == "fpm":
                return resolve_plan(
                    engine, "fpm", plan="auto", cache=cache,
                    iterations=spec.iterations,
                    min_support=spec.min_support,
                    support_metric=spec.support_metric)
            return resolve_plan(engine, "motif", plan="auto", cache=cache,
                                num_edges=spec.num_edges)

    def _checkout_pool(self, key: Tuple[str, int]) -> ProcessExecutor:
        with self._lock:
            idle = self._pools.get(key)
            if idle:
                return idle.pop()
        return ProcessExecutor(reusable=True)

    def _return_pool(self, key: Tuple[str, int],
                     pool: ProcessExecutor) -> None:
        if pool._broken or not pool._procs:
            pool.terminate()
            return
        with self._lock:
            if self._closed:
                pool.terminate()
                return
            self._pools.setdefault(key, []).append(pool)

    def _build_engine(self, spec: QuerySpec):
        """Returns ``(engine, pool_key, pool)``; pool is None off-pool."""
        graph = self._graph(spec.dataset)
        config = self.config.gamma_config
        if spec.gpus <= 1:
            return Gamma(graph, config), None, None
        name = spec.executor or self.config.executor \
            or serve_default_executor()
        executor: Any = name
        key = None
        pool = None
        if name == PROCESS_EXECUTOR and self.config.reuse_pools:
            key = (spec.dataset, spec.gpus)
            pool = self._checkout_pool(key)
            executor = pool
        try:
            engine = ShardedGamma(
                graph, config, num_shards=spec.gpus,
                policy=spec.shard_policy, executor=executor)
        except Exception:
            if pool is not None:
                pool.terminate()
            raise
        return engine, key, pool

    # -- execution core ------------------------------------------------------
    def _make_hook(self, state: QueryState, sync: bool,
                   on_stage: "Optional[Callable]" = None):
        def hook(info: dict) -> None:
            state.stage_calls += 1
            stage = state.stage_calls
            live = stage > state.stages_emitted
            if live:
                state.stages_emitted = stage
                state.stream.emit("partial", n=stage, **info)
            if on_stage is not None:
                on_stage(state, stage, info)
            if (live and self.config.preemption
                    and self._no_free_worker(sync)
                    and self.queue.preemptor_waiting(state)):
                raise QueryPreempted(state.id, stage)
        return hook

    def _no_free_worker(self, sync: bool) -> bool:
        if sync:
            return True
        with self._lock:
            return self._idle_workers == 0

    def _close_engine(self, engine, key, pool) -> None:
        try:
            engine.close()
        finally:
            if pool is not None:
                self._return_pool(key, pool)

    def _execute(self, state: QueryState, sync: bool = False,
                 on_stage: "Optional[Callable]" = None) -> str:
        """Run one attempt of ``state``; returns its outcome string."""
        spec = state.spec
        attempt_start = time.monotonic()
        if state._wait_since is not None:
            state.queue_seconds += attempt_start - state._wait_since
            state._wait_since = None
        resuming = state.status == serve_queue.PREEMPTED
        state.status = serve_queue.RUNNING
        if resuming:
            state.resumes += 1
            state.stream.emit("resumed", attempt=state.resumes + 1)
        else:
            state.stream.emit("started", tenant=spec.tenant,
                              family=spec.family, gpus=spec.gpus)
        if state.checkpoint_dir is None:
            state.checkpoint_dir = os.path.join(
                self._workdir, f"q{state.id:06d}")

        try:
            engine, key, pool = self._build_engine(spec)
        except GammaError as exc:
            state.exec_seconds += time.monotonic() - attempt_start
            self._finish(state, error=str(exc), release=True)
            return serve_queue.FAILED
        state.executor_used = getattr(engine, "executor_name", "local")
        if spec.fault_plan is not None and state.crashes == 0:
            # Injected faults model transient failures: the plan is not
            # re-installed once it has killed a worker, so a crash-retry
            # resumes clean from the checkpoint (a plan that names
            # ``level:2`` would otherwise re-fire on every attempt).
            from ..resilience.faults import FaultPlan
            plan = FaultPlan.from_dict(spec.fault_plan)
            if isinstance(engine, ShardedGamma):
                engine.install_fault_plan(plan, shard=spec.fault_shard)
            else:
                engine.platform.install_fault_plan(plan)

        hook = self._make_hook(state, sync, on_stage)

        def task(eng):
            state.stage_calls = 0
            plan = self._resolve_plan(eng, spec)
            return run_query(eng, spec, level_hook=hook, plan=plan)

        try:
            result = engine.run(task, checkpoint_dir=state.checkpoint_dir,
                                resume=True, policy=spec.degradation)
        except QueryPreempted as exc:
            self._close_engine(engine, key, pool)
            state.exec_seconds += time.monotonic() - attempt_start
            state.preemptions += 1
            state.stream.emit("preempted", stage=exc.level)
            self.queue.requeue(state)
            return serve_queue.PREEMPTED
        except WorkerCrashed as exc:
            # engine.close() reaps the broken pool; _return_pool sees the
            # broken flag and terminates instead of re-pooling it.
            self._close_engine(engine, key, pool)
            state.exec_seconds += time.monotonic() - attempt_start
            state.crashes += 1
            state.stream.emit("crash", shard=exc.shard,
                              exit_code=exc.exit_code, message=str(exc))
            if (spec.on_crash == "retry"
                    and state.crashes <= self.config.crash_retries):
                self.queue.requeue(state)
                return "crash-retry"
            self._finish(state, error=f"worker crashed: {exc}",
                         release=True)
            return serve_queue.FAILED
        except GammaError as exc:
            self._close_engine(engine, key, pool)
            state.exec_seconds += time.monotonic() - attempt_start
            self._finish(state, error=str(exc), release=True)
            return serve_queue.FAILED

        state.exec_seconds += time.monotonic() - attempt_start
        payload = result_payload(spec, result)
        # Bill the engine's total simulated seconds, not the driver's
        # entry-relative window: a resumed engine enters the driver with
        # the replayed clock already on it, but the *total* is what the
        # checkpoint contract keeps bit-identical across preemptions.
        payload["simulated_seconds"] = engine.simulated_seconds
        self._emit_manifest(state, engine)
        self._close_engine(engine, key, pool)
        self._finish(state, payload=payload, release=True)
        return serve_queue.COMPLETED

    def _finish(self, state: QueryState, payload: "dict | None" = None,
                error: "str | None" = None, release: bool = False) -> None:
        if release:
            self.queue.release(state)
        state.finished_wall = time.time()
        state.finished_mono = time.monotonic()
        if error is None:
            state.status = serve_queue.COMPLETED
            state.result = payload
            state.stream.emit("result", **(payload or {}))
        else:
            state.status = serve_queue.FAILED
            state.error = error
            state.stream.emit("error", message=error)
        state.billing = billing_record(state)
        state.stream.emit("billing", **state.billing)
        state.stream.close()
        if self.config.manifest_dir:
            write_billing_record(state.billing, self.config.manifest_dir)
        if state.checkpoint_dir and os.path.isdir(state.checkpoint_dir):
            shutil.rmtree(state.checkpoint_dir, ignore_errors=True)

    def _emit_manifest(self, state: QueryState, engine) -> None:
        if not self.config.manifest_dir:
            return
        from ..obs.manifest import attach_query_tags, write_manifest
        spec = state.spec
        if isinstance(engine, ShardedGamma):
            from ..shard import build_sharded_manifest
            manifest = build_sharded_manifest(
                engine, system="GAMMA-serve", dataset=spec.dataset,
                task=spec.family, config=engine.config,
                wall_seconds=state.exec_seconds)
        else:
            from ..obs.manifest import build_manifest
            manifest = build_manifest(
                engine.platform, None, system="GAMMA-serve",
                dataset=spec.dataset, task=spec.family,
                config=engine.config, wall_seconds=state.exec_seconds)
        attach_query_tags(manifest, query_id=state.id, tenant=spec.tenant,
                          priority=spec.priority, family=spec.family,
                          plan=spec.plan)
        os.makedirs(self.config.manifest_dir, exist_ok=True)
        write_manifest(manifest, os.path.join(
            self.config.manifest_dir, f"query-{state.id:06d}.json"))

    # -- synchronous mode ----------------------------------------------------
    def run_until_idle(self, on_stage: "Optional[Callable]" = None,
                       max_steps: int = 10_000) -> int:
        """Drain the queue on the calling thread; returns attempts run.

        The deterministic mode: one attempt at a time, every preemption
        decision forced by queue state alone (no free-worker races).
        ``on_stage(state, stage, info)`` runs after each streamed stage —
        property tests inject mid-run submissions through it.
        """
        steps = 0
        while True:
            state = self.queue.acquire(block=False)
            if state is None:
                return steps
            self._execute(state, sync=True, on_stage=on_stage)
            steps += 1
            if steps >= max_steps:
                raise ExecutionError(
                    f"run_until_idle exceeded {max_steps} attempts")

    # -- threaded mode -------------------------------------------------------
    def start(self) -> None:
        """Spawn ``slots`` worker threads (idempotent)."""
        if self._threads:
            return
        self._stop.clear()
        for index in range(self.config.slots):
            thread = threading.Thread(
                target=self._worker_loop, daemon=True,
                name=f"gamma-serve-{index}")
            thread.start()
            self._threads.append(thread)

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            with self._lock:
                self._idle_workers += 1
            try:
                state = self.queue.acquire(block=True, timeout=0.2)
            finally:
                with self._lock:
                    self._idle_workers -= 1
            if state is not None:
                self._execute(state)

    def stop(self, wait: bool = True) -> None:
        self._stop.set()
        if wait:
            for thread in self._threads:
                thread.join(timeout=30.0)
        self._threads = []

    def wait_idle(self, timeout: "float | None" = None) -> bool:
        """Block until no work is pending or in flight (threaded mode)."""
        deadline = (time.monotonic() + timeout) if timeout is not None \
            else None
        while (self.queue.pending_count() > 0
               or self.queue.inflight_count() > 0):
            if deadline is not None and time.monotonic() > deadline:
                return False
            time.sleep(0.01)
        return True

    # -- lifecycle -----------------------------------------------------------
    def stats(self) -> dict:
        stats = self.queue.stats()
        with self._lock:
            stats["idle_workers"] = self._idle_workers
            stats["pools"] = sum(len(v) for v in self._pools.values())
            stats["pool_reuses"] = sum(
                pool.pool_reuses for pools in self._pools.values()
                for pool in pools)
        return stats

    def close(self) -> None:
        self.stop()
        with self._lock:
            self._closed = True
            pools = [pool for idle in self._pools.values() for pool in idle]
            self._pools = {}
        for pool in pools:
            pool.terminate()
        with self._plan_lock:
            if self._plan_cache is not None:
                self._plan_cache.close()
                self._plan_cache = None
        if self._own_workdir:
            shutil.rmtree(self._workdir, ignore_errors=True)

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # A scheduler is a single-process object (its queue, pools, and
    # worker threads cannot cross a fork); the pickle hooks exist only
    # to drop the process-local sqlite handle so a stray serialization
    # attempt fails loudly on the live parts, not on the plan cache.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_plan_cache"] = None  # reopened lazily via plan_cache()
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._plan_cache = None
