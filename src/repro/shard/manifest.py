"""Merged run manifests for sharded execution.

A sharded run has N platforms, each with its own clock buckets and
counters.  :func:`build_sharded_manifest` builds the usual per-platform
manifest for every shard (via :func:`repro.obs.manifest.build_manifest`)
and wraps them in one merged document:

* ``counters`` — element-wise sums across shards (total simulated work);
* ``clock_buckets`` — element-wise *max* is wrong for busy-time semantics,
  so the merged view keeps the makespan (``simulated_seconds`` = slowest
  shard) and reports summed bucket seconds separately as
  ``clock_buckets_total`` (aggregate GPU-seconds per category);
* ``shards`` — the full per-shard manifests, each tagged with its index
  and utilization (1 − sync idle / shard clock);
* ``straggler`` — per-barrier gating shards, utilization skew and
  exchange-bytes share (:func:`repro.obs.profile.straggler_report`);
  present only when the run actually barriered (N > 1);
* the sharding configuration (shard count, policy, interconnect model).

:func:`canonical_manifest_bytes` strips the volatile fields
(``created_utc``, ``wall_seconds``, ``git_rev``) and serialises with
sorted keys, giving the byte string two identical sharded runs must agree
on — the determinism tests compare exactly these bytes.
"""

from __future__ import annotations

import json
from typing import Any, Dict

#: Fields that vary run-to-run without the simulation differing.
VOLATILE_FIELDS = ("created_utc", "wall_seconds", "git_rev")

SHARD_SCHEMA = "gamma-shard-manifest/v1"


def _strip_volatile(doc: Any) -> Any:
    if isinstance(doc, dict):
        return {
            key: _strip_volatile(value)
            for key, value in doc.items()
            if key not in VOLATILE_FIELDS
        }
    if isinstance(doc, list):
        return [_strip_volatile(item) for item in doc]
    return doc


def build_sharded_manifest(
    engine,
    collector: Any = None,
    *,
    system: str | None = None,
    dataset: str | None = None,
    task: str | None = None,
    config: Any = None,
    wall_seconds: float | None = None,
    extra: Dict[str, Any] | None = None,
) -> Dict[str, Any]:
    """Merged manifest for a :class:`~repro.shard.engine.ShardedGamma` run.

    ``collector`` (bound to shard 0's platform) only contributes spans to
    shard 0's sub-manifest, mirroring how telemetry attaches.
    """
    states = engine.shard_states()
    utilizations = engine.shard_utilization(states)
    shard_docs = engine.shard_manifest_docs(
        collector, system=system, dataset=dataset, task=task, config=config)
    for index, doc in enumerate(shard_docs):
        doc["shard"] = index
        doc["utilization"] = utilizations[index]

    counters: Dict[str, int] = {}
    buckets_total: Dict[str, float] = {}
    for doc in shard_docs:
        for key, value in doc.get("counters", {}).items():
            counters[key] = counters.get(key, 0) + value
        for key, value in doc.get("clock_buckets", {}).items():
            buckets_total[key] = buckets_total.get(key, 0.0) + value

    merged: Dict[str, Any] = {
        "schema": SHARD_SCHEMA,
        "system": system,
        "dataset": dataset,
        "task": task,
        "num_shards": engine.num_shards,
        "shard_policy": engine.policy,
        "interconnect": {
            "kind": engine.interconnect_spec.kind,
            "bandwidth": engine.interconnect_spec.bandwidth,
            "latency": engine.interconnect_spec.latency,
        },
        "simulated_seconds": engine.simulated_seconds,
        "sync_seconds": [state["sync_seconds"] for state in states],
        "utilization": utilizations,
        "peak_device_bytes": engine.peak_device_bytes,
        "peak_host_bytes": engine.peak_host_bytes,
        "total_peak_memory_bytes": engine.total_peak_memory_bytes,
        "counters": counters,
        "clock_buckets_total": buckets_total,
        "shards": shard_docs,
    }
    # Straggler section: which shard gated each superstep, utilization
    # skew, exchange-bytes share.  Derived purely from simulated clocks,
    # so it is deterministic and safe inside the canonical bytes.  N=1
    # runs log no barriers and carry no section, preserving the bit-parity
    # with unsharded manifests that the determinism tests pin.
    if getattr(engine, "barrier_log", None):
        from ..obs.profile.straggler import straggler_report

        merged["straggler"] = straggler_report(engine)
    # Carry volatile provenance at the top level only, so canonical bytes
    # (which strip these) cover every shard completely.
    first = shard_docs[0]
    for field in VOLATILE_FIELDS:
        if field in first:
            merged[field] = first[field]
    if wall_seconds is not None:
        merged["wall_seconds"] = wall_seconds
    if extra:
        merged["extra"] = extra
    return merged


def canonical_manifest_bytes(manifest: Dict[str, Any]) -> bytes:
    """Deterministic serialisation: volatile fields removed, keys sorted.

    Two runs of the same sharded workload must produce identical bytes —
    the simulator never reads the wall clock, so everything left is a pure
    function of (graph, config, shard count, policy).
    """
    return json.dumps(
        _strip_volatile(manifest), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
