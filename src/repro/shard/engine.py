"""Multi-GPU sharded execution: ``ShardedGamma``.

One :class:`~repro.core.framework.Gamma` engine per simulated GPU — each
with its own clock, page buffers, memory pool and access planners — driven
in lockstep through the same Fig. 3 interface the single-GPU engine
exposes, so every algorithm driver in :mod:`repro.algorithms` runs
unmodified on N shards.

Execution model (BSP, per user-visible op):

1. the level-0 frontier is partitioned across shards by a
   :mod:`repro.shard.policy` (each shard seeds the full frontier and
   filters down to its owned units);
2. every op fans out to all shards as a named plain-data command through a
   :class:`~repro.shard.executor.ShardExecutor` — inline and sequential on
   the default ``serial`` backend, or to one worker process per shard on
   the ``process`` backend (true wall-clock overlap);
3. a barrier closes the op: lagging shards charge their idle wait to the
   ``shard_sync`` clock bucket, so each shard's clock equals the makespan
   and per-shard utilization falls out of the buckets;
4. cross-shard reconciliation (duplicate embeddings discovered from seeds
   in different shards, per-shard pattern supports) exchanges data over
   the :class:`~repro.gpusim.interconnect.Interconnect` model — NVLink
   peer copies or PCIe staged through host, per the
   :class:`~repro.gpusim.spec.InterconnectSpec`.

Every charge (exchange, merge kernels, barrier waits) is routed through a
shard's op journal via :meth:`Gamma.custom_op`, so per-shard
checkpoint/resume (``run(checkpoint_dir=..., resume=True)``) composes with
sharding exactly as it does on one GPU — under either backend.

Single-shard runs are bit-identical to unsharded ``Gamma`` execution:
ownership filters, exchanges and barriers all vanish at N=1.  And the
determinism contract holds *across backends*: the same workload produces
byte-identical canonical sharded manifests under ``serial`` and
``process`` (``tests/shard/test_executor_parity.py`` pins this).
"""

from __future__ import annotations

import pickle
from typing import List, Sequence

import numpy as np

from ..core.extension import ExtensionStats
from ..core.framework import Gamma, GammaConfig, _apply_stats
from ..core.aggregation import INSTANCES
from ..core.pattern_table import PatternTable
from ..errors import (
    DeviceOutOfMemory,
    ExecutionError,
    HostOutOfMemory,
    SpillIOError,
    WorkerCrashed,
)
from ..graph.csr import CSRGraph
from ..gpusim.interconnect import Interconnect
from ..gpusim.spec import InterconnectSpec
from ..resilience.faults import FaultPlan
from . import policy as shard_policy
from .executor import EXECUTOR_ENV_VAR, EXECUTORS, make_executor
from .table import ShardedTable

__all__ = ["ShardedCodes", "ShardedGamma", "make_sharded", "EXECUTORS",
           "EXECUTOR_ENV_VAR"]

#: Bytes per exchanged embedding cell (int64 vertex/edge id).
_KEY_CELL_BYTES = 8
#: Bytes per exchanged pattern-table entry (int64 code + int64 support).
_PATTERN_BYTES = 16


class ShardedGamma:
    """The GAMMA framework across N simulated GPUs (drop-in ``Gamma``)."""

    def __init__(
        self,
        graph: CSRGraph,
        config: GammaConfig | None = None,
        num_shards: int = 2,
        policy: str = shard_policy.STATIC,
        interconnect: InterconnectSpec | None = None,
        executor: "str | None" = None,
    ) -> None:
        if num_shards < 1:
            raise ExecutionError("num_shards must be >= 1")
        if policy not in shard_policy.SHARD_POLICIES:
            raise ExecutionError(
                f"shard policy must be one of {shard_policy.SHARD_POLICIES}, "
                f"got {policy!r}"
            )
        self.graph = graph
        self.config = config if config is not None else GammaConfig()
        self.num_shards = num_shards
        self.policy = policy
        self.interconnect_spec = (
            interconnect if interconnect is not None else InterconnectSpec()
        )
        #: Resolution order: explicit arg > REPRO_SHARD_EXECUTOR > serial.
        self._executor = make_executor(executor)
        self.executor_name = self._executor.name
        self._platform = None
        telemetry = False
        if self._executor.parallel:
            # The coordinator gets a stand-in platform (telemetry/trace
            # attach point).  Built *before* the workers so an installed
            # SpanCollector adopts it — its entry snapshots are the
            # all-zero coordinator state, and the worker span trees are
            # grafted under its root at finalize time.
            from ..gpusim.platform import make_platform
            self._platform = make_platform(
                num_warps=self.config.num_warps,
                device_memory_bytes=self.config.device_memory_bytes,
                cost=self.config.cost,
            )
            telemetry = bool(self._platform.telemetry.active)
        self._executor.start(
            graph=graph, config=self.config, num_shards=num_shards,
            policy=policy, interconnect=self.interconnect_spec,
            telemetry=telemetry,
        )
        #: Level-0 unit ownership, computed lazily per unit kind
        #: (coordinator copy; workers keep their own identical cache).
        self._assignments: dict = {}
        #: One entry per closed barrier: which shard gated the superstep
        #: and how long each peer waited (read by
        #: :func:`repro.obs.profile.straggler_report`).  Deterministic —
        #: derived from simulated clocks only — so it may feed the
        #: canonical sharded manifest.  Empty at N=1.
        self.barrier_log: List[dict] = []
        #: One entry per cross-shard all-gather (kind + payload bytes).
        self.exchange_log: List[dict] = []
        self._closed = False
        self._telemetry_final = False
        #: Shard index of the most recent fan-out step (degradation
        #: policies in :meth:`run` target the shard that faulted).
        self._active_shard = 0

    # -- plumbing -----------------------------------------------------------
    @property
    def executor(self):
        """The live :class:`~repro.shard.executor.ShardExecutor`."""
        return self._executor

    @property
    def shards(self) -> List[Gamma]:
        """Per-shard engines — serial backend only.

        Worker processes own the engines under ``--executor process``;
        use :meth:`shard_states`, :meth:`install_fault_plan` and
        :meth:`shard_manifest_docs` for backend-neutral access.
        """
        if self._executor.parallel:
            raise ExecutionError(
                "engine.shards is unavailable under the process executor "
                "(per-shard engines live in worker processes); use "
                "shard_states()/install_fault_plan(shard=...) instead"
            )
        return [worker.engine for worker in self._executor.workers]

    @property
    def links(self) -> List[Interconnect]:
        return [worker.link for worker in self._executor.workers]

    @property
    def platform(self):
        """Shard 0's platform (serial) or the coordinator stand-in
        platform (process) — the telemetry/trace attach point."""
        if self._platform is not None:
            return self._platform
        return self._executor.workers[0].engine.platform

    @property
    def _tel(self):
        return self.platform.telemetry

    def _assignment(self, units: str) -> np.ndarray:
        cached = self._assignments.get(units)
        if cached is None:
            cached = shard_policy.assign_units(
                self.graph, self.num_shards, units, self.policy
            )
            self._assignments[units] = cached
        return cached

    def _shard_span(self, index: int):
        tel = self._tel
        if tel.active and self.num_shards > 1:
            return tel.span(f"shard-{index}", kind="shard", shard=index)
        return None

    def _note_active(self, index: int) -> None:
        self._active_shard = index

    def _fanout(self, op: str, args_list: Sequence[dict],
                spans: bool = True) -> list:
        """One command per shard through the executor.

        ``spans=True`` mirrors the old ``_each`` semantics on the serial
        backend: a ``shard-i`` telemetry span brackets each inline
        dispatch and fault attribution tracks the active shard.  The
        process backend ignores both (worker spans are grafted at
        finalize; attribution rides the replies).
        """
        return self._executor.fanout(
            op, args_list,
            span_for=self._shard_span if spans else None,
            on_shard=self._note_active if spans else None,
        )

    def _all(self, args: "dict | None" = None) -> List[dict]:
        return [dict(args or {}) for __ in range(self.num_shards)]

    def _per_table(self, table: ShardedTable, **common) -> List[dict]:
        return [dict(table=handle, **common) for handle in table.handles]

    def _faulted_shard(self) -> int:
        last = getattr(self._executor, "last_faulted", None)
        return self._active_shard if last is None else last

    def _make_table(self, kind: str, name: str) -> ShardedTable:
        handles = self._fanout(
            "new_table", self._all({"kind": kind, "name": name}))
        table = ShardedTable(
            kind, name, self._executor.table_parts(handles), handles=handles)
        table.owner = self
        return table

    def _barrier(self, label: str = "") -> None:
        """Close a BSP super-step: charge lagging shards' idle wait.

        The wait is billed inside each shard's op journal, so a resumed
        replay skips it along with the op that preceded it.  ``label``
        names the op the barrier closes; each barrier appends one
        straggler entry (gating shard, per-shard waits) to
        :attr:`barrier_log`.  Clock totals come from the executor — live
        reads on the serial backend, piggybacked on the last replies on
        the process backend — so no extra round trip happens here.
        """
        if self.num_shards <= 1:
            return
        totals = self._executor.clock_totals()
        target = max(totals)
        gating = totals.index(target)
        entry = {
            "superstep": len(self.barrier_log),
            "op": label or "op",
            "gating_shard": gating,
            "target_seconds": target,
            "waits": [target - total for total in totals],
        }
        self.barrier_log.append(entry)
        args = self._all({"target": target})
        tel = self._tel
        if tel.active:
            with tel.span(f"barrier:{entry['op']}", kind="barrier",
                          superstep=entry["superstep"],
                          gating_shard=gating):
                self._fanout("sync", args)
        else:
            self._fanout("sync", args)

    def _exchange(self, kind: str, payload_bytes: Sequence[int],
                  merge_ops: float) -> None:
        """Charge one all-gather + merge step on every shard's journal.

        ``payload_bytes[i]`` is shard i's outgoing payload; each shard
        additionally receives every peer's payload and runs a merge kernel
        of ``merge_ops`` element-ops over the union.
        """
        if self.num_shards <= 1:
            return
        total = int(sum(payload_bytes))
        self.exchange_log.append({
            "after_superstep": len(self.barrier_log),
            "kind": kind,
            "payload_bytes": [int(b) for b in payload_bytes],
            "total_bytes": total,
        })
        self._fanout("exchange", [
            {"kind": kind, "local": int(payload_bytes[index]),
             "total": total, "peers": self.num_shards - 1,
             "merge_ops": merge_ops}
            for index in range(self.num_shards)
        ])

    # -- table construction --------------------------------------------------
    def new_vertex_table(self, name: str = "v-ET") -> ShardedTable:
        return self._make_table("vertex", name)

    def new_edge_table(self, name: str = "e-ET") -> ShardedTable:
        return self._make_table("edge", name)

    # -- seeding -------------------------------------------------------------
    def _restrict_to_owned(self, table: ShardedTable, units: str) -> None:
        """Drop non-owned level-0 units from each shard's freshly seeded
        table.  At N=1 everything is owned and nothing happens, keeping
        single-shard runs op-for-op identical to unsharded execution."""
        if self.num_shards <= 1:
            return
        self._fanout("restrict_owned", self._per_table(table, units=units))

    def seed_vertices(self, table: ShardedTable, label: int | None = None):
        self._fanout("seed_vertices", self._per_table(table, label=label))
        self._restrict_to_owned(table, shard_policy.VERTEX_UNITS)
        self._barrier("seed-vertices")
        return table

    def seed_edges(self, table: ShardedTable):
        self._fanout("seed_edges", self._per_table(table))
        self._restrict_to_owned(table, shard_policy.EDGE_UNITS)
        self._barrier("seed-edges")
        return table

    def _seed_explicit(self, table: ShardedTable, values: np.ndarray) -> None:
        """Driver-supplied seed (binary-join SM): partition the given unit
        ids by ownership.  Mirrors ``EmbeddingTable.seed`` — not journaled,
        so drivers using it forgo checkpoint/resume (as on one GPU)."""
        values = np.ascontiguousarray(values, dtype=np.int64)
        units = (shard_policy.VERTEX_UNITS if table.kind == "vertex"
                 else shard_policy.EDGE_UNITS)
        assignment = self._assignment(units)
        self._fanout("seed_explicit", [
            {"table": handle,
             "values": values[assignment[values] == index]}
            for index, handle in enumerate(table.handles)
        ], spans=False)
        self._barrier("seed-explicit")

    # -- extension -----------------------------------------------------------
    def _merge_stats(self, stats: List[ExtensionStats]) -> ExtensionStats:
        per_row = [s.per_row_counts for s in stats
                   if s.per_row_counts is not None and len(s.per_row_counts)]
        return ExtensionStats(
            rows_in=sum(s.rows_in for s in stats),
            rows_out=sum(s.rows_out for s in stats),
            candidates=sum(s.candidates for s in stats),
            groups=sum(s.groups for s in stats),
            kernel_ops=sum(s.kernel_ops for s in stats),
            list_reads=sum(s.list_reads for s in stats),
            per_row_counts=(np.concatenate(per_row) if per_row
                            else np.empty(0, dtype=np.int64)),
        )

    def _extend(self, table: ShardedTable, variant: str, label: str,
                kwargs: dict) -> ExtensionStats:
        payloads = self._fanout("extend", self._per_table(
            table, variant=variant, kwargs=kwargs))
        self._barrier(label)
        return self._merge_stats([_apply_stats(p) for p in payloads])

    def vertex_extension(self, table: ShardedTable, anchor_cols,
                         label: int | None = None,
                         greater_than_col: int | None = None,
                         greater_than_cols=(), less_than_cols=(),
                         injective: bool = True) -> ExtensionStats:
        return self._extend(table, "vertex", "vertex-extension", dict(
            anchor_cols=anchor_cols, label=label,
            greater_than_col=greater_than_col,
            greater_than_cols=greater_than_cols,
            less_than_cols=less_than_cols, injective=injective,
        ))

    def vertex_extension_any(self, table: ShardedTable, anchor_cols,
                             label: int | None = None,
                             greater_than_col: int | None = None,
                             greater_than_cols=(), less_than_cols=(),
                             injective: bool = True) -> ExtensionStats:
        return self._extend(table, "vertex-any", "vertex-extension-any", dict(
            anchor_cols=anchor_cols, label=label,
            greater_than_col=greater_than_col,
            greater_than_cols=greater_than_cols,
            less_than_cols=less_than_cols, injective=injective,
        ))

    def edge_extension(self, table: ShardedTable,
                       greater_than_col: "int | None" = None,
                       ) -> ExtensionStats:
        return self._extend(table, "edge", "edge-extension", dict(
            greater_than_col=greater_than_col,
        ))

    # -- dedup (with cross-shard reconciliation) ------------------------------
    def dedup(self, table: ShardedTable) -> int:
        """Remove duplicate embeddings, including duplicates discovered by
        different shards.

        Per shard: local dedup (the existing sort+compact).  Then each
        shard all-gathers its surviving set keys; every key is kept only on
        the lowest-indexed shard holding it, and the losers are filtered
        out.  The exchange ships ``rows x depth x 8`` bytes per shard and
        merges with one sort-merge pass over the union.
        """
        removed = sum(self._fanout("dedup", self._per_table(table)))
        if self.num_shards <= 1:
            self._barrier()
            return removed
        self._barrier("dedup-local")

        keys = self._fanout("set_keys", self._per_table(table), spans=False)
        counts = [len(k) for k in keys]
        depth = table.depth
        payload = [n * depth * _KEY_CELL_BYTES for n in counts]
        total_rows = int(sum(counts))
        merge_ops = total_rows * float(np.log2(max(2, total_rows)))
        self._exchange("dedup", payload, merge_ops)

        keep = np.zeros(total_rows, dtype=bool)
        if total_rows:
            # Empty shards yield zero-length key arrays whose void dtype
            # may not promote with the others; drop them before stacking.
            flat = np.concatenate([k for k in keys if len(k)])
            __, first = np.unique(flat, return_index=True)
            keep[first] = True
        offsets = np.cumsum([0] + counts)
        replies = self._fanout("filtering", [
            {"table": handle,
             "keep_mask": keep[offsets[index]:offsets[index + 1]]}
            for index, handle in enumerate(table.handles)
        ])
        removed += sum(reply["removed"] for reply in replies)
        self._barrier("dedup-reconcile")
        return removed

    # -- aggregation / filtering ----------------------------------------------
    def aggregation(self, table: ShardedTable, pattern_table: PatternTable,
                    support_metric: str = INSTANCES):
        """Aggregate across shards: per-shard canonical grouping, then an
        all-gather of per-shard pattern tables summed into the global one.

        Returns per-shard code arrays (opaque to drivers; accepted back by
        :meth:`filtering`).  ``support_metric='mni'`` is exact only on one
        shard — distinct-vertex minima do not decompose over a sum — and
        raises otherwise (see docs/SHARDING.md).
        """
        if self.num_shards == 1:
            reply = self._executor.call(0, "aggregation", {
                "table": table.handles[0],
                "support_metric": support_metric,
                "pt_codes": pattern_table.codes,
                "pt_supports": pattern_table.supports,
            })
            pattern_table.codes = np.asarray(reply["pt_codes"],
                                             dtype=np.int64)
            pattern_table.supports = np.asarray(reply["pt_supports"],
                                                dtype=np.int64)
            return np.asarray(reply["codes"], dtype=np.int64)
        if support_metric != INSTANCES:
            raise ExecutionError(
                "sharded aggregation supports support_metric='instances' "
                "only; MNI minima do not decompose across shards"
            )
        empty = np.empty(0, dtype=np.int64)
        replies = self._fanout("aggregation", self._per_table(
            table, support_metric=support_metric,
            pt_codes=empty, pt_supports=empty))
        self._barrier("aggregation-local")
        payload = [len(r["pt_codes"]) * _PATTERN_BYTES for r in replies]
        total_patterns = sum(len(r["pt_codes"]) for r in replies)
        self._exchange("pattern-table", payload, float(total_patterns))
        for reply in replies:
            if len(reply["pt_codes"]):
                pattern_table.merge(reply["pt_codes"], reply["pt_supports"])
        self._barrier("aggregation-merge")
        return ShardedCodes([reply["codes"] for reply in replies])

    def _apply_pt_reply(self, pattern_table: PatternTable,
                        reply: dict) -> int:
        if pattern_table is not None and "pt_codes" in reply:
            pattern_table.codes = np.asarray(reply["pt_codes"],
                                             dtype=np.int64)
            pattern_table.supports = np.asarray(reply["pt_supports"],
                                                dtype=np.int64)
        return reply["removed"]

    def filtering(self, table: ShardedTable,
                  keep_mask: np.ndarray | None = None,
                  pattern_table: PatternTable | None = None,
                  row_codes=None, constraint=None) -> int:
        if self.num_shards == 1:
            codes = (row_codes.parts[0]
                     if isinstance(row_codes, ShardedCodes) else row_codes)
            args = {"table": table.handles[0], "keep_mask": keep_mask,
                    "row_codes": codes, "constraint": constraint}
            if pattern_table is not None:
                args["pt_codes"] = pattern_table.codes
                args["pt_supports"] = pattern_table.supports
            reply = self._executor.call(0, "filtering", args)
            return self._apply_pt_reply(pattern_table, reply)
        if keep_mask is not None:
            masks = table.split_rows(np.asarray(keep_mask, dtype=bool))
            replies = self._fanout("filtering", [
                {"table": handle, "keep_mask": masks[index]}
                for index, handle in enumerate(table.handles)
            ])
            self._barrier("filtering")
            return sum(reply["removed"] for reply in replies)
        if pattern_table is None or row_codes is None or constraint is None:
            raise ExecutionError(
                "support filtering needs pattern_table, row_codes "
                "and constraint"
            )
        if isinstance(row_codes, ShardedCodes):
            per_shard = row_codes.parts
        else:
            per_shard = table.split_rows(np.asarray(row_codes, dtype=np.int64))
        replies = self._fanout("filtering", [
            {"table": handle, "row_codes": per_shard[index],
             "constraint": constraint,
             "pt_codes": pattern_table.codes,
             "pt_supports": pattern_table.supports}
            for index, handle in enumerate(table.handles)
        ])
        # Every shard prunes an identical copy of the global table (the
        # kept-code set is mask-input, not mask-output, so pruning
        # commutes); adopt the final arrays once.
        removed = 0
        for reply in replies:
            removed += self._apply_pt_reply(pattern_table, reply)
        self._barrier("filtering")
        return removed

    def output_results(self, table: ShardedTable | None = None,
                       pattern_table: PatternTable | None = None):
        if self.num_shards == 1:
            args = {"table": (table.handles[0] if table is not None
                              else None)}
            if pattern_table is not None:
                args["pt_codes"] = pattern_table.codes
                args["pt_supports"] = pattern_table.supports
            return self._executor.call(0, "output", args)
        outputs = []
        if table is not None:
            mats = self._fanout("output", self._per_table(table))
            mats = [m for m in mats if m.size]
            outputs.append(
                np.concatenate(mats, axis=0) if mats
                else np.empty((0, table.depth), dtype=np.int64)
            )
        if pattern_table is not None:
            outputs.append(pattern_table.as_dict())
        self._barrier("output")
        if not outputs:
            raise ExecutionError("nothing to output")
        return outputs[0] if len(outputs) == 1 else tuple(outputs)

    # -- resilience -----------------------------------------------------------
    def install_fault_plan(self, plan, shard: "int | None" = 0) -> None:
        """Install a fault plan on one shard's platform (all with ``None``).

        Backend-neutral replacement for
        ``engine.shards[i].platform.install_fault_plan(...)``.
        """
        if not isinstance(plan, FaultPlan):
            plan = FaultPlan.from_dict(plan)
        targets = (range(self.num_shards) if shard is None else (shard,))
        for index in targets:
            self._executor.call(index, "install_fault_plan",
                                {"plan": plan.to_dict()})

    def enable_checkpointing(self, checkpoint_dir: str | None = None,
                             resume: bool = False) -> bool:
        """Arm per-shard journaled checkpointing (``<dir>/shard-<i>``)."""
        loaded = self._fanout("enable_checkpointing", [
            {"checkpoint_dir": (f"{checkpoint_dir}/shard-{index}"
                                if checkpoint_dir is not None else None),
             "resume": resume}
            for index in range(self.num_shards)
        ], spans=False)
        return all(loaded) and bool(loaded)

    def run(self, task, *, checkpoint_dir: str | None = None,
            resume: bool = False, policy=None, max_retries: int = 8,
            backoff_seconds: float = 0.05):
        """Sharded :meth:`Gamma.run`: checkpoint/resume per shard plus the
        same degradation retry loop, applied to the shard that faulted.

        ``policy`` accepts a registry name under both backends; a live
        policy *instance* is accepted only on the serial backend (it
        cannot cross a process boundary), where it is applied directly to
        the faulted in-process engine as before.  Under the process
        backend each faulted shard gets its own worker-side instance of
        the named policy, fresh on its first fault of the run.
        """
        fn = task if callable(task) else task.run
        policy_name: "str | None" = None
        policy_obj = None
        if isinstance(policy, str):
            policy_name = policy
        elif policy is not None:
            if self._executor.parallel:
                raise ExecutionError(
                    "the process executor takes degradation policies by "
                    "name (a live policy instance cannot cross the worker "
                    "boundary)"
                )
            policy_obj = policy
        self.enable_checkpointing(checkpoint_dir, resume=resume)
        attempts = 0
        fresh_shards: set = set()
        while True:
            try:
                return fn(self)
            except (DeviceOutOfMemory, HostOutOfMemory, SpillIOError) as exc:
                attempts += 1
                if (policy_name is None and policy_obj is None) \
                        or attempts > max_retries:
                    raise
                faulted = self._faulted_shard()
                self._fanout("rewind", self._all(), spans=False)
                if policy_obj is not None:
                    action = policy_obj.apply(
                        self.shards[faulted], exc, attempts)
                    policy_label = policy_obj.name
                else:
                    fresh = faulted not in fresh_shards
                    fresh_shards.add(faulted)
                    reply = self._executor.call(faulted, "apply_policy", {
                        "name": policy_name, "fresh": fresh,
                        "exc": pickle.dumps(exc), "attempt": attempts,
                    })
                    action = reply["action"]
                    policy_label = reply["policy"]
                if action is None:
                    raise
                backoff = backoff_seconds * (2 ** (attempts - 1))
                self._fanout("advance_backoff",
                             self._all({"seconds": backoff}), spans=False)
                event = {
                    "type": "degradation",
                    "policy": policy_label,
                    "attempt": attempts,
                    "error": type(exc).__name__,
                    "shard": faulted,
                }
                event.update(action)
                self._executor.call(faulted, "append_event", {"event": event})

    # -- bookkeeping -----------------------------------------------------------
    def shard_states(self) -> List[dict]:
        """One accounting snapshot per shard (backend-neutral).

        Each dict carries ``clock_total``, ``clock_buckets``, ``counters``,
        ``sync_seconds``, ``simulated_seconds``, the peak-memory figures
        and that shard's raw ``resilience_log`` — everything the merged
        manifest and the tests need without reaching into worker
        processes.
        """
        return self._fanout("state", self._all(), spans=False)

    @property
    def resilience_log(self) -> list:
        merged = []
        for index, state in enumerate(self.shard_states()):
            for event in state["resilience_log"]:
                tagged = dict(event)
                tagged.setdefault("shard", index)
                merged.append(tagged)
        return merged

    @property
    def simulated_seconds(self) -> float:
        """Makespan: shards barrier after every op, so the slowest shard's
        clock is the wall the workload observes."""
        return max(self._executor.clock_totals())

    @property
    def peak_device_bytes(self) -> int:
        return max(s["peak_device_bytes"] for s in self.shard_states())

    @property
    def peak_host_bytes(self) -> int:
        return max(s["peak_host_bytes"] for s in self.shard_states())

    @property
    def peak_memory_bytes(self) -> int:
        """Fig. 10's quantity on the bottleneck shard (per-GPU peak)."""
        return max(s["peak_memory_bytes"] for s in self.shard_states())

    @property
    def total_peak_memory_bytes(self) -> int:
        """Cluster-wide footprint (sum of per-shard peaks)."""
        return sum(s["peak_memory_bytes"] for s in self.shard_states())

    def shard_utilization(self,
                          states: "List[dict] | None" = None) -> List[float]:
        """Busy fraction per shard: 1 - (sync idle / shard clock)."""
        out = []
        for state in (states if states is not None else self.shard_states()):
            total = state["clock_total"]
            idle = state["sync_seconds"]
            out.append(1.0 - idle / total if total > 0 else 1.0)
        return out

    def shard_manifest_docs(self, collector=None, *, system=None,
                            dataset=None, task=None, config=None
                            ) -> List[dict]:
        """Per-shard manifest documents (:func:`build_manifest` form).

        ``collector`` contributes spans to shard 0's document only,
        mirroring how telemetry attaches.  Under the process backend the
        documents are assembled inside the workers (their platforms hold
        the state) and the coordinator's collector summary — worker trees
        grafted — is attached to document 0 afterwards.
        """
        from ..obs.manifest import _config_dict, attach_collector_summary
        if not self._executor.parallel:
            return self._fanout("manifest_doc", [
                {"system": system, "dataset": dataset, "task": task,
                 "config": config if index == 0 else None,
                 "collector": collector if index == 0 else None}
                for index in range(self.num_shards)
            ], spans=False)
        self.finalize_telemetry()
        docs = self._fanout("manifest_doc", [
            {"system": system, "dataset": dataset, "task": task,
             "config": _config_dict(config) if index == 0 else None}
            for index in range(self.num_shards)
        ], spans=False)
        if collector is not None:
            attach_collector_summary(docs[0], collector)
        return docs

    def finalize_telemetry(self) -> None:
        """Graft worker span trees under the coordinator collector.

        Process backend only (serial telemetry is already live on shard
        0's platform).  Idempotent; called automatically by
        :meth:`shard_manifest_docs` and :meth:`close`.
        """
        if self._telemetry_final or not self._executor.parallel:
            return
        self._telemetry_final = True
        tel = self._tel
        if not getattr(tel, "active", False):
            return
        if not hasattr(tel, "graft_records"):
            return
        try:
            per_shard = self._fanout("collect_spans", self._all(),
                                     spans=False)
        except (ExecutionError, WorkerCrashed):
            return  # executor already broken/closed; nothing to graft
        for index, records in enumerate(per_shard):
            if records:
                tel.graft_records(records, shard=index)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.finalize_telemetry()
        try:
            self._fanout("close", self._all(), spans=False)
        except (ExecutionError, WorkerCrashed, OSError):
            pass  # crashed/broken workers: shutdown() reaps what's left
        self._executor.shutdown()

    def __enter__(self) -> "ShardedGamma":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ShardedCodes:
    """Per-shard canonical code arrays returned by sharded aggregation.

    Drivers treat aggregation's return value as opaque and hand it back to
    ``filtering``; this wrapper keeps the per-shard split exact while
    still looking like a flat sequence where drivers peek (``len``,
    concatenation via :meth:`flat`).
    """

    __slots__ = ("parts",)

    def __init__(self, parts: List[np.ndarray]) -> None:
        self.parts = [np.asarray(p, dtype=np.int64) for p in parts]

    def __len__(self) -> int:
        return sum(len(p) for p in self.parts)

    def flat(self) -> np.ndarray:
        return (np.concatenate(self.parts) if self.parts
                else np.empty(0, dtype=np.int64))


def make_sharded(graph: CSRGraph, num_shards: int,
                 policy: str = shard_policy.STATIC,
                 config: GammaConfig | None = None,
                 interconnect: InterconnectSpec | None = None,
                 executor: "str | None" = None) -> ShardedGamma:
    """Convenience constructor mirroring the ``SYSTEMS`` factory shape."""
    return ShardedGamma(
        graph, config, num_shards=num_shards, policy=policy,
        interconnect=interconnect, executor=executor,
    )
