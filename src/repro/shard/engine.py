"""Multi-GPU sharded execution: ``ShardedGamma``.

One :class:`~repro.core.framework.Gamma` engine per simulated GPU — each
with its own clock, page buffers, memory pool and access planners — driven
in lockstep through the same Fig. 3 interface the single-GPU engine
exposes, so every algorithm driver in :mod:`repro.algorithms` runs
unmodified on N shards.

Execution model (BSP, per user-visible op):

1. the level-0 frontier is partitioned across shards by a
   :mod:`repro.shard.policy` (each shard seeds the full frontier and
   filters down to its owned units);
2. every op fans out to all shards in shard order;
3. a barrier closes the op: lagging shards charge their idle wait to the
   ``shard_sync`` clock bucket, so each shard's clock equals the makespan
   and per-shard utilization falls out of the buckets;
4. cross-shard reconciliation (duplicate embeddings discovered from seeds
   in different shards, per-shard pattern supports) exchanges data over
   the :class:`~repro.gpusim.interconnect.Interconnect` model — NVLink
   peer copies or PCIe staged through host, per the
   :class:`~repro.gpusim.spec.InterconnectSpec`.

Every charge (exchange, merge kernels, barrier waits) is routed through a
shard's op journal via :meth:`Gamma.custom_op`, so per-shard
checkpoint/resume (``run(checkpoint_dir=..., resume=True)``) composes with
sharding exactly as it does on one GPU.

Single-shard runs are bit-identical to unsharded ``Gamma`` execution:
ownership filters, exchanges and barriers all vanish at N=1.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..core.embedding_table import EmbeddingTable
from ..core.extension import ExtensionStats
from ..core.framework import Gamma, GammaConfig
from ..core.aggregation import INSTANCES, embedding_set_keys
from ..core.pattern_table import PatternTable
from ..errors import (
    DeviceOutOfMemory,
    ExecutionError,
    HostOutOfMemory,
    SpillIOError,
)
from ..graph.csr import CSRGraph
from ..gpusim import clock as clk
from ..gpusim.interconnect import Interconnect
from ..gpusim.spec import InterconnectSpec
from ..resilience import runner as res_runner
from ..resilience.faults import BACKOFF_CATEGORY
from . import policy as shard_policy
from .table import ShardedTable

#: Bytes per exchanged embedding cell (int64 vertex/edge id).
_KEY_CELL_BYTES = 8
#: Bytes per exchanged pattern-table entry (int64 code + int64 support).
_PATTERN_BYTES = 16


def _host_rows(part: EmbeddingTable) -> np.ndarray:
    """Uncharged host-side view of a shard table's full embeddings.

    Orchestration (computing ownership/duplicate masks) reads the
    host-resident table directly, like the algorithm drivers do; the
    device-visible traffic it stands in for is billed explicitly by the
    exchange ops.
    """
    depth = part.depth
    n = part.num_embeddings
    out = np.empty((n, depth), dtype=np.int64)
    current = np.arange(n, dtype=np.int64)
    for level in range(depth - 1, -1, -1):
        out[:, level] = part.column_values(level)[current]
        current = part.column_parents(level)[current]
    return out


class ShardedGamma:
    """The GAMMA framework across N simulated GPUs (drop-in ``Gamma``)."""

    def __init__(
        self,
        graph: CSRGraph,
        config: GammaConfig | None = None,
        num_shards: int = 2,
        policy: str = shard_policy.STATIC,
        interconnect: InterconnectSpec | None = None,
    ) -> None:
        if num_shards < 1:
            raise ExecutionError("num_shards must be >= 1")
        if policy not in shard_policy.SHARD_POLICIES:
            raise ExecutionError(
                f"shard policy must be one of {shard_policy.SHARD_POLICIES}, "
                f"got {policy!r}"
            )
        self.graph = graph
        self.config = config if config is not None else GammaConfig()
        self.num_shards = num_shards
        self.policy = policy
        self.interconnect_spec = (
            interconnect if interconnect is not None else InterconnectSpec()
        )
        #: One full engine (own platform/clock/pool/planners) per shard.
        self.shards: List[Gamma] = [
            Gamma(graph, self.config) for __ in range(num_shards)
        ]
        self.links: List[Interconnect] = [
            Interconnect(shard.platform, self.interconnect_spec)
            for shard in self.shards
        ]
        #: Level-0 unit ownership, computed lazily per unit kind.
        self._assignments: dict = {}
        #: One entry per closed barrier: which shard gated the superstep
        #: and how long each peer waited (read by
        #: :func:`repro.obs.profile.straggler_report`).  Deterministic —
        #: derived from simulated clocks only — so it may feed the
        #: canonical sharded manifest.  Empty at N=1.
        self.barrier_log: List[dict] = []
        #: One entry per cross-shard all-gather (kind + payload bytes).
        self.exchange_log: List[dict] = []
        self._closed = False
        #: Shard index of the most recent fan-out step (degradation
        #: policies in :meth:`run` target the shard that faulted).
        self._active_shard = 0

    # -- plumbing -----------------------------------------------------------
    @property
    def platform(self):
        """Shard 0's platform (telemetry/trace attach point; per-shard
        platforms are reachable via ``shards[i].platform``)."""
        return self.shards[0].platform

    @property
    def _tel(self):
        return self.shards[0].platform.telemetry

    def _assignment(self, units: str) -> np.ndarray:
        cached = self._assignments.get(units)
        if cached is None:
            cached = shard_policy.assign_units(
                self.graph, self.num_shards, units, self.policy
            )
            self._assignments[units] = cached
        return cached

    def _each(self, fn) -> list:
        """Run ``fn(shard_index)`` on every shard in shard order."""
        results = []
        tel = self._tel
        for index in range(self.num_shards):
            self._active_shard = index
            if tel.active and self.num_shards > 1:
                with tel.span(f"shard-{index}", kind="shard", shard=index):
                    results.append(fn(index))
            else:
                results.append(fn(index))
        return results

    def _barrier(self, label: str = "") -> None:
        """Close a BSP super-step: charge lagging shards' idle wait.

        The wait is billed inside each shard's op journal, so a resumed
        replay skips it along with the op that preceded it.  ``label``
        names the op the barrier closes; each barrier appends one
        straggler entry (gating shard, per-shard waits) to
        :attr:`barrier_log`.
        """
        if self.num_shards <= 1:
            return
        totals = [shard.platform.clock.total for shard in self.shards]
        target = max(totals)
        gating = totals.index(target)
        entry = {
            "superstep": len(self.barrier_log),
            "op": label or "op",
            "gating_shard": gating,
            "target_seconds": target,
            "waits": [target - total for total in totals],
        }
        self.barrier_log.append(entry)

        def sync(index: int):
            shard = self.shards[index]

            def execute():
                wait = target - shard.platform.clock.total
                if wait > 0:
                    shard.platform.clock.advance(clk.SHARD_SYNC, wait)
                return None

            return shard.custom_op("shard-sync", execute)

        tel = self._tel
        if tel.active:
            with tel.span(f"barrier:{entry['op']}", kind="barrier",
                          superstep=entry["superstep"],
                          gating_shard=gating):
                self._each(sync)
        else:
            self._each(sync)

    def _exchange(self, kind: str, payload_bytes: Sequence[int],
                  merge_ops: float) -> None:
        """Charge one all-gather + merge step on every shard's journal.

        ``payload_bytes[i]`` is shard i's outgoing payload; each shard
        additionally receives every peer's payload and runs a merge kernel
        of ``merge_ops`` element-ops over the union.
        """
        if self.num_shards <= 1:
            return
        total = int(sum(payload_bytes))
        self.exchange_log.append({
            "after_superstep": len(self.barrier_log),
            "kind": kind,
            "payload_bytes": [int(b) for b in payload_bytes],
            "total_bytes": total,
        })

        def exchange(index: int):
            shard = self.shards[index]
            local = int(payload_bytes[index])

            def execute():
                self.links[index].allgather(
                    local, total - local, peers=self.num_shards - 1
                )
                if merge_ops:
                    shard.platform.kernel.launch(
                        f"shard:{kind}", element_ops=merge_ops
                    )
                return None

            return shard.custom_op(f"shard-exchange:{kind}", execute)

        self._each(exchange)

    # -- table construction --------------------------------------------------
    def new_vertex_table(self, name: str = "v-ET") -> ShardedTable:
        parts = self._each(
            lambda i: self.shards[i].new_vertex_table(f"{name}@{i}")
        )
        table = ShardedTable("vertex", name, parts)
        table.owner = self
        return table

    def new_edge_table(self, name: str = "e-ET") -> ShardedTable:
        parts = self._each(
            lambda i: self.shards[i].new_edge_table(f"{name}@{i}")
        )
        table = ShardedTable("edge", name, parts)
        table.owner = self
        return table

    # -- seeding -------------------------------------------------------------
    def _restrict_to_owned(self, table: ShardedTable, units: str) -> None:
        """Drop non-owned level-0 units from each shard's freshly seeded
        table.  At N=1 everything is owned and nothing happens, keeping
        single-shard runs op-for-op identical to unsharded execution."""
        if self.num_shards <= 1:
            return
        assignment = self._assignment(units)

        def restrict(index: int):
            part = table.parts[index]
            values = part.column_values(0)
            mask = assignment[values] == index
            return self.shards[index].filtering(part, keep_mask=mask)

        self._each(restrict)

    def seed_vertices(self, table: ShardedTable, label: int | None = None):
        self._each(
            lambda i: self.shards[i].seed_vertices(table.parts[i], label)
        )
        self._restrict_to_owned(table, shard_policy.VERTEX_UNITS)
        self._barrier("seed-vertices")
        return table

    def seed_edges(self, table: ShardedTable):
        self._each(lambda i: self.shards[i].seed_edges(table.parts[i]))
        self._restrict_to_owned(table, shard_policy.EDGE_UNITS)
        self._barrier("seed-edges")
        return table

    def _seed_explicit(self, table: ShardedTable, values: np.ndarray) -> None:
        """Driver-supplied seed (binary-join SM): partition the given unit
        ids by ownership.  Mirrors ``EmbeddingTable.seed`` — not journaled,
        so drivers using it forgo checkpoint/resume (as on one GPU)."""
        values = np.ascontiguousarray(values, dtype=np.int64)
        units = (shard_policy.VERTEX_UNITS if table.kind == "vertex"
                 else shard_policy.EDGE_UNITS)
        assignment = self._assignment(units)
        for index, part in enumerate(table.parts):
            part.seed(values[assignment[values] == index])
        self._barrier("seed-explicit")

    # -- extension -----------------------------------------------------------
    def _merge_stats(self, stats: List[ExtensionStats]) -> ExtensionStats:
        per_row = [s.per_row_counts for s in stats
                   if s.per_row_counts is not None and len(s.per_row_counts)]
        return ExtensionStats(
            rows_in=sum(s.rows_in for s in stats),
            rows_out=sum(s.rows_out for s in stats),
            candidates=sum(s.candidates for s in stats),
            groups=sum(s.groups for s in stats),
            kernel_ops=sum(s.kernel_ops for s in stats),
            list_reads=sum(s.list_reads for s in stats),
            per_row_counts=(np.concatenate(per_row) if per_row
                            else np.empty(0, dtype=np.int64)),
        )

    def vertex_extension(self, table: ShardedTable, anchor_cols,
                         label: int | None = None,
                         greater_than_col: int | None = None,
                         greater_than_cols=(), less_than_cols=(),
                         injective: bool = True) -> ExtensionStats:
        stats = self._each(lambda i: self.shards[i].vertex_extension(
            table.parts[i], anchor_cols, label=label,
            greater_than_col=greater_than_col,
            greater_than_cols=greater_than_cols,
            less_than_cols=less_than_cols, injective=injective,
        ))
        self._barrier("vertex-extension")
        return self._merge_stats(stats)

    def vertex_extension_any(self, table: ShardedTable, anchor_cols,
                             label: int | None = None,
                             greater_than_col: int | None = None,
                             greater_than_cols=(), less_than_cols=(),
                             injective: bool = True) -> ExtensionStats:
        stats = self._each(lambda i: self.shards[i].vertex_extension_any(
            table.parts[i], anchor_cols, label=label,
            greater_than_col=greater_than_col,
            greater_than_cols=greater_than_cols,
            less_than_cols=less_than_cols, injective=injective,
        ))
        self._barrier("vertex-extension-any")
        return self._merge_stats(stats)

    def edge_extension(self, table: ShardedTable,
                       greater_than_col: "int | None" = None,
                       ) -> ExtensionStats:
        stats = self._each(
            lambda i: self.shards[i].edge_extension(
                table.parts[i], greater_than_col=greater_than_col)
        )
        self._barrier("edge-extension")
        return self._merge_stats(stats)

    # -- dedup (with cross-shard reconciliation) ------------------------------
    def dedup(self, table: ShardedTable) -> int:
        """Remove duplicate embeddings, including duplicates discovered by
        different shards.

        Per shard: local dedup (the existing sort+compact).  Then each
        shard all-gathers its surviving set keys; every key is kept only on
        the lowest-indexed shard holding it, and the losers are filtered
        out.  The exchange ships ``rows x depth x 8`` bytes per shard and
        merges with one sort-merge pass over the union.
        """
        removed = sum(self._each(
            lambda i: self.shards[i].dedup(table.parts[i])
        ))
        if self.num_shards <= 1:
            self._barrier()
            return removed
        self._barrier("dedup-local")

        keys = [embedding_set_keys(_host_rows(part)) for part in table.parts]
        counts = [len(k) for k in keys]
        depth = table.depth
        payload = [n * depth * _KEY_CELL_BYTES for n in counts]
        total_rows = int(sum(counts))
        merge_ops = total_rows * float(np.log2(max(2, total_rows)))
        self._exchange("dedup", payload, merge_ops)

        keep = np.zeros(total_rows, dtype=bool)
        if total_rows:
            # Empty shards yield zero-length key arrays whose void dtype
            # may not promote with the others; drop them before stacking.
            flat = np.concatenate([k for k in keys if len(k)])
            __, first = np.unique(flat, return_index=True)
            keep[first] = True
        offsets = np.cumsum([0] + counts)

        def reconcile(index: int):
            mask = keep[offsets[index]:offsets[index + 1]]
            return self.shards[index].filtering(
                table.parts[index], keep_mask=mask
            )

        removed += sum(self._each(reconcile))
        self._barrier("dedup-reconcile")
        return removed

    # -- aggregation / filtering ----------------------------------------------
    def aggregation(self, table: ShardedTable, pattern_table: PatternTable,
                    support_metric: str = INSTANCES):
        """Aggregate across shards: per-shard canonical grouping, then an
        all-gather of per-shard pattern tables summed into the global one.

        Returns per-shard code arrays (opaque to drivers; accepted back by
        :meth:`filtering`).  ``support_metric='mni'`` is exact only on one
        shard — distinct-vertex minima do not decompose over a sum — and
        raises otherwise (see docs/SHARDING.md).
        """
        if self.num_shards == 1:
            return self.shards[0].aggregation(
                table.parts[0], pattern_table, support_metric
            )
        if support_metric != INSTANCES:
            raise ExecutionError(
                "sharded aggregation supports support_metric='instances' "
                "only; MNI minima do not decompose across shards"
            )
        local_tables = [PatternTable() for __ in range(self.num_shards)]
        codes = self._each(lambda i: self.shards[i].aggregation(
            table.parts[i], local_tables[i], support_metric
        ))
        self._barrier("aggregation-local")
        payload = [len(pt) * _PATTERN_BYTES for pt in local_tables]
        total_patterns = sum(len(pt) for pt in local_tables)
        self._exchange("pattern-table", payload, float(total_patterns))
        for local in local_tables:
            if len(local):
                pattern_table.merge(local.codes, local.supports)
        self._barrier("aggregation-merge")
        return ShardedCodes(codes)

    def filtering(self, table: ShardedTable,
                  keep_mask: np.ndarray | None = None,
                  pattern_table: PatternTable | None = None,
                  row_codes=None, constraint=None) -> int:
        if self.num_shards == 1:
            codes = (row_codes.parts[0]
                     if isinstance(row_codes, ShardedCodes) else row_codes)
            return self.shards[0].filtering(
                table.parts[0], keep_mask=keep_mask,
                pattern_table=pattern_table, row_codes=codes,
                constraint=constraint,
            )
        if keep_mask is not None:
            masks = table.split_rows(np.asarray(keep_mask, dtype=bool))
            removed = sum(self._each(lambda i: self.shards[i].filtering(
                table.parts[i], keep_mask=masks[i]
            )))
            self._barrier("filtering")
            return removed
        if pattern_table is None or row_codes is None or constraint is None:
            raise ExecutionError(
                "support filtering needs pattern_table, row_codes "
                "and constraint"
            )
        if isinstance(row_codes, ShardedCodes):
            per_shard = row_codes.parts
        else:
            per_shard = table.split_rows(np.asarray(row_codes, dtype=np.int64))
        removed = sum(self._each(lambda i: self.shards[i].filtering(
            table.parts[i], pattern_table=pattern_table,
            row_codes=per_shard[i], constraint=constraint,
        )))
        self._barrier("filtering")
        return removed

    def output_results(self, table: ShardedTable | None = None,
                       pattern_table: PatternTable | None = None):
        if self.num_shards == 1:
            return self.shards[0].output_results(
                table.parts[0] if table is not None else None, pattern_table
            )
        outputs = []
        if table is not None:
            mats = self._each(
                lambda i: self.shards[i].output_results(table.parts[i])
            )
            mats = [m for m in mats if m.size]
            outputs.append(
                np.concatenate(mats, axis=0) if mats
                else np.empty((0, table.depth), dtype=np.int64)
            )
        if pattern_table is not None:
            outputs.append(pattern_table.as_dict())
        self._barrier("output")
        if not outputs:
            raise ExecutionError("nothing to output")
        return outputs[0] if len(outputs) == 1 else tuple(outputs)

    # -- resilience -----------------------------------------------------------
    def enable_checkpointing(self, checkpoint_dir: str | None = None,
                             resume: bool = False) -> bool:
        """Arm per-shard journaled checkpointing (``<dir>/shard-<i>``)."""
        loaded = []
        for index, shard in enumerate(self.shards):
            sub = (f"{checkpoint_dir}/shard-{index}"
                   if checkpoint_dir is not None else None)
            loaded.append(shard.enable_checkpointing(sub, resume=resume))
        return all(loaded) and bool(loaded)

    def run(self, task, *, checkpoint_dir: str | None = None,
            resume: bool = False, policy=None, max_retries: int = 8,
            backoff_seconds: float = 0.05):
        """Sharded :meth:`Gamma.run`: checkpoint/resume per shard plus the
        same degradation retry loop, applied to the shard that faulted."""
        fn = task if callable(task) else task.run
        if isinstance(policy, str):
            from ..resilience import get_policy

            policy = get_policy(policy)
        self.enable_checkpointing(checkpoint_dir, resume=resume)
        attempts = 0
        while True:
            try:
                return fn(self)
            except (DeviceOutOfMemory, HostOutOfMemory, SpillIOError) as exc:
                attempts += 1
                if policy is None or attempts > max_retries:
                    raise
                faulted = self.shards[self._active_shard]
                for shard in self.shards:
                    res_runner.rewind(shard)
                action = policy.apply(faulted, exc, attempts)
                if action is None:
                    raise
                backoff = backoff_seconds * (2 ** (attempts - 1))
                for shard in self.shards:
                    shard.platform.clock.advance(BACKOFF_CATEGORY, backoff)
                event = {
                    "type": "degradation",
                    "policy": policy.name,
                    "attempt": attempts,
                    "error": type(exc).__name__,
                    "shard": self._active_shard,
                }
                event.update(action)
                faulted.platform.resilience_log.append(event)

    # -- bookkeeping -----------------------------------------------------------
    @property
    def resilience_log(self) -> list:
        merged = []
        for index, shard in enumerate(self.shards):
            for event in shard.platform.resilience_log:
                tagged = dict(event)
                tagged.setdefault("shard", index)
                merged.append(tagged)
        return merged

    @property
    def simulated_seconds(self) -> float:
        """Makespan: shards barrier after every op, so the slowest shard's
        clock is the wall the workload observes."""
        return max(shard.simulated_seconds for shard in self.shards)

    @property
    def peak_device_bytes(self) -> int:
        return max(shard.peak_device_bytes for shard in self.shards)

    @property
    def peak_host_bytes(self) -> int:
        return max(shard.peak_host_bytes for shard in self.shards)

    @property
    def peak_memory_bytes(self) -> int:
        """Fig. 10's quantity on the bottleneck shard (per-GPU peak)."""
        return max(shard.peak_memory_bytes for shard in self.shards)

    @property
    def total_peak_memory_bytes(self) -> int:
        """Cluster-wide footprint (sum of per-shard peaks)."""
        return sum(shard.peak_memory_bytes for shard in self.shards)

    def shard_utilization(self) -> List[float]:
        """Busy fraction per shard: 1 - (sync idle / shard clock)."""
        out = []
        for shard in self.shards:
            total = shard.platform.clock.total
            idle = shard.platform.clock.time_in(clk.SHARD_SYNC)
            out.append(1.0 - idle / total if total > 0 else 1.0)
        return out

    def close(self) -> None:
        if self._closed:
            return
        for shard in self.shards:
            shard.close()
        self._closed = True

    def __enter__(self) -> "ShardedGamma":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ShardedCodes:
    """Per-shard canonical code arrays returned by sharded aggregation.

    Drivers treat aggregation's return value as opaque and hand it back to
    ``filtering``; this wrapper keeps the per-shard split exact while
    still looking like a flat sequence where drivers peek (``len``,
    concatenation via :meth:`flat`).
    """

    __slots__ = ("parts",)

    def __init__(self, parts: List[np.ndarray]) -> None:
        self.parts = [np.asarray(p, dtype=np.int64) for p in parts]

    def __len__(self) -> int:
        return sum(len(p) for p in self.parts)

    def flat(self) -> np.ndarray:
        return (np.concatenate(self.parts) if self.parts
                else np.empty(0, dtype=np.int64))


def make_sharded(graph: CSRGraph, num_shards: int,
                 policy: str = shard_policy.STATIC,
                 config: GammaConfig | None = None,
                 interconnect: InterconnectSpec | None = None) -> ShardedGamma:
    """Convenience constructor mirroring the ``SYSTEMS`` factory shape."""
    return ShardedGamma(
        graph, config, num_shards=num_shards, policy=policy,
        interconnect=interconnect,
    )
