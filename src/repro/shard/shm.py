"""Shared-memory shipping of read-only CSR graphs to shard workers.

The process executor must hand every worker the full graph.  Pickling it
through the bootstrap works but copies the arrays once per worker; for the
multi-hundred-MB graphs the sharding layer targets that dominates startup.
Instead the coordinator *publishes* the graph once into POSIX shared memory
(:mod:`multiprocessing.shared_memory`) and workers attach zero-copy,
read-only views.  Graphs below :data:`SHM_THRESHOLD_BYTES` skip the segment
and travel pickled inside the bootstrap — for tiny test graphs the mmap +
attach round trip costs more than the copy it saves.

Lifecycle contract (documented in ``docs/SHARDING.md``):

* the coordinator owns the segment: it creates it in ``publish_graph`` and
  is the only side that ever ``unlink``\\ s it (``release``);
* workers attach by name with the ``resource_tracker`` registration
  suppressed (the coordinator tracks it; duplicate tracking either unlinks
  a live segment early or floods the shared tracker with KeyErrors) and
  hold the mapping open until ``AttachedGraph.close``;
* every published segment is recorded in a module-level registry so tests
  can assert nothing leaks (:func:`live_segments` must be empty after
  engine teardown).
"""

from __future__ import annotations

from multiprocessing import resource_tracker, shared_memory
from typing import Any, Dict, List, Tuple

import numpy as np

from ..errors import ExecutionError
from ..graph.csr import CSRGraph

__all__ = [
    "SHM_THRESHOLD_BYTES",
    "AttachedGraph",
    "attach_graph",
    "graph_nbytes",
    "live_segments",
    "publish_graph",
    "release_graph",
]

#: Graphs smaller than this ship pickled in the worker bootstrap instead of
#: through a shared-memory segment (1 MiB: below it, copy beats mmap).
SHM_THRESHOLD_BYTES = 1 << 20

#: The CSR arrays shipped, in segment layout order.
_FIELDS = ("offsets", "neighbors", "edge_ids", "edge_src", "edge_dst",
           "labels")

#: Coordinator-side registry of live segments: name -> SharedMemory.  The
#: leak check in the crash-matrix tests asserts this drains to empty.
_LIVE: Dict[str, shared_memory.SharedMemory] = {}


def graph_nbytes(graph: CSRGraph) -> int:
    """Total payload bytes the CSR arrays of ``graph`` occupy."""
    return sum(int(getattr(graph, field).nbytes) for field in _FIELDS)


def publish_graph(graph: CSRGraph,
                  threshold: int = SHM_THRESHOLD_BYTES) -> Dict[str, Any]:
    """Describe ``graph`` as plain data a worker bootstrap can carry.

    Returns either ``{"mode": "pickle", ...}`` with the graph object inline
    (small graphs — the multiprocessing machinery pickles it for spawn and
    shares it copy-on-write for fork) or ``{"mode": "shm", ...}`` naming a
    freshly created shared-memory segment holding every CSR array.
    """
    nbytes = graph_nbytes(graph)
    if nbytes < threshold:
        return {"mode": "pickle", "graph": graph, "nbytes": nbytes}
    segment = shared_memory.SharedMemory(create=True, size=max(nbytes, 1))
    fields: List[Tuple[str, int, int]] = []
    offset = 0
    for field in _FIELDS:
        array = np.ascontiguousarray(getattr(graph, field), dtype=np.int64)
        length = int(array.shape[0])
        view = np.ndarray((length,), dtype=np.int64,
                          buffer=segment.buf, offset=offset)
        view[:] = array
        fields.append((field, length, offset))
        offset += array.nbytes
    _LIVE[segment.name] = segment
    return {
        "mode": "shm",
        "segment": segment.name,
        "fields": fields,
        "name": graph.name,
        "nbytes": nbytes,
    }


class AttachedGraph:
    """A worker-side view of a published graph plus its release handle."""

    __slots__ = ("graph", "_segment")

    def __init__(self, graph: CSRGraph, segment=None) -> None:
        self.graph = graph
        self._segment = segment

    def close(self) -> None:
        """Drop this worker's mapping (the coordinator still owns it)."""
        if self._segment is not None:
            self._segment.close()
            self._segment = None


def attach_graph(meta: Dict[str, Any]) -> AttachedGraph:
    """Rebuild the published graph inside a worker process."""
    if meta["mode"] == "pickle":
        return AttachedGraph(meta["graph"])
    # The coordinator owns the segment's lifetime; an attacher must not add
    # its own resource-tracker registration.  Python 3.11 has no
    # ``track=False``, and register-then-unregister is racy when forked
    # workers share the parent's tracker (N registers collapse into one
    # set entry, so N-1 unregisters hit KeyError in the tracker process) —
    # so suppress the registration call around the attach instead.
    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        segment = shared_memory.SharedMemory(name=meta["segment"],
                                             create=False)
    finally:
        resource_tracker.register = original_register
    arrays = {}
    for field, length, offset in meta["fields"]:
        view = np.ndarray((length,), dtype=np.int64,
                          buffer=segment.buf, offset=offset)
        view.flags.writeable = False
        arrays[field] = view
    graph = CSRGraph(arrays["offsets"], arrays["neighbors"],
                     arrays["edge_ids"], arrays["edge_src"],
                     arrays["edge_dst"], labels=arrays["labels"],
                     name=meta.get("name", "graph"))
    return AttachedGraph(graph, segment)


def release_graph(meta: Dict[str, Any]) -> None:
    """Coordinator-side teardown: close and unlink the published segment."""
    if meta.get("mode") != "shm":
        return
    segment = _LIVE.pop(meta["segment"], None)
    if segment is None:
        raise ExecutionError(
            f"shared-memory segment {meta['segment']!r} was already "
            f"released (double close?)"
        )
    segment.close()
    segment.unlink()


def live_segments() -> Tuple[str, ...]:
    """Names of segments this process published and has not yet released."""
    return tuple(sorted(_LIVE))
