"""Level-0 frontier partitioning policies for sharded execution.

A policy assigns every level-0 extension unit (a vertex for v-ET
workloads, an edge for e-ET workloads) to one of ``num_shards`` simulated
GPUs.  The assignment fixes which shard *owns* each unit: each shard seeds
the full frontier, then filters down to its owned units, so every
embedding is grown by exactly one shard (duplicate discoveries that cross
shard boundaries are reconciled by the exchange step in
:mod:`repro.shard.engine`).

Three policies, mirroring the scale-out literature:

* ``static`` — contiguous equal-count ranges (G²Miner's vertex-range
  partitioning).  Cheapest to compute; skew follows the graph's degree
  ordering.
* ``degree`` — LPT over per-unit degree weight: units are assigned,
  heaviest first, to the currently lightest shard.  Balances adjacency
  *reads*, scatters ownership.
* ``stealing`` — chunked work stealing, simulated deterministically:
  the frontier is cut into ``STEAL_CHUNKS_PER_SHARD`` chunks per shard and
  chunks are claimed in order by the shard with the least accumulated
  weight — the steady-state schedule an idle-steal runtime converges to
  (Khuzdul-style embedding partitioning at chunk granularity).

All policies are pure functions of (graph, num_shards): no RNG, no wall
clock, so sharded runs stay bit-reproducible.
"""

from __future__ import annotations

import numpy as np

from ..errors import ExecutionError
from ..graph.csr import CSRGraph

STATIC = "static"
DEGREE = "degree"
STEALING = "stealing"
SHARD_POLICIES = (STATIC, DEGREE, STEALING)

#: Chunks per shard for the simulated work-stealing schedule.  More chunks
#: track the dynamic schedule more closely at the cost of more (simulated)
#: claim operations.
STEAL_CHUNKS_PER_SHARD = 16

VERTEX_UNITS = "vertex"
EDGE_UNITS = "edge"


def _unit_weights(graph: CSRGraph, units: str) -> np.ndarray:
    """Work estimate per level-0 unit: the adjacency volume an extension
    from that unit reads (1 + degree, so isolated vertices still cost)."""
    degrees = (graph.offsets[1:] - graph.offsets[:-1]).astype(np.int64)
    if units == VERTEX_UNITS:
        return 1 + degrees
    if units == EDGE_UNITS:
        src, dst = graph.edge_src, graph.edge_dst
        return 1 + degrees[src] + degrees[dst]
    raise ExecutionError(f"unknown unit kind {units!r}")


def _num_units(graph: CSRGraph, units: str) -> int:
    return graph.num_vertices if units == VERTEX_UNITS else graph.num_edges


def assign_static(graph: CSRGraph, num_shards: int, units: str) -> np.ndarray:
    """Contiguous equal-count ranges of unit ids."""
    n = _num_units(graph, units)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    bounds = np.linspace(0, n, num_shards + 1).astype(np.int64)
    assignment = np.empty(n, dtype=np.int64)
    for shard in range(num_shards):
        assignment[bounds[shard]:bounds[shard + 1]] = shard
    return assignment


def assign_degree(graph: CSRGraph, num_shards: int, units: str) -> np.ndarray:
    """Longest-processing-time-first over per-unit degree weight."""
    weights = _unit_weights(graph, units)
    n = len(weights)
    assignment = np.empty(n, dtype=np.int64)
    if n == 0:
        return assignment
    # Stable sort keeps ties in id order => deterministic assignment.
    order = np.argsort(-weights, kind="stable")
    loads = np.zeros(num_shards, dtype=np.int64)
    for unit in order:
        shard = int(np.argmin(loads))
        assignment[unit] = shard
        loads[shard] += weights[unit]
    return assignment


def assign_stealing(graph: CSRGraph, num_shards: int, units: str) -> np.ndarray:
    """Deterministic replay of a chunked idle-steal schedule."""
    weights = _unit_weights(graph, units)
    n = len(weights)
    assignment = np.empty(n, dtype=np.int64)
    if n == 0:
        return assignment
    num_chunks = min(n, num_shards * STEAL_CHUNKS_PER_SHARD)
    bounds = np.linspace(0, n, num_chunks + 1).astype(np.int64)
    loads = np.zeros(num_shards, dtype=np.int64)
    for chunk in range(num_chunks):
        lo, hi = int(bounds[chunk]), int(bounds[chunk + 1])
        if lo == hi:
            continue
        # The idle-most shard claims the next chunk off the shared queue.
        shard = int(np.argmin(loads))
        assignment[lo:hi] = shard
        loads[shard] += int(weights[lo:hi].sum())
    return assignment


_POLICY_FNS = {
    STATIC: assign_static,
    DEGREE: assign_degree,
    STEALING: assign_stealing,
}


def assign_units(
    graph: CSRGraph, num_shards: int, units: str, policy: str
) -> np.ndarray:
    """Shard id per level-0 unit under ``policy`` (see module docs)."""
    if policy not in SHARD_POLICIES:
        raise ExecutionError(
            f"shard policy must be one of {SHARD_POLICIES}, got {policy!r}"
        )
    if num_shards < 1:
        raise ExecutionError("num_shards must be >= 1")
    if units not in (VERTEX_UNITS, EDGE_UNITS):
        raise ExecutionError(f"unknown unit kind {units!r}")
    if num_shards == 1:
        return np.zeros(_num_units(graph, units), dtype=np.int64)
    return _POLICY_FNS[policy](graph, num_shards, units)
