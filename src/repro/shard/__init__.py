"""Multi-GPU sharded execution for the GAMMA reproduction.

Partitions the level-0 extension frontier across N simulated GPUs (one
:class:`~repro.gpusim.platform.GpuPlatform` per shard), runs the
three-phase pipeline per shard in BSP lockstep, and reconciles
cross-shard state (duplicate embeddings, pattern supports) over a
modelled interconnect.  See ``docs/SHARDING.md``.
"""

from .engine import ShardedCodes, ShardedGamma, make_sharded
from .executor import (
    EXECUTOR_ENV_VAR,
    EXECUTORS,
    PROCESS_EXECUTOR,
    SERIAL_EXECUTOR,
    SERVE_MIN_CORES,
    ProcessExecutor,
    SerialExecutor,
    ShardExecutor,
    default_executor,
    make_executor,
    serve_default_executor,
)
from .manifest import build_sharded_manifest, canonical_manifest_bytes
from .policy import (
    DEGREE,
    SHARD_POLICIES,
    STATIC,
    STEALING,
    assign_units,
)
from .table import RemotePart, ShardedTable

__all__ = [
    "ShardedCodes",
    "ShardedGamma",
    "ShardedTable",
    "RemotePart",
    "make_sharded",
    "build_sharded_manifest",
    "canonical_manifest_bytes",
    "assign_units",
    "SHARD_POLICIES",
    "STATIC",
    "DEGREE",
    "STEALING",
    "EXECUTORS",
    "EXECUTOR_ENV_VAR",
    "SERIAL_EXECUTOR",
    "PROCESS_EXECUTOR",
    "ShardExecutor",
    "SerialExecutor",
    "ProcessExecutor",
    "default_executor",
    "make_executor",
    "SERVE_MIN_CORES",
    "serve_default_executor",
]
