"""The per-shard worker: one ``Gamma`` engine behind a command surface.

Both executor backends drive the *same* :class:`ShardWorker` handlers, so
serial execution exercises every line the process backend runs — parity by
construction, and coverage without subprocess instrumentation.  A command
is a plain-data dict ``{"op": <name>, "args": {...}}``; a reply is
``{"ok": bool, "value"/"error": ..., "clock": <shard clock total>}``.  The
piggybacked clock total is what lets the coordinator compute barrier
targets without an extra round trip per superstep.

:func:`submit` is the *only* call that ships a request across the process
boundary; the fork-safety checker (``repro.analysis``) treats it as a
boundary sink, so every request must stay free of live handles (engines,
platforms, file objects, RNG state).  Structurally that holds: requests
carry table handles (ints), NumPy arrays, and small config dataclasses.

Worker processes run :func:`serve` — a recv/dispatch/send loop.  An
injected :class:`~repro.errors.WorkerCrashed` escapes the loop and kills
the process abruptly via ``os._exit`` (no reply, no cleanup), which is how
the crash-matrix tests exercise the coordinator's broken-pipe path without
a real ``SIGKILL``.
"""

from __future__ import annotations

import os
import pickle

import numpy as np

from ..core.aggregation import embedding_set_keys
from ..core.embedding_table import EmbeddingTable
from ..core.framework import Gamma, _apply_stats, _capture_stats
from ..core.pattern_table import PatternTable
from ..errors import ExecutionError, GammaError, WorkerCrashed
from ..gpusim import clock as clk
from ..gpusim.interconnect import Interconnect
from ..resilience import runner as res_runner
from ..resilience.faults import BACKOFF_CATEGORY, FaultPlan
from . import policy as shard_policy

__all__ = ["CRASH_EXIT_CODE", "ShardWorker", "dispatch", "serve", "submit"]

#: Exit status of a worker killed by an injected ``worker_crash`` fault.
CRASH_EXIT_CODE = 17


def _host_rows(part: EmbeddingTable) -> np.ndarray:
    """Uncharged host-side view of a shard table's full embeddings.

    Orchestration (computing ownership/duplicate masks) reads the
    host-resident table directly, like the algorithm drivers do; the
    device-visible traffic it stands in for is billed explicitly by the
    exchange ops.
    """
    depth = part.depth
    n = part.num_embeddings
    out = np.empty((n, depth), dtype=np.int64)
    current = np.arange(n, dtype=np.int64)
    for level in range(depth - 1, -1, -1):
        out[:, level] = part.column_values(level)[current]
        current = part.column_parents(level)[current]
    return out


def _rebuild_pt(codes, supports) -> PatternTable:
    table = PatternTable()
    table.codes = np.ascontiguousarray(codes, dtype=np.int64)
    table.supports = np.ascontiguousarray(supports, dtype=np.int64)
    return table


class ShardWorker:
    """One shard's engine plus the command handlers both backends share."""

    def __init__(self, index: int, graph, config, num_shards: int,
                 policy: str, interconnect, telemetry: bool = False) -> None:
        self.index = index
        self.num_shards = num_shards
        self.policy = policy
        self.collector = None
        if telemetry:
            # Process backend only: the worker grows its own span tree
            # (rooted before the engine so gamma-setup is covered) and
            # ships it to the coordinator for grafting at finalize time.
            from ..obs import spans as obs_spans
            obs_spans.uninstall()
            self.collector = obs_spans.install(obs_spans.SpanCollector())
        self.engine = Gamma(graph, config)
        self.link = Interconnect(self.engine.platform, interconnect)
        self.tables: list = []
        self._assignments: dict = {}
        self._policies: dict = {}

    # -- plumbing ------------------------------------------------------------
    @property
    def clock_total(self) -> float:
        return self.engine.platform.clock.total

    def _table(self, handle: int) -> EmbeddingTable:
        return self.tables[handle]

    def _assignment(self, units: str) -> np.ndarray:
        cached = self._assignments.get(units)
        if cached is None:
            cached = shard_policy.assign_units(
                self.engine.graph, self.num_shards, units, self.policy
            )
            self._assignments[units] = cached
        return cached

    # -- table construction / seeding ---------------------------------------
    def do_new_table(self, kind: str, name: str) -> int:
        maker = (self.engine.new_vertex_table if kind == "vertex"
                 else self.engine.new_edge_table)
        self.tables.append(maker(f"{name}@{self.index}"))
        return len(self.tables) - 1

    def do_seed_vertices(self, table: int, label=None) -> None:
        self.engine.seed_vertices(self._table(table), label)

    def do_seed_edges(self, table: int) -> None:
        self.engine.seed_edges(self._table(table))

    def do_seed_explicit(self, table: int, values) -> None:
        self._table(table).seed(np.ascontiguousarray(values, dtype=np.int64))

    def do_restrict_owned(self, table: int, units: str) -> int:
        part = self._table(table)
        assignment = self._assignment(units)
        mask = assignment[part.column_values(0)] == self.index
        return self.engine.filtering(part, keep_mask=mask)

    # -- extension -----------------------------------------------------------
    def do_extend(self, table: int, variant: str, kwargs: dict) -> dict:
        part = self._table(table)
        if variant == "vertex":
            stats = self.engine.vertex_extension(part, **kwargs)
        elif variant == "vertex-any":
            stats = self.engine.vertex_extension_any(part, **kwargs)
        elif variant == "edge":
            stats = self.engine.edge_extension(part, **kwargs)
        else:
            raise ExecutionError(f"unknown extension variant {variant!r}")
        return _capture_stats(stats)

    # -- dedup ---------------------------------------------------------------
    def do_dedup(self, table: int) -> int:
        return self.engine.dedup(self._table(table))

    def do_set_keys(self, table: int) -> np.ndarray:
        return embedding_set_keys(_host_rows(self._table(table)))

    # -- aggregation / filtering / output ------------------------------------
    def do_aggregation(self, table: int, support_metric: str,
                       pt_codes, pt_supports) -> dict:
        pattern_table = _rebuild_pt(pt_codes, pt_supports)
        codes = self.engine.aggregation(
            self._table(table), pattern_table, support_metric
        )
        return {"codes": codes, "pt_codes": pattern_table.codes,
                "pt_supports": pattern_table.supports}

    def do_filtering(self, table: int, keep_mask=None, row_codes=None,
                     pt_codes=None, pt_supports=None, constraint=None) -> dict:
        part = self._table(table)
        pattern_table = (_rebuild_pt(pt_codes, pt_supports)
                         if pt_codes is not None else None)
        removed = self.engine.filtering(
            part,
            keep_mask=(np.asarray(keep_mask, dtype=bool)
                       if keep_mask is not None else None),
            pattern_table=pattern_table,
            row_codes=(np.asarray(row_codes, dtype=np.int64)
                       if row_codes is not None else None),
            constraint=constraint,
        )
        reply = {"removed": int(removed)}
        if pattern_table is not None:
            reply["pt_codes"] = pattern_table.codes
            reply["pt_supports"] = pattern_table.supports
        return reply

    def do_output(self, table=None, pt_codes=None, pt_supports=None):
        part = self._table(table) if table is not None else None
        pattern_table = (_rebuild_pt(pt_codes, pt_supports)
                         if pt_codes is not None else None)
        return self.engine.output_results(part, pattern_table)

    # -- table reads (RemotePart backing) ------------------------------------
    def do_table_info(self, table: int) -> dict:
        part = self._table(table)
        return {
            "num_embeddings": int(part.num_embeddings),
            "depth": int(part.depth),
            "total_cells": int(part.total_cells),
            "nbytes": int(part.nbytes),
            "num_levels": len(part.columns),
        }

    def do_column(self, table: int, what: str, level: int):
        part = self._table(table)
        if what == "values":
            return part.column_values(level)
        if what == "parents":
            return part.column_parents(level)
        if what == "length":
            return len(part.columns[level])
        raise ExecutionError(f"unknown column read {what!r}")

    def do_materialize(self, table: int) -> np.ndarray:
        return self._table(table).materialize()

    def do_release_table(self, table: int) -> None:
        self._table(table).release()

    # -- BSP charging --------------------------------------------------------
    def do_sync(self, target: float):
        engine = self.engine

        def execute():
            wait = target - engine.platform.clock.total
            if wait > 0:
                engine.platform.clock.advance(clk.SHARD_SYNC, wait)
            return None

        return engine.custom_op("shard-sync", execute)

    def do_exchange(self, kind: str, local: int, total: int,
                    peers: int, merge_ops: float):
        engine = self.engine

        def execute():
            self.link.allgather(local, total - local, peers=peers)
            if merge_ops:
                engine.platform.kernel.launch(
                    f"shard:{kind}", element_ops=merge_ops
                )
            return None

        return engine.custom_op(f"shard-exchange:{kind}", execute)

    # -- resilience ----------------------------------------------------------
    def do_enable_checkpointing(self, checkpoint_dir, resume: bool) -> bool:
        return self.engine.enable_checkpointing(checkpoint_dir, resume=resume)

    def do_rewind(self) -> None:
        res_runner.rewind(self.engine)

    def do_apply_policy(self, name: str, fresh: bool, exc: bytes,
                        attempt: int) -> dict:
        from ..resilience import get_policy
        policy = self._policies.get(name)
        if policy is None or fresh:
            policy = get_policy(name)
            self._policies[name] = policy
        action = policy.apply(self.engine, pickle.loads(exc), attempt)
        return {"policy": policy.name, "action": action}

    def do_advance_backoff(self, seconds: float) -> None:
        self.engine.platform.clock.advance(BACKOFF_CATEGORY, seconds)

    def do_append_event(self, event: dict) -> None:
        self.engine.platform.resilience_log.append(dict(event))

    def do_install_fault_plan(self, plan: dict) -> None:
        self.engine.platform.install_fault_plan(FaultPlan.from_dict(plan))

    # -- state / reporting ---------------------------------------------------
    def do_state(self) -> dict:
        platform = self.engine.platform
        return {
            "clock_total": platform.clock.total,
            "clock_buckets": platform.clock.snapshot(),
            "counters": platform.counters.snapshot(include_zero=True),
            "sync_seconds": platform.clock.time_in(clk.SHARD_SYNC),
            "simulated_seconds": self.engine.simulated_seconds,
            "peak_device_bytes": self.engine.peak_device_bytes,
            "peak_host_bytes": self.engine.peak_host_bytes,
            "peak_memory_bytes": self.engine.peak_memory_bytes,
            "resilience_log": [dict(e) for e in platform.resilience_log],
        }

    def do_manifest_doc(self, system, dataset, task, config,
                        collector=None) -> dict:
        from ..obs.manifest import build_manifest
        return build_manifest(
            self.engine.platform, collector, system=system, dataset=dataset,
            task=task, config=config,
        )

    def do_collect_spans(self):
        if self.collector is None:
            return None
        from ..obs.exporters import span_tree_records
        self.collector.finish()
        return span_tree_records(self.collector)

    def do_clock(self) -> None:
        """No-op: the piggybacked reply clock is the whole answer."""

    def do_close(self) -> None:
        self.engine.close()

    def do_reset(self, config, policy, interconnect,
                 telemetry: bool = False) -> None:
        """Rebuild the per-run state for a warm-pool reuse of this worker.

        The process (and its shm graph attachment) survives across runs;
        everything per-run — engine, tables, unit assignments, telemetry
        collector — is rebuilt exactly as the constructor would build it,
        so a reused pool is indistinguishable from a cold one (the pool
        regression test pins byte-identical manifests).
        """
        graph = self.engine.graph
        self.engine.close()
        self.policy = policy
        self.tables = []
        self._assignments = {}
        self._policies = {}
        if self.collector is not None or telemetry:
            from ..obs import spans as obs_spans
            obs_spans.uninstall()
            self.collector = (obs_spans.install(obs_spans.SpanCollector())
                              if telemetry else None)
        self.engine = Gamma(graph, config)
        self.link = Interconnect(self.engine.platform, interconnect)


def dispatch(worker: ShardWorker, request: dict):
    """Execute one command on a worker (shared by both backends)."""
    op = str(request["op"])
    handler = getattr(worker, "do_" + op.replace("-", "_"), None)
    if handler is None or op.startswith("_"):
        raise ExecutionError(f"unknown shard command {op!r}")
    return handler(**request.get("args", {}))


def submit(conn, request: dict) -> None:
    """Ship one plain-data command to a worker process.

    The single boundary sink the fork-safety checker audits: everything in
    ``request`` crosses a pickle boundary, so live handles must never
    appear here.
    """
    conn.send(request)


def _build_worker(bootstrap: dict):
    from . import shm
    attached = shm.attach_graph(bootstrap["graph"])
    worker = ShardWorker(
        index=bootstrap["index"],
        graph=attached.graph,
        config=bootstrap["config"],
        num_shards=bootstrap["num_shards"],
        policy=bootstrap["policy"],
        interconnect=bootstrap["interconnect"],
        telemetry=bootstrap.get("telemetry", False),
    )
    return worker, attached


def serve(conn, bootstrap: dict, exit_process: bool = True) -> int:
    """Worker main loop: build the engine, then recv/dispatch/send.

    ``exit_process=False`` is the in-process test harness mode (the loop
    runs on a thread over a pipe pair): crashes return
    :data:`CRASH_EXIT_CODE` instead of calling ``os._exit``.
    """
    status = 0
    attached = None
    worker = None
    try:
        try:
            worker, attached = _build_worker(bootstrap)
        except BaseException as exc:  # noqa: BLE001 - ship the build failure
            conn.send({"ok": False, "error": pickle.dumps(
                ExecutionError(f"shard worker failed to start: {exc!r}")),
                "clock": 0.0})
            return 1
        conn.send({"ok": True, "value": None, "clock": worker.clock_total})
        while True:
            request = conn.recv()
            if request is None:
                break
            try:
                reply = {"ok": True, "value": dispatch(worker, request)}
            except WorkerCrashed:
                # Simulated hard crash: die abruptly, no reply, no cleanup
                # — the coordinator must survive on the broken pipe alone.
                status = CRASH_EXIT_CODE
                if exit_process:  # pragma: no cover - subprocess only
                    os._exit(CRASH_EXIT_CODE)
                return status
            except GammaError as exc:
                reply = {"ok": False, "error": pickle.dumps(exc)}
            reply["clock"] = worker.clock_total
            conn.send(reply)
    except (EOFError, OSError):
        # Coordinator vanished; nothing left to reply to.
        status = 1
    finally:
        if worker is not None:
            try:
                worker.engine.close()  # releases any lazy spill temp dir
            except Exception:  # pragma: no cover - teardown best-effort
                pass
        if attached is not None:
            attached.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover - already torn down
            pass
    if exit_process:  # pragma: no cover - subprocess only
        # Skip inherited atexit hooks (coverage/telemetry belong to the
        # coordinator); pipe writes are already flushed at the OS level.
        os._exit(status)
    return status
