"""A driver-facing view over one embedding table per shard.

Algorithm drivers (``repro.algorithms``) are engine-agnostic: they talk to
whatever object ``new_vertex_table``/``new_edge_table`` returns.  In
sharded execution that object is a :class:`ShardedTable` — a thin proxy
holding one :class:`~repro.core.embedding_table.EmbeddingTable` per shard
and presenting the *global* view drivers expect:

* scalar shape (``num_embeddings``, ``depth``, ``nbytes``) sums shards;
* column reads concatenate shards in shard order, with parent pointers
  rebased onto the concatenated previous column;
* ``materialize`` stacks per-shard matrices in shard order.

The global row order is therefore *shard-major*: all of shard 0's rows,
then shard 1's, and so on.  Everything that maps global masks or codes
back onto shards (``ShardedGamma.filtering``) relies on that ordering.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.embedding_table import EmbeddingTable
from ..errors import ExecutionError


class ShardedTable:
    """Global view over per-shard embedding tables (shard-major rows)."""

    def __init__(self, kind: str, name: str, parts: List[EmbeddingTable]) -> None:
        if not parts:
            raise ExecutionError("a sharded table needs at least one shard")
        self.kind = kind
        self.name = name
        self.parts = list(parts)

    # -- shape ---------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.parts)

    @property
    def depth(self) -> int:
        return self.parts[0].depth

    @property
    def num_embeddings(self) -> int:
        return sum(part.num_embeddings for part in self.parts)

    @property
    def total_cells(self) -> int:
        return sum(part.total_cells for part in self.parts)

    @property
    def nbytes(self) -> int:
        return sum(part.nbytes for part in self.parts)

    def shard_row_counts(self, level: int | None = None) -> np.ndarray:
        """Rows per shard at ``level`` (default: the last column)."""
        if level is None:
            return np.array(
                [part.num_embeddings for part in self.parts], dtype=np.int64
            )
        return np.array(
            [len(part.columns[level]) for part in self.parts], dtype=np.int64
        )

    def split_rows(self, values: np.ndarray) -> List[np.ndarray]:
        """Split a global per-row array back into per-shard pieces
        (shard-major order)."""
        values = np.asarray(values)
        counts = self.shard_row_counts()
        if len(values) != int(counts.sum()):
            raise ExecutionError(
                f"global row array has {len(values)} entries, table has "
                f"{int(counts.sum())} rows"
            )
        return np.split(values, np.cumsum(counts)[:-1])

    # -- reads ---------------------------------------------------------------
    def column_values(self, level: int) -> np.ndarray:
        """Concatenated ids of one level (shard-major)."""
        return np.concatenate(
            [part.column_values(level) for part in self.parts]
        ) if self.parts else np.empty(0, dtype=np.int64)

    def column_parents(self, level: int) -> np.ndarray:
        """Concatenated parent pointers of one level, rebased to index the
        concatenated previous column."""
        pieces = []
        offset = 0
        for part in self.parts:
            parents = part.column_parents(level)
            if level > 0:
                pieces.append(np.where(parents >= 0, parents + offset, parents))
                offset += len(part.columns[level - 1])
            else:
                pieces.append(parents)
        return (np.concatenate(pieces)
                if pieces else np.empty(0, dtype=np.int64))

    def materialize(self, rows: np.ndarray | None = None) -> np.ndarray:
        """Full embeddings as an ``(n, depth)`` matrix (shard-major rows)."""
        if rows is not None:
            raise ExecutionError(
                "row-subset materialize is not supported on sharded tables"
            )
        mats = [part.materialize() for part in self.parts]
        mats = [m for m in mats if m.size]
        if not mats:
            return np.empty((0, self.depth), dtype=np.int64)
        return np.concatenate(mats, axis=0)

    # -- seeding -------------------------------------------------------------
    def seed(self, values: np.ndarray) -> None:
        """Driver-supplied explicit seed, partitioned by unit ownership.

        Rows land in shard-major order (a stable partition of ``values``),
        so drivers keeping host-side per-row state must re-align it to
        ``column_values(0)`` after seeding (see ``match_pattern_binary``).
        """
        owner = getattr(self, "owner", None)
        if owner is None:
            raise ExecutionError(
                "sharded tables can only be seeded through their engine"
            )
        owner._seed_explicit(self, values)

    # -- lifecycle -----------------------------------------------------------
    def release(self) -> None:
        for part in self.parts:
            part.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = ",".join(str(part.num_embeddings) for part in self.parts)
        return f"ShardedTable({self.name!r}, {self.kind}, rows=[{sizes}])"
