"""A driver-facing view over one embedding table per shard.

Algorithm drivers (``repro.algorithms``) are engine-agnostic: they talk to
whatever object ``new_vertex_table``/``new_edge_table`` returns.  In
sharded execution that object is a :class:`ShardedTable` — a thin proxy
holding one :class:`~repro.core.embedding_table.EmbeddingTable` per shard
and presenting the *global* view drivers expect:

* scalar shape (``num_embeddings``, ``depth``, ``nbytes``) sums shards;
* column reads concatenate shards in shard order, with parent pointers
  rebased onto the concatenated previous column;
* ``materialize`` stacks per-shard matrices in shard order.

The global row order is therefore *shard-major*: all of shard 0's rows,
then shard 1's, and so on.  Everything that maps global masks or codes
back onto shards (``ShardedGamma.filtering``) relies on that ordering.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.embedding_table import EmbeddingTable
from ..errors import ExecutionError


class _RemoteColumn:
    """Len-only stand-in for one level's column of a remote part."""

    __slots__ = ("_part", "_level")

    def __init__(self, part: "RemotePart", level: int) -> None:
        self._part = part
        self._level = level

    def __len__(self) -> int:
        return self._part.column_length(self._level)


class _RemoteColumns:
    """``part.columns[level]`` compatibility shim for remote parts."""

    __slots__ = ("_part",)

    def __init__(self, part: "RemotePart") -> None:
        self._part = part

    def __getitem__(self, level: int) -> _RemoteColumn:
        return _RemoteColumn(self._part, level)

    def __len__(self) -> int:
        return self._part.num_levels


class RemotePart:
    """Read proxy for one shard's embedding table in a worker process.

    Presents the slice of the :class:`~repro.core.embedding_table
    .EmbeddingTable` surface that :class:`ShardedTable` and the algorithm
    drivers actually touch; every access is one ``call`` round trip to the
    owning worker.  Mutation happens only through engine ops, exactly as
    with in-process parts.
    """

    __slots__ = ("_executor", "shard", "handle")

    def __init__(self, executor, shard: int, handle: int) -> None:
        self._executor = executor
        self.shard = shard
        self.handle = handle

    def _call(self, op: str, **args):
        return self._executor.call(self.shard, op,
                                   dict(table=self.handle, **args))

    def _info(self) -> dict:
        return self._call("table_info")

    @property
    def num_embeddings(self) -> int:
        return self._info()["num_embeddings"]

    @property
    def depth(self) -> int:
        return self._info()["depth"]

    @property
    def total_cells(self) -> int:
        return self._info()["total_cells"]

    @property
    def nbytes(self) -> int:
        return self._info()["nbytes"]

    @property
    def num_levels(self) -> int:
        return self._info()["num_levels"]

    @property
    def columns(self) -> _RemoteColumns:
        return _RemoteColumns(self)

    def column_length(self, level: int) -> int:
        return self._call("column", what="length", level=level)

    def column_values(self, level: int) -> np.ndarray:
        return self._call("column", what="values", level=level)

    def column_parents(self, level: int) -> np.ndarray:
        return self._call("column", what="parents", level=level)

    def materialize(self) -> np.ndarray:
        return self._call("materialize")

    def seed(self, values: np.ndarray) -> None:
        self._call("seed_explicit",
                   values=np.ascontiguousarray(values, dtype=np.int64))

    def release(self) -> None:
        self._call("release_table")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RemotePart(shard={self.shard}, handle={self.handle})"


class ShardedTable:
    """Global view over per-shard embedding tables (shard-major rows).

    ``parts`` are real :class:`EmbeddingTable` objects on the serial
    backend and :class:`RemotePart` proxies on the process backend;
    ``handles`` are the per-worker table indices engine commands address
    shards by (defaults to positional identity for direct construction in
    tests).
    """

    def __init__(self, kind: str, name: str, parts: List[EmbeddingTable],
                 handles: "List[int] | None" = None) -> None:
        if not parts:
            raise ExecutionError("a sharded table needs at least one shard")
        self.kind = kind
        self.name = name
        self.parts = list(parts)
        self.handles = (list(handles) if handles is not None
                        else list(range(len(self.parts))))

    # -- shape ---------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.parts)

    @property
    def depth(self) -> int:
        return self.parts[0].depth

    @property
    def num_embeddings(self) -> int:
        return sum(part.num_embeddings for part in self.parts)

    @property
    def total_cells(self) -> int:
        return sum(part.total_cells for part in self.parts)

    @property
    def nbytes(self) -> int:
        return sum(part.nbytes for part in self.parts)

    def shard_row_counts(self, level: int | None = None) -> np.ndarray:
        """Rows per shard at ``level`` (default: the last column)."""
        if level is None:
            return np.array(
                [part.num_embeddings for part in self.parts], dtype=np.int64
            )
        return np.array(
            [len(part.columns[level]) for part in self.parts], dtype=np.int64
        )

    def split_rows(self, values: np.ndarray) -> List[np.ndarray]:
        """Split a global per-row array back into per-shard pieces
        (shard-major order)."""
        values = np.asarray(values)
        counts = self.shard_row_counts()
        if len(values) != int(counts.sum()):
            raise ExecutionError(
                f"global row array has {len(values)} entries, table has "
                f"{int(counts.sum())} rows"
            )
        return np.split(values, np.cumsum(counts)[:-1])

    # -- reads ---------------------------------------------------------------
    def column_values(self, level: int) -> np.ndarray:
        """Concatenated ids of one level (shard-major)."""
        return np.concatenate(
            [part.column_values(level) for part in self.parts]
        ) if self.parts else np.empty(0, dtype=np.int64)

    def column_parents(self, level: int) -> np.ndarray:
        """Concatenated parent pointers of one level, rebased to index the
        concatenated previous column."""
        pieces = []
        offset = 0
        for part in self.parts:
            parents = part.column_parents(level)
            if level > 0:
                pieces.append(np.where(parents >= 0, parents + offset, parents))
                offset += len(part.columns[level - 1])
            else:
                pieces.append(parents)
        return (np.concatenate(pieces)
                if pieces else np.empty(0, dtype=np.int64))

    def materialize(self, rows: np.ndarray | None = None) -> np.ndarray:
        """Full embeddings as an ``(n, depth)`` matrix (shard-major rows)."""
        if rows is not None:
            raise ExecutionError(
                "row-subset materialize is not supported on sharded tables"
            )
        mats = [part.materialize() for part in self.parts]
        mats = [m for m in mats if m.size]
        if not mats:
            return np.empty((0, self.depth), dtype=np.int64)
        return np.concatenate(mats, axis=0)

    # -- seeding -------------------------------------------------------------
    def seed(self, values: np.ndarray) -> None:
        """Driver-supplied explicit seed, partitioned by unit ownership.

        Rows land in shard-major order (a stable partition of ``values``),
        so drivers keeping host-side per-row state must re-align it to
        ``column_values(0)`` after seeding (see ``match_pattern_binary``).
        """
        owner = getattr(self, "owner", None)
        if owner is None:
            raise ExecutionError(
                "sharded tables can only be seeded through their engine"
            )
        owner._seed_explicit(self, values)

    # -- lifecycle -----------------------------------------------------------
    def release(self) -> None:
        for part in self.parts:
            part.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = ",".join(str(part.num_embeddings) for part in self.parts)
        return f"ShardedTable({self.name!r}, {self.kind}, rows=[{sizes}])"
