"""Shard execution backends: where the per-shard engines actually live.

``ShardedGamma`` never touches a shard engine directly any more — it
issues named plain-data commands through a :class:`ShardExecutor`:

* :class:`SerialExecutor` (default) keeps one :class:`ShardWorker` per
  shard in-process and dispatches inline, preserving the original
  sequential semantics bit-for-bit (live telemetry spans, direct fault
  propagation, ``engine.shards`` back-compat).
* :class:`ProcessExecutor` forks one worker process per shard and drives
  them over ``multiprocessing`` pipes at BSP-superstep granularity:
  every fan-out sends all N commands before collecting any reply, so the
  per-shard NumPy work genuinely overlaps on multicore hosts.  The graph
  ships once via :mod:`repro.shard.shm`; every reply piggybacks the
  worker's simulated-clock total so barrier targets cost zero extra round
  trips.

Executor objects are picklable as *inert configuration* (the fork-state
checker audits this): live processes, pipes and engines never survive
``__getstate__`` — a copy starts cold on the other side.

Worker death is first-class: a broken pipe mid-command raises
:class:`~repro.errors.WorkerCrashed` naming the shard, after which the
executor refuses further commands (recovery is a fresh engine resuming
from the per-shard checkpoints).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..errors import ExecutionError, WorkerCrashed
from . import shm
from .worker import ShardWorker, dispatch, serve, submit

__all__ = [
    "EXECUTORS",
    "PROCESS_EXECUTOR",
    "SERIAL_EXECUTOR",
    "EXECUTOR_ENV_VAR",
    "SERVE_MIN_CORES",
    "START_METHOD_ENV_VAR",
    "ProcessExecutor",
    "SerialExecutor",
    "ShardExecutor",
    "default_executor",
    "make_executor",
    "serve_default_executor",
]

SERIAL_EXECUTOR = "serial"
PROCESS_EXECUTOR = "process"
EXECUTORS = (SERIAL_EXECUTOR, PROCESS_EXECUTOR)

#: Tests and CI legs select a backend without threading a flag through
#: every call site (explicit constructor arg still wins).
EXECUTOR_ENV_VAR = "REPRO_SHARD_EXECUTOR"
#: Override the multiprocessing start method (fork where available; spawn
#: costs ~1s of interpreter boot per worker but works everywhere).
START_METHOD_ENV_VAR = "REPRO_SHARD_START_METHOD"


def default_executor() -> str:
    name = os.environ.get(EXECUTOR_ENV_VAR, "").strip()
    return name if name else SERIAL_EXECUTOR


#: The serve scheduler defaults to the process backend on hosts with at
#: least this many cores (below it, fork+IPC overhead eats the overlap).
SERVE_MIN_CORES = 4


def serve_default_executor(cpu_count: "int | None" = None) -> str:
    """Backend the serve scheduler uses when a query does not pick one.

    ``REPRO_SHARD_EXECUTOR`` still wins (CI legs and tests pin backends
    through it); otherwise hosts with ``>= SERVE_MIN_CORES`` cores get the
    process backend, everything smaller stays serial.  ``cpu_count``
    overrides :func:`os.cpu_count` for deterministic unit tests.
    """
    name = os.environ.get(EXECUTOR_ENV_VAR, "").strip()
    if name:
        return name
    cores = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    return PROCESS_EXECUTOR if cores >= SERVE_MIN_CORES else SERIAL_EXECUTOR


def default_start_method() -> str:
    override = os.environ.get(START_METHOD_ENV_VAR, "").strip()
    if override:
        return override
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class ShardExecutor:
    """Backend interface ``ShardedGamma`` drives commands through."""

    name = "?"
    #: True when shards run in separate processes (drives telemetry
    #: grafting, disables ``engine.shards``, etc.).
    parallel = False

    def start(self, *, graph, config, num_shards: int, policy: str,
              interconnect, telemetry: bool = False) -> None:
        raise NotImplementedError

    def fanout(self, op: str, args_list: Sequence[dict],
               span_for: "Optional[Callable[[int], Any]]" = None,
               on_shard: "Optional[Callable[[int], None]]" = None) -> list:
        """Run one command on every shard (shard-order results)."""
        raise NotImplementedError

    def call(self, shard: int, op: str, args: "dict | None" = None):
        """Run one command on a single shard."""
        raise NotImplementedError

    def clock_totals(self) -> List[float]:
        """Current simulated-clock total per shard (no extra round trip)."""
        raise NotImplementedError

    def table_parts(self, handles: Sequence[int]) -> list:
        """Driver-facing per-shard table views for fresh table handles."""
        raise NotImplementedError

    def shutdown(self) -> None:
        raise NotImplementedError

    def reset(self, *, graph, config, num_shards: int, policy: str,
              interconnect, telemetry: bool = False) -> bool:
        """Try to warm-reuse a live pool for a new run.

        Returns ``True`` when the pool was reset in place (caller skips the
        cold start).  The base implementation has no pool to amortize.
        """
        return False

    def terminate(self) -> None:
        """Tear down unconditionally, even for a reusable pool."""
        self.shutdown()

    @property
    def pids(self) -> "List[int] | None":
        """Worker process ids (process backend only)."""
        return None


class SerialExecutor(ShardExecutor):
    """In-process backend: original sequential semantics, shared handlers."""

    name = SERIAL_EXECUTOR
    parallel = False

    def __init__(self) -> None:
        self.workers: List[ShardWorker] = []
        self.last_faulted: "int | None" = None

    def start(self, *, graph, config, num_shards: int, policy: str,
              interconnect, telemetry: bool = False) -> None:
        # ``telemetry`` is ignored: in-process workers share the
        # coordinator's installed collector (shard 0's platform adopts it
        # at construction, exactly as before the executor split).
        self.workers = [
            ShardWorker(index, graph, config, num_shards=num_shards,
                        policy=policy, interconnect=interconnect)
            for index in range(num_shards)
        ]

    def fanout(self, op, args_list, span_for=None, on_shard=None) -> list:
        results = []
        for index, args in enumerate(args_list):
            if on_shard is not None:
                on_shard(index)
            context = span_for(index) if span_for is not None else None
            request = {"op": op, "args": args}
            if context is not None:
                with context:
                    results.append(dispatch(self.workers[index], request))
            else:
                results.append(dispatch(self.workers[index], request))
        return results

    def call(self, shard: int, op: str, args=None):
        return dispatch(self.workers[shard], {"op": op, "args": args or {}})

    def clock_totals(self) -> List[float]:
        return [worker.clock_total for worker in self.workers]

    def table_parts(self, handles) -> list:
        # Real EmbeddingTables: serial drivers (and the N=1 bit-parity
        # tests) see exactly the objects the shard engines mutate.
        return [self.workers[index].tables[handle]
                for index, handle in enumerate(handles)]

    def shutdown(self) -> None:
        for worker in self.workers:
            worker.engine.close()
        self.workers = []

    # Fork-state contract: a pickled executor is configuration, never live
    # engines — a copy starts cold.
    def __getstate__(self) -> dict:
        return {}

    def __setstate__(self, state: dict) -> None:
        self.__init__()


class ProcessExecutor(ShardExecutor):
    """One worker process per shard, driven over pipes in BSP supersteps."""

    name = PROCESS_EXECUTOR
    parallel = True

    def __init__(self, start_method: "str | None" = None,
                 reusable: bool = False) -> None:
        self.start_method = start_method or default_start_method()
        #: Reusable pools survive ``shutdown()`` (``terminate()`` tears
        #: down for real): the serve scheduler runs many short queries and
        #: amortizes fork+shm startup by resetting workers between them.
        self.reusable = bool(reusable)
        self.pool_reuses = 0
        self._procs: list = []
        self._conns: list = []
        self._clocks: List[float] = []
        self._graph_meta: "Dict[str, Any] | None" = None
        self._started: "Dict[str, Any] | None" = None
        self.last_faulted: "int | None" = None
        self._broken = False
        self._closed = False

    def start(self, *, graph, config, num_shards: int, policy: str,
              interconnect, telemetry: bool = False) -> None:
        if self._procs and self.reset(
            graph=graph, config=config, num_shards=num_shards,
            policy=policy, interconnect=interconnect, telemetry=telemetry,
        ):
            return
        self._broken = False
        self._closed = False
        self.last_faulted = None
        context = multiprocessing.get_context(self.start_method)
        self._graph_meta = shm.publish_graph(graph)
        try:
            for index in range(num_shards):
                bootstrap = {
                    "index": index,
                    "graph": self._graph_meta,
                    "config": config,
                    "num_shards": num_shards,
                    "policy": policy,
                    "interconnect": interconnect,
                    "telemetry": telemetry,
                }
                parent_conn, child_conn = context.Pipe(duplex=True)
                process = context.Process(
                    target=serve, args=(child_conn, bootstrap),
                    daemon=True, name=f"gamma-shard-{index}",
                )
                process.start()
                # Drop the coordinator's copy of the child end *before*
                # forking the next worker: EOF-based crash detection needs
                # exactly one live writer per child end.
                child_conn.close()
                self._procs.append(process)
                self._conns.append(parent_conn)
            self._clocks = [0.0] * num_shards
            for index in range(num_shards):
                self._recv(index)  # build ack (engine construction charge)
            self._started = {"graph": graph, "num_shards": num_shards}
        except Exception:
            self.terminate()
            raise

    # -- wire protocol -------------------------------------------------------
    def _ensure_live(self) -> None:
        if self._closed or self._broken:
            raise ExecutionError(
                "process executor is no longer usable (a worker crashed or "
                "the engine was closed); resume from checkpoints with a "
                "fresh ShardedGamma"
            )

    def _crashed(self, index: int) -> WorkerCrashed:
        self._broken = True
        self.last_faulted = index
        process = self._procs[index]
        process.join(timeout=5.0)
        return WorkerCrashed(
            f"shard {index} worker process died mid-command "
            f"(exit code {process.exitcode})",
            shard=index, exit_code=process.exitcode,
        )

    def _submit(self, index: int, request: dict) -> None:
        try:
            submit(self._conns[index], request)
        except OSError:
            # A send to a dead worker can fail before any recv does (e.g.
            # a real SIGKILL between supersteps); same crash, same surface.
            raise self._crashed(index) from None

    def _recv(self, index: int) -> dict:
        try:
            reply = self._conns[index].recv()
        except (EOFError, OSError):
            raise self._crashed(index) from None
        self._clocks[index] = float(reply.get("clock", self._clocks[index]))
        return reply

    def _unwrap(self, replies: List[dict]) -> list:
        for index, reply in enumerate(replies):
            if not reply["ok"]:
                self.last_faulted = index
                raise pickle.loads(reply["error"])
        return [reply["value"] for reply in replies]

    def fanout(self, op, args_list, span_for=None, on_shard=None) -> list:
        # span_for/on_shard are serial-only affordances: worker-side spans
        # are grafted at finalize, and fault attribution rides the replies.
        self._ensure_live()
        self.last_faulted = None
        for index, args in enumerate(args_list):
            self._submit(index, {"op": op, "args": args})
        replies = [self._recv(index) for index in range(len(args_list))]
        return self._unwrap(replies)

    def call(self, shard: int, op: str, args=None):
        self._ensure_live()
        self._submit(shard, {"op": op, "args": args or {}})
        reply = self._recv(shard)
        if not reply["ok"]:
            self.last_faulted = shard
            raise pickle.loads(reply["error"])
        return reply["value"]

    def clock_totals(self) -> List[float]:
        return list(self._clocks)

    def table_parts(self, handles) -> list:
        from .table import RemotePart
        return [RemotePart(self, index, handle)
                for index, handle in enumerate(handles)]

    @property
    def pids(self) -> List[int]:
        return [process.pid for process in self._procs]

    def reset(self, *, graph, config, num_shards: int, policy: str,
              interconnect, telemetry: bool = False) -> bool:
        """Warm-reuse the live pool: reset every worker for a new run.

        Succeeds only when the pool is healthy and shaped for the request
        (same worker count, same graph object — :mod:`repro.graph.datasets`
        caches loads, so object identity is the cheap and sound test for
        "the shm segments already hold this graph").  On any mismatch the
        pool is torn down and ``False`` tells the caller to start cold.
        """
        if not self._procs or self._broken or self._closed:
            return False
        started = self._started
        if (started is None or started["num_shards"] != num_shards
                or started["graph"] is not graph):
            self._teardown()
            return False
        self.last_faulted = None
        args = {"config": config, "policy": policy,
                "interconnect": interconnect, "telemetry": telemetry}
        for index in range(num_shards):
            self._submit(index, {"op": "reset", "args": args})
        replies = [self._recv(index) for index in range(num_shards)]
        self._unwrap(replies)
        self.pool_reuses += 1
        return True

    def shutdown(self) -> None:
        if self.reusable and self._procs and not self._broken:
            # The pool outlives this engine; ``terminate()`` ends it.
            return
        self._teardown()

    def terminate(self) -> None:
        self._teardown()

    def _teardown(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._started = None
        for conn in self._conns:
            try:
                conn.send(None)  # orderly-exit sentinel
            except (OSError, ValueError):
                pass
        for process in self._procs:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join(timeout=5.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already torn down
                pass
        self._procs = []
        self._conns = []
        if self._graph_meta is not None:
            shm.release_graph(self._graph_meta)
            self._graph_meta = None

    def __getstate__(self) -> dict:
        return {"start_method": self.start_method,
                "reusable": self.reusable}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state.get("start_method"),
                      reusable=state.get("reusable", False))


def make_executor(name: "str | ShardExecutor | None") -> ShardExecutor:
    """Resolve an executor: object passthrough, name, or env default."""
    if isinstance(name, ShardExecutor):
        return name
    resolved = name if name else default_executor()
    if resolved == SERIAL_EXECUTOR:
        return SerialExecutor()
    if resolved == PROCESS_EXECUTOR:
        return ProcessExecutor()
    raise ExecutionError(
        f"unknown shard executor {resolved!r}; expected one of {EXECUTORS}"
    )
