"""GAMMA — a graph pattern mining framework for large graphs on (simulated)
GPU.  Reproduction of Hu, Zou and Özsu, ICDE 2023.

Public API tour:

* :class:`repro.Gamma` / :class:`repro.GammaConfig` — the framework
  (paper Fig. 3's data structures and interfaces);
* :mod:`repro.graph` — CSR graphs, generators, dataset stand-ins, query
  patterns and an exact oracle;
* :mod:`repro.algorithms` — subgraph matching, FPM, k-clique, triangles,
  motifs, each runnable on GAMMA or any baseline;
* :mod:`repro.baselines` — Pangolin, Peregrine, GSI, GraphMiner;
* :mod:`repro.gpusim` — the simulated CPU–GPU platform;
* :mod:`repro.obs` — telemetry: spans, metrics, trace export, manifests;
* :mod:`repro.bench` — the harness regenerating the paper's evaluation.
"""

from . import algorithms, baselines, bench, core, errors, graph, gpusim, obs
from .core import Gamma, GammaConfig, MinSupport, PatternTable
from .errors import (
    DeviceOutOfMemory,
    ExecutionError,
    GammaError,
    HostOutOfMemory,
    InvalidGraphError,
    InvalidPatternError,
)
from .graph import CSRGraph, Pattern, from_edge_list, from_edges

__version__ = "1.0.0"

__all__ = [
    "algorithms",
    "baselines",
    "bench",
    "core",
    "errors",
    "graph",
    "gpusim",
    "obs",
    "Gamma",
    "GammaConfig",
    "MinSupport",
    "PatternTable",
    "DeviceOutOfMemory",
    "ExecutionError",
    "GammaError",
    "HostOutOfMemory",
    "InvalidGraphError",
    "InvalidPatternError",
    "CSRGraph",
    "Pattern",
    "from_edge_list",
    "from_edges",
    "__version__",
]
