"""Graph upscaling (paper §VI-A, ref [33]).

The paper scales com-lj 8x and soc-Live 5x to stress scalability.  We use
the same replicate-and-rewire scheme the upscaling literature describes:
the vertex set is replicated ``factor`` times; each edge copy keeps its
endpoints' intra-copy offsets, but with probability ``crossover`` one
endpoint is redirected to a uniformly random *other* copy.  Degrees are
preserved exactly and the degree distribution of the original is inherited,
while crossover edges keep the copies from being disconnected clones.
"""

from __future__ import annotations

import numpy as np

from .builders import from_edges
from .csr import CSRGraph


def upscale(
    graph: CSRGraph,
    factor: int,
    crossover: float = 0.3,
    seed: int = 0,
    name: str | None = None,
) -> CSRGraph:
    """Return a ``factor``-times larger graph with the same degree structure.

    ``crossover`` is the probability that an edge copy becomes a cross-copy
    edge instead of staying inside its replica.
    """
    if factor < 1:
        raise ValueError("factor must be >= 1")
    if not 0.0 <= crossover <= 1.0:
        raise ValueError("crossover must be in [0, 1]")
    if factor == 1:
        return graph
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    m = graph.num_edges

    # Tile the edge list once per copy.
    copies = np.repeat(np.arange(factor, dtype=np.int64), m)
    src = np.tile(graph.edge_src, factor) + copies * n
    dst = np.tile(graph.edge_dst, factor) + copies * n

    # Rewire a fraction of the dst endpoints into a random different copy.
    rewire = rng.random(len(src)) < crossover
    if rewire.any():
        shift = rng.integers(1, factor, size=int(rewire.sum()), dtype=np.int64)
        new_copy = (copies[rewire] + shift) % factor
        local = dst[rewire] - copies[rewire] * n
        dst[rewire] = local + new_copy * n

    labels = np.tile(graph.labels, factor)
    return from_edges(
        src,
        dst,
        num_vertices=n * factor,
        labels=labels,
        name=name or f"{graph.name}*{factor}",
    )
