"""Query patterns (the paper's ``query_graph`` data structure).

A :class:`Pattern` is a small connected, optionally vertex-labeled graph to
be mined.  It also knows its WOJ matching order (the ``delta_v`` of the
paper's Algorithm 1), its edge-at-a-time order for binary joins, and its
automorphism count (needed to convert embedding counts to unique-subgraph
counts).

The module ships the standard GPM patterns plus the three labeled subgraph
matching queries used for Fig. 11 (the paper's Fig. 13 shows three small
labeled queries; we use a labeled triangle, a labeled 4-cycle, and a
labeled diamond — the canonical shapes in the SM literature the paper
builds on).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

import numpy as np

from ..errors import InvalidPatternError


class Pattern:
    """A small connected query graph with optional vertex labels."""

    def __init__(
        self,
        edges: Iterable[tuple[int, int]],
        labels: Sequence[int] | None = None,
        name: str = "pattern",
    ) -> None:
        edge_set = set()
        for u, v in edges:
            if u == v:
                raise InvalidPatternError("patterns must not contain self loops")
            edge_set.add((min(u, v), max(u, v)))
        if not edge_set:
            raise InvalidPatternError("patterns must contain at least one edge")
        self.edges = tuple(sorted(edge_set))
        self.num_vertices = max(max(e) for e in self.edges) + 1
        #: Labeled patterns constrain data-vertex labels; unlabeled patterns
        #: match any label (structure-only mining, e.g. kCL and triangles).
        self.labeled = labels is not None
        if labels is None:
            labels = [0] * self.num_vertices
        self.labels = tuple(int(x) for x in labels)
        if len(self.labels) != self.num_vertices:
            raise InvalidPatternError(
                f"{len(self.labels)} labels for {self.num_vertices} vertices"
            )
        self.name = name
        self._adj: list[set[int]] = [set() for __ in range(self.num_vertices)]
        for u, v in self.edges:
            self._adj[u].add(v)
            self._adj[v].add(u)
        if not self._connected():
            raise InvalidPatternError(f"pattern {name!r} must be connected")

    # -- structure ------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def neighbors(self, v: int) -> tuple[int, ...]:
        return tuple(sorted(self._adj[v]))

    def degree(self, v: int) -> int:
        return len(self._adj[v])

    def label(self, v: int) -> int:
        return self.labels[v]

    def has_edge(self, u: int, v: int) -> bool:
        return v in self._adj[u]

    def _connected(self) -> bool:
        seen = {0}
        frontier = [0]
        while frontier:
            v = frontier.pop()
            for w in self._adj[v]:
                if w not in seen:
                    seen.add(w)
                    frontier.append(w)
        return len(seen) == self.num_vertices

    # -- orders ------------------------------------------------------------------
    def matching_order(self) -> list[int]:
        """WOJ vertex order: start at the highest-degree vertex, then
        greedily pick the unmatched vertex with the most already-matched
        neighbors (ties: higher degree, then lower id).  Guarantees every
        vertex after the first connects to the prefix, so every extension
        can prune by adjacency."""
        order = [max(range(self.num_vertices),
                     key=lambda v: (self.degree(v), -v))]
        remaining = set(range(self.num_vertices)) - set(order)
        while remaining:
            placed = set(order)

            def score(v: int) -> tuple[int, int, int]:
                return (len(self._adj[v] & placed), self.degree(v), -v)

            best = max(remaining, key=score)
            if not self._adj[best] & placed:  # pragma: no cover - connectivity
                raise InvalidPatternError("disconnected matching order")
            order.append(best)
            remaining.discard(best)
        return order

    def edge_order(self) -> list[tuple[int, int]]:
        """Edge-at-a-time order for binary joins / FPM-style growth: each
        edge after the first shares a vertex with the union of its
        predecessors."""
        first = self.edges[0]
        order = [first]
        covered = set(first)
        remaining = set(self.edges) - {first}
        while remaining:
            nxt = min(
                (e for e in remaining if covered & set(e)),
                default=None,
            )
            if nxt is None:  # pragma: no cover - connectivity guarantees
                raise InvalidPatternError("disconnected edge order")
            order.append(nxt)
            covered |= set(nxt)
            remaining.discard(nxt)
        return order

    # -- symmetry --------------------------------------------------------------
    def automorphisms(self) -> list[tuple[int, ...]]:
        """All label- and adjacency-preserving vertex permutations."""
        autos = []
        verts = range(self.num_vertices)
        for perm in itertools.permutations(verts):
            if any(self.labels[v] != self.labels[perm[v]] for v in verts):
                continue
            mapped = {(min(perm[u], perm[v]), max(perm[u], perm[v]))
                      for u, v in self.edges}
            if mapped == set(self.edges):
                autos.append(perm)
        return autos

    def automorphism_count(self) -> int:
        """Number of label- and adjacency-preserving vertex permutations."""
        return len(self.automorphisms())

    def symmetry_breaking_constraints(self) -> list[tuple[int, int]]:
        """Ordering restrictions ``(a, b)`` meaning "the data vertex matched
        to ``a`` must have a smaller id than the one matched to ``b``".

        The classic Grochow–Kellis construction: repeatedly pick the
        smallest pattern vertex moved by some remaining automorphism,
        constrain it below each of its images, and keep only the
        automorphisms fixing it.  Enforcing the constraints makes every
        subgraph appear exactly once (embeddings / automorphisms)."""
        constraints: list[tuple[int, int]] = []
        group = self.automorphisms()
        while len(group) > 1:
            moved = min(
                v for v in range(self.num_vertices)
                if any(perm[v] != v for perm in group)
            )
            images = {perm[moved] for perm in group} - {moved}
            constraints.extend((moved, w) for w in sorted(images))
            group = [perm for perm in group if perm[moved] == moved]
        return constraints

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(src, dst, labels)`` NumPy views for the engines."""
        src = np.array([u for u, __ in self.edges], dtype=np.int64)
        dst = np.array([v for __, v in self.edges], dtype=np.int64)
        return src, dst, np.array(self.labels, dtype=np.int64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Pattern({self.name!r}, V={self.num_vertices}, E={self.edges})"


# -- the standard unlabeled menagerie ------------------------------------------

def triangle() -> Pattern:
    return Pattern([(0, 1), (1, 2), (0, 2)], name="triangle")


def path(length: int) -> Pattern:
    """Simple path with ``length`` edges."""
    if length < 1:
        raise InvalidPatternError("path length must be >= 1")
    return Pattern([(i, i + 1) for i in range(length)], name=f"path-{length}")


def cycle(k: int) -> Pattern:
    if k < 3:
        raise InvalidPatternError("cycles need at least 3 vertices")
    return Pattern(
        [(i, (i + 1) % k) for i in range(k)], name=f"cycle-{k}"
    )


def clique(k: int) -> Pattern:
    if k < 2:
        raise InvalidPatternError("cliques need at least 2 vertices")
    return Pattern(
        [(i, j) for i in range(k) for j in range(i + 1, k)], name=f"{k}-clique"
    )


def diamond() -> Pattern:
    """4-clique minus one edge."""
    return Pattern([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)], name="diamond")


def tailed_triangle() -> Pattern:
    return Pattern([(0, 1), (1, 2), (0, 2), (2, 3)], name="tailed-triangle")


def house() -> Pattern:
    """5-vertex house: a square with a triangle roof."""
    return Pattern(
        [(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (1, 4)], name="house"
    )


# -- the labeled SM queries of Fig. 11 / Fig. 13 ---------------------------------

def sm_query(which: int) -> Pattern:
    """The labeled subgraph matching queries: q1–q3 are the Fig. 11 set;
    q4–q6 extend the suite with selective-label queries whose rare label
    sits on a *low-degree* vertex, so the label-blind hand order (start at
    max degree) is far from optimal — the workloads the query planner's
    label-aware costing is benchmarked on."""
    if which == 1:
        return Pattern(
            [(0, 1), (1, 2), (0, 2)], labels=[0, 1, 2], name="q1-labeled-triangle"
        )
    if which == 2:
        return Pattern(
            [(0, 1), (1, 2), (2, 3), (3, 0)], labels=[0, 1, 0, 2],
            name="q2-labeled-square",
        )
    if which == 3:
        return Pattern(
            [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)], labels=[0, 1, 1, 2],
            name="q3-labeled-diamond",
        )
    if which == 4:
        return Pattern(
            [(0, 1), (1, 2), (2, 3)], labels=[0, 0, 1, 7],
            name="q4-labeled-path",
        )
    if which == 5:
        return Pattern(
            [(0, 1), (1, 2), (0, 2), (2, 3)], labels=[0, 0, 1, 7],
            name="q5-labeled-tailed-triangle",
        )
    if which == 6:
        return Pattern(
            [(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (1, 4)],
            labels=[0, 1, 0, 2, 7],
            name="q6-labeled-house",
        )
    raise InvalidPatternError(f"SM queries are q1..q6, got q{which}")


SM_QUERIES = (1, 2, 3, 4, 5, 6)
