"""Graph I/O: SNAP-style edge-list text files and a compact binary format.

The paper's datasets ship as SNAP edge lists; the binary ``.npz`` format
caches built CSR graphs so benchmark reruns skip normalization.
"""

from __future__ import annotations

import os

import numpy as np

from ..errors import InvalidGraphError
from .builders import from_edges
from .csr import CSRGraph


def load_edge_list(
    path: str | os.PathLike,
    comments: str = "#",
    labels: np.ndarray | None = None,
    name: str | None = None,
) -> CSRGraph:
    """Load a whitespace-separated edge-list text file (SNAP format).

    Lines starting with ``comments`` are skipped; each remaining line must
    hold two integer vertex ids.
    """
    src: list[int] = []
    dst: list[int] = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(comments):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise InvalidGraphError(f"{path}:{lineno}: expected 'u v', got {line!r}")
            try:
                src.append(int(parts[0]))
                dst.append(int(parts[1]))
            except ValueError as exc:
                raise InvalidGraphError(
                    f"{path}:{lineno}: non-integer vertex id in {line!r}"
                ) from exc
    return from_edges(
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
        labels=labels,
        name=name or os.path.splitext(os.path.basename(str(path)))[0],
    )


def save_edge_list(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write the graph as a SNAP-style edge list (one undirected edge per
    line, smaller endpoint first)."""
    with open(path, "w") as handle:
        handle.write(f"# {graph.name}: {graph.num_vertices} vertices, "
                     f"{graph.num_edges} edges\n")
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")


def save_labels(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write vertex labels as a sidecar file: one ``vertex label`` per line."""
    with open(path, "w") as handle:
        handle.write(f"# labels for {graph.name}\n")
        for v, label in enumerate(graph.labels.tolist()):
            handle.write(f"{v} {label}\n")


def load_labels(
    path: str | os.PathLike, num_vertices: int, comments: str = "#"
) -> np.ndarray:
    """Read a label sidecar (unlisted vertices default to label 0)."""
    labels = np.zeros(num_vertices, dtype=np.int64)
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(comments):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise InvalidGraphError(
                    f"{path}:{lineno}: expected 'vertex label', got {line!r}"
                )
            try:
                vertex, label = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise InvalidGraphError(
                    f"{path}:{lineno}: non-integer field in {line!r}"
                ) from exc
            if not 0 <= vertex < num_vertices:
                raise InvalidGraphError(
                    f"{path}:{lineno}: vertex {vertex} out of range"
                )
            labels[vertex] = label
    return labels


def load_labeled_edge_list(
    edges_path: str | os.PathLike,
    labels_path: str | os.PathLike | None = None,
    name: str | None = None,
) -> CSRGraph:
    """Load a SNAP edge list plus an optional label sidecar.

    This is the hook for running the reproduction on *real* datasets: drop
    the SNAP file for e.g. cit-Patents next to an optional ``.labels``
    file and pass the graph to any engine."""
    graph = load_edge_list(edges_path, name=name)
    if labels_path is None:
        return graph
    labels = load_labels(labels_path, graph.num_vertices)
    from .builders import relabel_vertices

    return relabel_vertices(graph, labels)


def save_binary(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Cache a built graph as ``.npz`` (CSR arrays + labels)."""
    np.savez_compressed(
        path,
        offsets=graph.offsets,
        neighbors=graph.neighbors,
        edge_ids=graph.edge_ids,
        edge_src=graph.edge_src,
        edge_dst=graph.edge_dst,
        labels=graph.labels,
        name=np.array(graph.name),
    )


def load_binary(path: str | os.PathLike) -> CSRGraph:
    """Load a graph cached with :func:`save_binary`."""
    with np.load(path, allow_pickle=False) as data:
        return CSRGraph(
            offsets=data["offsets"],
            neighbors=data["neighbors"],
            edge_ids=data["edge_ids"],
            edge_src=data["edge_src"],
            edge_dst=data["edge_dst"],
            labels=data["labels"],
            name=str(data["name"]),
        )
