"""Compressed Sparse Row graph representation.

GAMMA stores the data graph as CSR adjacency lists plus vertex labels — "no
auxiliary data structures other than structural information and labels"
(paper §IV).  Graphs are undirected: every edge appears in both endpoint
adjacency lists, and the two slots share one *edge id* so edge-oriented
embedding tables (e-ET) can refer to edges compactly.

Adjacency lists are sorted ascending, enabling binary-search adjacency
checks and linear-time sorted intersections — the operations GAMMA's
complexity analysis (§V-C) counts.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .. import perf
from ..errors import InvalidGraphError

#: Cap on the lazily-built adjacency bitset (``V**2`` bits).  512 MB covers
#: every dataset stand-in with head-room while bounding the footprint on
#: user-supplied graphs; larger graphs keep the sorted-key binary search.
_BITSET_MAX_BYTES = 512 * 1024 * 1024

#: Vertex-id ceiling for the packed (u << 32 | v) edge keys: both halves
#: must fit in 32 bits for the key to fit in one int64.
_PACK_VERTEX_LIMIT = 1 << 31


class CSRGraph:
    """An undirected, vertex-labeled graph in CSR form.

    Parameters are trusted to be consistent; use
    :func:`repro.graph.builders.from_edges` to build one safely from raw
    edge lists.
    """

    def __init__(
        self,
        offsets: np.ndarray,
        neighbors: np.ndarray,
        edge_ids: np.ndarray,
        edge_src: np.ndarray,
        edge_dst: np.ndarray,
        labels: np.ndarray | None = None,
        name: str = "graph",
    ) -> None:
        self.offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        self.neighbors = np.ascontiguousarray(neighbors, dtype=np.int64)
        self.edge_ids = np.ascontiguousarray(edge_ids, dtype=np.int64)
        self.edge_src = np.ascontiguousarray(edge_src, dtype=np.int64)
        self.edge_dst = np.ascontiguousarray(edge_dst, dtype=np.int64)
        self.name = name
        n = len(self.offsets) - 1
        if n < 0:
            raise InvalidGraphError("offsets must have at least one entry")
        if n >= _PACK_VERTEX_LIMIT:
            raise InvalidGraphError(
                f"{n} vertices exceed the packed edge-key limit "
                f"({_PACK_VERTEX_LIMIT - 1}); edge keys pack (u, v) into "
                "one int64"
            )
        if labels is None:
            labels = np.zeros(n, dtype=np.int64)
        self.labels = np.ascontiguousarray(labels, dtype=np.int64)
        if len(self.labels) != n:
            raise InvalidGraphError(
                f"labels length {len(self.labels)} != num vertices {n}"
            )
        if len(self.neighbors) != len(self.edge_ids):
            raise InvalidGraphError("neighbors and edge_ids must align")
        if self.offsets[0] != 0 or self.offsets[-1] != len(self.neighbors):
            raise InvalidGraphError("offsets must span the adjacency array")
        if np.any(np.diff(self.offsets) < 0):
            raise InvalidGraphError("offsets must be non-decreasing")
        # Sorted-edge keys for vectorized adjacency checks.
        self._edge_keys = np.sort(
            self._pack_pairs(
                np.concatenate([self.edge_src, self.edge_dst]),
                np.concatenate([self.edge_dst, self.edge_src]),
            )
        )
        self._bitset: np.ndarray | None = None

    # -- basic shape ----------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.offsets) - 1

    @property
    def num_edges(self) -> int:
        """Undirected edge count (each edge counted once)."""
        return len(self.edge_src)

    @property
    def degrees(self) -> np.ndarray:
        return np.diff(self.offsets)

    @property
    def max_degree(self) -> int:
        degs = self.degrees
        return int(degs.max()) if len(degs) else 0

    @property
    def num_labels(self) -> int:
        return int(self.labels.max()) + 1 if len(self.labels) else 0

    def degree(self, v: int) -> int:
        return int(self.offsets[v + 1] - self.offsets[v])

    def neighbors_of(self, v: int) -> np.ndarray:
        """Sorted neighbor list of ``v`` (host-side view, not charged)."""
        return self.neighbors[self.offsets[v]: self.offsets[v + 1]]

    def incident_edges_of(self, v: int) -> np.ndarray:
        """Edge ids incident to ``v`` in adjacency order."""
        return self.edge_ids[self.offsets[v]: self.offsets[v + 1]]

    def label_of(self, v: int) -> int:
        return int(self.labels[v])

    # -- adjacency queries ------------------------------------------------------
    def _pack_pairs(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        return (np.asarray(u, dtype=np.int64) << 32) | np.asarray(v, dtype=np.int64)  # gammalint: allow[overflow] -- __init__ rejects graphs with >= 2**31 vertices, so both halves fit

    def has_edge(self, u: int, v: int) -> bool:
        return bool(self.has_edges(np.array([u]), np.array([v]))[0])

    def _adjacency_bitset(self) -> np.ndarray | None:
        """Lazily-built ``V x V`` adjacency bitset, or ``None`` when the
        graph is too large (or the reference pipeline is selected).

        Adjacency probing is the inner loop of vertex extension; a packed
        bitset answers each probe with one byte load instead of a
        ``log(2E)`` binary search, and candidate lists are sorted, so
        consecutive probes share cache lines.
        """
        if perf.use_reference():
            return None
        bits = self._bitset
        if bits is None:
            n = self.num_vertices
            if n == 0 or n * n > _BITSET_MAX_BYTES * 8:
                return None
            pos = np.repeat(
                np.arange(n, dtype=np.int64), np.diff(self.offsets)
            ) * n
            pos += self.neighbors
            bits = np.zeros((n * n + 7) // 8, dtype=np.uint8)
            np.bitwise_or.at(
                bits,
                pos >> 3,
                np.left_shift(np.uint8(1), (pos & 7).astype(np.uint8)),
            )
            self._bitset = bits
        return bits

    def has_edges(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Vectorized adjacency test for aligned endpoint arrays."""
        bits = self._adjacency_bitset()
        if bits is not None:
            pos = np.asarray(u, dtype=np.int64) * np.int64(self.num_vertices)  # gammalint: allow[overflow] -- bitset exists only when n*n <= _BITSET_MAX_BYTES*8, far inside int64
            pos += np.asarray(v, dtype=np.int64)
            mask = np.left_shift(np.uint8(1), (pos & 7).astype(np.uint8))
            return (bits[pos >> 3] & mask) != 0
        keys = self._pack_pairs(u, v)
        pos = np.searchsorted(self._edge_keys, keys)
        pos = np.minimum(pos, len(self._edge_keys) - 1)
        if len(self._edge_keys) == 0:
            return np.zeros(len(keys), dtype=bool)
        return self._edge_keys[pos] == keys

    def edge_endpoints(self, edge_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(src, dst)`` endpoint arrays for the given edge ids, with
        ``src < dst`` canonically."""
        edge_ids = np.asarray(edge_ids, dtype=np.int64)
        return self.edge_src[edge_ids], self.edge_dst[edge_ids]

    # -- iteration / conversion --------------------------------------------------
    def edges(self) -> Iterable[tuple[int, int]]:
        """Iterate undirected edges as ``(u, v)`` with ``u < v``."""
        return zip(self.edge_src.tolist(), self.edge_dst.tolist())

    def storage_bytes(self) -> int:
        """Bytes of the CSR payload (structural info + labels), the quantity
        the paper estimates at 10–15 GB per billion edges (§IV)."""
        return (
            self.offsets.nbytes
            + self.neighbors.nbytes
            + self.edge_ids.nbytes
            + self.labels.nbytes
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CSRGraph({self.name!r}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges}, labels={self.num_labels})"
        )
