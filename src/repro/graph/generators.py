"""Synthetic graph generators.

The paper's scalability study (Fig. 15) uses Kronecker graphs [38]; our
dataset stand-ins (Table II) additionally need heavy-tailed social/web-like
graphs and skewed vertex labels.  All generators are seeded and produce the
same graph for the same arguments on every run.
"""

from __future__ import annotations

import numpy as np

from .builders import from_edges
from .csr import CSRGraph


def kronecker(
    scale: int,
    edge_factor: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    name: str | None = None,
    labels: int = 0,
    label_seed: int | None = None,
) -> CSRGraph:
    """R-MAT/Kronecker generator: ``2**scale`` vertices,
    ``edge_factor * 2**scale`` sampled edges (before dedup).

    ``(a, b, c)`` are the Graph500 partition probabilities (d = 1-a-b-c).
    """
    if scale < 0 or edge_factor < 0:
        raise ValueError("scale and edge_factor must be non-negative")
    d = 1.0 - a - b - c
    if d < -1e-9 or min(a, b, c) < 0:
        raise ValueError("partition probabilities must be a distribution")
    rng = np.random.default_rng(seed)
    n = 1 << scale
    m = edge_factor * n
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for level in range(scale):
        r = rng.random(m)
        # Quadrant choice: a -> (0,0), b -> (0,1), c -> (1,0), d -> (1,1).
        right = (r >= a) & (r < a + b)
        down = (r >= a + b) & (r < a + b + c)
        both = r >= a + b + c
        bit = np.int64(1) << level
        src += bit * (down | both)
        dst += bit * (right | both)
    graph_labels = None
    if labels > 0:
        graph_labels = zipf_labels(
            n, labels, seed=seed + 1 if label_seed is None else label_seed
        )
    return from_edges(
        src, dst, num_vertices=n, labels=graph_labels,
        name=name or f"kron-s{scale}-e{edge_factor}",
    )


def erdos_renyi(
    num_vertices: int,
    num_edges: int,
    seed: int = 0,
    name: str | None = None,
    labels: int = 0,
) -> CSRGraph:
    """Uniform random graph with ~``num_edges`` distinct undirected edges."""
    rng = np.random.default_rng(seed)
    # Oversample to survive dedup/self-loop removal.
    m = int(num_edges * 1.3) + 16
    src = rng.integers(0, num_vertices, m, dtype=np.int64)
    dst = rng.integers(0, num_vertices, m, dtype=np.int64)
    graph_labels = zipf_labels(num_vertices, labels, seed + 1) if labels else None
    graph = from_edges(
        src, dst, num_vertices=num_vertices, labels=graph_labels,
        name=name or f"er-{num_vertices}-{num_edges}",
    )
    return _trim_edges(graph, num_edges)


def _trim_edges(graph: CSRGraph, target_edges: int) -> CSRGraph:
    """Drop surplus edges to hit a target count exactly (keeps determinism)."""
    if graph.num_edges <= target_edges:
        return graph
    keep = np.sort(
        np.random.default_rng(0).choice(
            graph.num_edges, size=target_edges, replace=False
        )
    )
    return from_edges(
        graph.edge_src[keep],
        graph.edge_dst[keep],
        num_vertices=graph.num_vertices,
        labels=graph.labels,
        name=graph.name,
    )


def zipf_labels(
    num_vertices: int, num_labels: int, seed: int = 0, skew: float = 1.2
) -> np.ndarray:
    """Skewed vertex labels: label 0 most frequent, Zipf-like tail.

    Real labeled graphs (and the paper's SM workloads) have non-uniform
    label frequencies; a Zipf draw preserves the pruning behaviour labeled
    queries rely on.
    """
    if num_labels <= 0:
        raise ValueError("num_labels must be positive")
    if num_labels == 1:
        return np.zeros(num_vertices, dtype=np.int64)
    rng = np.random.default_rng(seed)
    weights = 1.0 / np.arange(1, num_labels + 1, dtype=np.float64) ** skew
    weights /= weights.sum()
    return rng.choice(num_labels, size=num_vertices, p=weights).astype(np.int64)


def clique(num_vertices: int, labels: np.ndarray | None = None) -> CSRGraph:
    """Complete graph on ``num_vertices`` vertices (test fixture)."""
    idx = np.arange(num_vertices)
    u, v = np.meshgrid(idx, idx, indexing="ij")
    mask = u < v
    return from_edges(
        u[mask], v[mask], num_vertices=num_vertices, labels=labels,
        name=f"K{num_vertices}",
    )


def cycle(num_vertices: int, labels: np.ndarray | None = None) -> CSRGraph:
    """Simple cycle C_n (test fixture)."""
    src = np.arange(num_vertices, dtype=np.int64)
    dst = (src + 1) % num_vertices
    return from_edges(
        src, dst, num_vertices=num_vertices, labels=labels, name=f"C{num_vertices}"
    )


def star(num_leaves: int, labels: np.ndarray | None = None) -> CSRGraph:
    """Star with one hub and ``num_leaves`` leaves (test fixture)."""
    src = np.zeros(num_leaves, dtype=np.int64)
    dst = np.arange(1, num_leaves + 1, dtype=np.int64)
    return from_edges(
        src, dst, num_vertices=num_leaves + 1, labels=labels,
        name=f"star-{num_leaves}",
    )
