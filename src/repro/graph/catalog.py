"""Human-readable pattern catalog.

Aggregation reports patterns as opaque 64-bit canonical codes.  The catalog
inverts that: it pre-registers every connected pattern shape up to a size
bound (optionally crossed with label assignments seen in a graph) and maps
codes back to names like ``triangle[0,1,2]`` — so FPM/motif results read
like results instead of hashes.

The enumeration of unlabeled connected graphs up to 5 vertices / 6 edges is
exact (canonical-code deduplication over all edge subsets), which doubles
as a stress test of the canonical labeling itself.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Sequence

from .canonical import canonical_code_int
from .patterns import Pattern

#: Names for the classic small shapes, keyed by (num_vertices, sorted degree
#: sequence, num_edges).
_SHAPE_NAMES = {
    (2, (1, 1), 1): "edge",
    (3, (1, 1, 2), 2): "wedge",
    (3, (2, 2, 2), 3): "triangle",
    (4, (1, 1, 1, 3), 3): "star-3",
    (4, (1, 1, 2, 2), 3): "path-3",
    (4, (1, 2, 2, 3), 4): "tailed-triangle",
    (4, (2, 2, 2, 2), 4): "square",
    (4, (2, 2, 3, 3), 5): "diamond",
    (4, (3, 3, 3, 3), 6): "4-clique",
    (5, (1, 1, 1, 1, 4), 4): "star-4",
    (5, (1, 1, 1, 2, 3), 4): "fork",
    (5, (1, 1, 2, 2, 2), 4): "path-4",
    (5, (2, 2, 2, 2, 2), 5): "5-cycle",
    (5, (4, 4, 4, 4, 4), 10): "5-clique",
}


def shape_name(edges: Sequence[tuple[int, int]]) -> str:
    """A readable name for an unlabeled shape (falls back to ``gVkE``)."""
    n = max(max(e) for e in edges) + 1
    degree = [0] * n
    for u, v in edges:
        degree[u] += 1
        degree[v] += 1
    key = (n, tuple(sorted(degree)), len(edges))
    return _SHAPE_NAMES.get(key, f"g{n}v{len(edges)}e")


def connected_shapes(max_vertices: int = 5, max_edges: int = 6) -> list[tuple]:
    """All connected unlabeled graphs up to the bounds, one representative
    edge list per isomorphism class."""
    shapes: Dict[int, tuple] = {}
    all_pairs = list(itertools.combinations(range(max_vertices), 2))
    for k in range(1, max_edges + 1):
        for combo in itertools.combinations(all_pairs, k):
            vertices = sorted({v for e in combo for v in e})
            index = {v: i for i, v in enumerate(vertices)}
            edges = tuple(
                (index[u], index[v]) for u, v in combo
            )
            n = len(vertices)
            if not _connected(edges, n):
                continue
            code = canonical_code_int(edges, [0] * n)
            shapes.setdefault(code, edges)
    return list(shapes.values())


def _connected(edges: Iterable[tuple[int, int]], n: int) -> bool:
    adj: list[set] = [set() for __ in range(n)]
    for u, v in edges:
        adj[u].add(v)
        adj[v].add(u)
    seen = {0}
    stack = [0]
    while stack:
        v = stack.pop()
        for w in adj[v]:
            if w not in seen:
                seen.add(w)
                stack.append(w)
    return len(seen) == n


class PatternCatalog:
    """Registry mapping canonical codes back to readable descriptions and
    :class:`~repro.graph.patterns.Pattern` objects."""

    def __init__(self) -> None:
        self._names: Dict[int, str] = {}
        self._patterns: Dict[int, tuple] = {}

    def register(self, pattern: Pattern, name: str | None = None) -> int:
        """Register one pattern; returns its canonical code."""
        code = canonical_code_int(list(pattern.edges), list(pattern.labels))
        self._names[code] = name or pattern.name
        self._patterns[code] = (tuple(pattern.edges), tuple(pattern.labels))
        return code

    def register_shapes(
        self,
        labels: Sequence[int] = (0,),
        max_vertices: int = 5,
        max_edges: int = 4,
    ) -> int:
        """Register every connected shape up to the bounds, crossed with all
        label assignments drawn from ``labels``.  Returns the number of
        catalog entries added.

        The cross product grows as ``|labels|^vertices``; the defaults keep
        it in the thousands.
        """
        added = 0
        for edges in connected_shapes(max_vertices, max_edges):
            n = max(max(e) for e in edges) + 1
            base = shape_name(edges)
            for assignment in itertools.product(labels, repeat=n):
                code = canonical_code_int(edges, list(assignment))
                if code in self._names:
                    continue
                if len(set(assignment)) == 1 and assignment[0] == 0:
                    name = base
                else:
                    name = f"{base}[{','.join(map(str, assignment))}]"
                self._names[code] = name
                self._patterns[code] = (tuple(edges), tuple(assignment))
                added += 1
        return added

    def pattern_of(self, code: int) -> Pattern:
        """Reconstruct a registered pattern from its canonical code —
        e.g. to re-match (and so materialize the instances of) a pattern
        that FPM just discovered.

        The rebuilt pattern keeps its labels: aggregation canonicalizes
        embeddings with their *actual* vertex labels, so an all-zero label
        vector means the instances genuinely carry label 0.
        """
        entry = self._patterns.get(int(code))
        if entry is None:
            raise KeyError(f"code {code} is not in the catalog")
        edges, labels = entry
        return Pattern(list(edges), labels=list(labels), name=self.name_of(code))

    def name_of(self, code: int) -> str:
        """Readable name for a canonical code (hex fallback if unknown)."""
        return self._names.get(int(code), f"pattern:{int(code) & 0xFFFFFFFFFFFFFFFF:016x}")

    def describe(self, patterns: Dict[int, int]) -> list[tuple[str, int]]:
        """Turn an FPM/motif result (code -> support) into named rows,
        sorted by descending support."""
        rows = [
            (self.name_of(code), support) for code, support in patterns.items()
        ]
        rows.sort(key=lambda item: (-item[1], item[0]))
        return rows

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, code: int) -> bool:
        return int(code) in self._names


def default_catalog(num_labels: int = 1) -> PatternCatalog:
    """A catalog covering the common shapes with up to ``num_labels``
    labels — enough to name every pattern the example workloads mine."""
    catalog = PatternCatalog()
    catalog.register_shapes(labels=tuple(range(max(1, num_labels))))
    return catalog
