"""Graph substrate: CSR storage, builders, generators, datasets, patterns,
canonical labeling and a reference isomorphism oracle.

This package is framework-independent — GAMMA, every baseline, the tests
and the benchmark harness all consume the same :class:`~repro.graph.csr.CSRGraph`.
"""

from .builders import from_edge_list, from_edges, from_networkx, relabel_vertices
from .canonical import (
    QuickPatternEncoder,
    canonical_code,
    canonical_code_int,
    canonical_form,
    first_appearance_relabel,
)
from .catalog import PatternCatalog, connected_shapes, default_catalog, shape_name
from .components import (
    component_sizes,
    connected_components,
    largest_component_fraction,
    num_components,
)
from .metrics import (
    GraphProfile,
    clustering_coefficient,
    profile,
    triangle_count_exact,
    wedge_count,
)
from .csr import CSRGraph
from .datasets import DATASETS, DatasetSpec, load, table2_rows
from .generators import clique as clique_graph
from .generators import cycle as cycle_graph
from .generators import erdos_renyi, kronecker, star, zipf_labels
from .io import (
    load_binary,
    load_edge_list,
    load_labeled_edge_list,
    load_labels,
    save_binary,
    save_edge_list,
    save_labels,
)
from .isomorphism import (
    count_cliques,
    count_isomorphisms,
    count_subgraphs,
    find_isomorphisms,
)
from .patterns import (
    SM_QUERIES,
    Pattern,
    clique,
    cycle,
    diamond,
    house,
    path,
    sm_query,
    tailed_triangle,
    triangle,
)
from .reorder import bfs_order, degree_order, reorder
from .upscale import upscale

__all__ = [
    "from_edge_list",
    "from_edges",
    "from_networkx",
    "relabel_vertices",
    "QuickPatternEncoder",
    "canonical_code",
    "canonical_code_int",
    "canonical_form",
    "first_appearance_relabel",
    "PatternCatalog",
    "connected_shapes",
    "default_catalog",
    "shape_name",
    "component_sizes",
    "connected_components",
    "largest_component_fraction",
    "num_components",
    "GraphProfile",
    "clustering_coefficient",
    "profile",
    "triangle_count_exact",
    "wedge_count",
    "bfs_order",
    "degree_order",
    "reorder",
    "CSRGraph",
    "DATASETS",
    "DatasetSpec",
    "load",
    "table2_rows",
    "clique_graph",
    "cycle_graph",
    "erdos_renyi",
    "kronecker",
    "star",
    "zipf_labels",
    "load_binary",
    "load_edge_list",
    "load_labeled_edge_list",
    "load_labels",
    "save_labels",
    "save_binary",
    "save_edge_list",
    "count_cliques",
    "count_isomorphisms",
    "count_subgraphs",
    "find_isomorphisms",
    "SM_QUERIES",
    "Pattern",
    "clique",
    "cycle",
    "diamond",
    "house",
    "path",
    "sm_query",
    "tailed_triangle",
    "triangle",
    "upscale",
]
