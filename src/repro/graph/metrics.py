"""Graph statistics.

A compact profile of a graph — the numbers a GPM practitioner checks
before picking workload parameters: degree distribution shape (mining cost
is driven by Σ deg²), clustering (triangle density drives kCL), component
structure, and label skew.  Used by the CLI's dataset listing and by tests
that assert the stand-ins resemble their domains.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .components import largest_component_fraction, num_components
from .csr import CSRGraph


@dataclass(frozen=True)
class GraphProfile:
    """Summary statistics of one graph."""

    name: str
    num_vertices: int
    num_edges: int
    max_degree: int
    mean_degree: float
    #: Σ deg² — proportional to the wedge count, the first-order cost of
    #: every 2-anchor extension.
    degree_second_moment: int
    #: Global clustering coefficient: 3 * triangles / wedges.
    clustering: float
    num_components: int
    giant_component_fraction: float
    num_labels: int
    #: Frequency of the most common label.
    top_label_share: float

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "vertices": self.num_vertices,
            "edges": self.num_edges,
            "max_deg": self.max_degree,
            "mean_deg": f"{self.mean_degree:.2f}",
            "sum_deg2": self.degree_second_moment,
            "clustering": f"{self.clustering:.4f}",
            "components": self.num_components,
            "giant_frac": f"{self.giant_component_fraction:.2f}",
            "labels": self.num_labels,
            "top_label": f"{self.top_label_share:.2f}",
        }


def triangle_count_exact(graph: CSRGraph) -> int:
    """Exact triangle count via ordered neighbor intersection (vectorized
    per-edge adjacency checks — independent of the mining engines, so it
    can serve as their oracle on large graphs)."""
    src, dst = graph.edge_src, graph.edge_dst
    total = 0
    # For each edge (u, v): count w in N(u) with w > v and (v, w) an edge.
    # Expanding all candidates at once can be large; chunk the edges.
    chunk = max(1, min(len(src), 200_000))
    for start in range(0, len(src), chunk):
        u = src[start: start + chunk]
        v = dst[start: start + chunk]
        starts = graph.offsets[u]
        ends = graph.offsets[u + 1]
        from ..gpusim.regions import expand_ranges

        flat = expand_ranges(starts, ends)
        cand = graph.neighbors[flat]
        owner = np.repeat(np.arange(len(u)), ends - starts)
        mask = cand > v[owner]
        total += int(graph.has_edges(v[owner][mask], cand[mask]).sum())
    return total


def wedge_count(graph: CSRGraph) -> int:
    """Number of 2-paths: Σ C(deg, 2)."""
    deg = graph.degrees.astype(np.int64)
    return int((deg * (deg - 1) // 2).sum())


def clustering_coefficient(graph: CSRGraph) -> float:
    """Global clustering coefficient 3T / W (0 when wedge-free)."""
    wedges = wedge_count(graph)
    if wedges == 0:
        return 0.0
    return 3.0 * triangle_count_exact(graph) / wedges


def profile(graph: CSRGraph) -> GraphProfile:
    """Compute the full statistics profile."""
    degrees = graph.degrees
    labels = graph.labels
    if len(labels):
        counts = np.bincount(labels)
        top_share = float(counts.max()) / len(labels)
    else:
        top_share = 0.0
    return GraphProfile(
        name=graph.name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        max_degree=graph.max_degree,
        mean_degree=float(degrees.mean()) if len(degrees) else 0.0,
        degree_second_moment=int((degrees.astype(np.int64) ** 2).sum()),
        clustering=clustering_coefficient(graph),
        num_components=num_components(graph),
        giant_component_fraction=largest_component_fraction(graph),
        num_labels=graph.num_labels,
        top_label_share=top_share,
    )
