"""Graph reordering for locality (paper §VII-C, refs [25]/[45]).

The related work improves unified/zero-copy throughput by reordering
vertices so that frequently co-accessed adjacency lists share pages.  Two
standard orders are provided:

* **degree order** — hubs first: the heavy lists GPM re-reads most end up
  packed into the same few (hot) pages, which is exactly what the access-
  heat planner wants to promote;
* **BFS order** (Cuthill–McKee flavored) — neighbors get nearby ids, so
  one embedding's anchor lists cluster.

``reorder`` returns a relabeled, otherwise identical graph; counts of any
pattern are invariant (tested), only the page-access pattern changes.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..errors import InvalidGraphError
from .builders import from_edges
from .csr import CSRGraph

DEGREE = "degree"
BFS = "bfs"

ORDERS = (DEGREE, BFS)


def degree_order(graph: CSRGraph) -> np.ndarray:
    """Permutation ``perm[old_id] = new_id`` placing high-degree first."""
    ranks = np.lexsort((np.arange(graph.num_vertices), -graph.degrees))
    perm = np.empty(graph.num_vertices, dtype=np.int64)
    perm[ranks] = np.arange(graph.num_vertices)
    return perm


def bfs_order(graph: CSRGraph, root: int | None = None) -> np.ndarray:
    """BFS numbering from the highest-degree vertex (per component),
    visiting neighbors in degree-descending order."""
    n = graph.num_vertices
    perm = np.full(n, -1, dtype=np.int64)
    degrees = graph.degrees
    next_id = 0
    visit_order = np.lexsort((np.arange(n), -degrees))
    roots = [root] if root is not None else list(visit_order)
    for start in roots + list(visit_order):
        if perm[start] >= 0:
            continue
        queue = deque([start])
        perm[start] = next_id
        next_id += 1
        while queue:
            v = queue.popleft()
            nbrs = graph.neighbors_of(v)
            for w in sorted(nbrs.tolist(), key=lambda x: -degrees[x]):
                if perm[w] < 0:
                    perm[w] = next_id
                    next_id += 1
                    queue.append(w)
    # isolated vertices picked up by the visit_order sweep above
    assert next_id == n
    return perm


def reorder(graph: CSRGraph, order: str = DEGREE) -> CSRGraph:
    """Return the same graph with vertices renumbered by ``order``."""
    if order == DEGREE:
        perm = degree_order(graph)
    elif order == BFS:
        perm = bfs_order(graph)
    else:
        raise InvalidGraphError(f"unknown order {order!r}; use {ORDERS}")
    labels = np.empty(graph.num_vertices, dtype=np.int64)
    labels[perm] = graph.labels
    return from_edges(
        perm[graph.edge_src],
        perm[graph.edge_dst],
        num_vertices=graph.num_vertices,
        labels=labels,
        name=f"{graph.name}@{order}",
    )
