"""Safe construction of :class:`~repro.graph.csr.CSRGraph` from raw inputs.

All GPM systems in the paper preprocess graphs the same way: drop self
loops, deduplicate parallel edges, symmetrize to an undirected graph, and
sort adjacency lists.  These builders perform that normalization with
vectorized NumPy so multi-million-edge stand-ins build in milliseconds.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidGraphError
from .csr import CSRGraph


def from_edges(
    src: np.ndarray,
    dst: np.ndarray,
    num_vertices: int | None = None,
    labels: np.ndarray | None = None,
    name: str = "graph",
) -> CSRGraph:
    """Build an undirected CSR graph from (possibly messy) edge arrays.

    Self loops are removed; duplicate and reverse-duplicate edges collapse
    to one undirected edge.  ``num_vertices`` defaults to ``max id + 1``.
    """
    src = np.asarray(src, dtype=np.int64).ravel()
    dst = np.asarray(dst, dtype=np.int64).ravel()
    if src.shape != dst.shape:
        raise InvalidGraphError("src/dst arrays must have equal length")
    if len(src) and (src.min() < 0 or dst.min() < 0):
        raise InvalidGraphError("vertex ids must be non-negative")

    max_id = int(max(src.max(), dst.max())) + 1 if len(src) else 0
    if num_vertices is None:
        num_vertices = max_id
    elif num_vertices < max_id:
        raise InvalidGraphError(
            f"num_vertices={num_vertices} smaller than max id {max_id - 1}"
        )

    # Canonicalize each edge as (min, max), drop self loops, deduplicate.
    keep = src != dst
    lo = np.minimum(src[keep], dst[keep])
    hi = np.maximum(src[keep], dst[keep])
    if len(lo):
        keys = (lo << 32) | hi
        keys = np.unique(keys)
        lo = keys >> 32
        hi = keys & 0xFFFFFFFF
    edge_src, edge_dst = lo, hi
    num_edges = len(edge_src)

    # Symmetrize: each undirected edge contributes two adjacency slots that
    # share an edge id.
    heads = np.concatenate([edge_src, edge_dst])
    tails = np.concatenate([edge_dst, edge_src])
    slot_edge_ids = np.concatenate([np.arange(num_edges)] * 2).astype(np.int64)

    # Sort slots by (head, tail) to get sorted adjacency lists.
    order = np.lexsort((tails, heads))
    heads, tails, slot_edge_ids = heads[order], tails[order], slot_edge_ids[order]

    offsets = np.zeros(num_vertices + 1, dtype=np.int64)
    counts = np.bincount(heads, minlength=num_vertices) if len(heads) else np.zeros(
        num_vertices, dtype=np.int64
    )
    offsets[1:] = np.cumsum(counts)

    return CSRGraph(
        offsets=offsets,
        neighbors=tails,
        edge_ids=slot_edge_ids,
        edge_src=edge_src,
        edge_dst=edge_dst,
        labels=labels,
        name=name,
    )


def from_edge_list(
    edges: list[tuple[int, int]],
    num_vertices: int | None = None,
    labels: np.ndarray | None = None,
    name: str = "graph",
) -> CSRGraph:
    """Build from a Python list of ``(u, v)`` pairs (test convenience)."""
    if edges:
        arr = np.asarray(edges, dtype=np.int64)
        src, dst = arr[:, 0], arr[:, 1]
    else:
        src = dst = np.empty(0, dtype=np.int64)
    return from_edges(src, dst, num_vertices=num_vertices, labels=labels, name=name)


def from_networkx(nx_graph, labels_attr: str | None = None, name: str = "graph"):
    """Convert a ``networkx`` graph (used by tests as an oracle bridge)."""
    nodes = sorted(nx_graph.nodes())
    index = {v: i for i, v in enumerate(nodes)}
    edges = [(index[u], index[v]) for u, v in nx_graph.edges()]
    labels = None
    if labels_attr is not None:
        labels = np.array(
            [nx_graph.nodes[v].get(labels_attr, 0) for v in nodes], dtype=np.int64
        )
    return from_edge_list(edges, num_vertices=len(nodes), labels=labels, name=name)


def relabel_vertices(graph: CSRGraph, labels: np.ndarray) -> CSRGraph:
    """Return a copy of ``graph`` with new vertex labels."""
    labels = np.asarray(labels, dtype=np.int64)
    if len(labels) != graph.num_vertices:
        raise InvalidGraphError("label array must cover every vertex")
    return CSRGraph(
        offsets=graph.offsets,
        neighbors=graph.neighbors,
        edge_ids=graph.edge_ids,
        edge_src=graph.edge_src,
        edge_dst=graph.edge_dst,
        labels=labels,
        name=graph.name,
    )
