"""Reference subgraph-isomorphism search (the test oracle).

A direct backtracking enumerator of all (non-induced) subgraph isomorphism
embeddings of a pattern in a data graph.  It is deliberately simple and
slow — its job is to certify the GAMMA engines and baselines on small
graphs, and to serve examples that want exact answers without the
framework.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph
from .patterns import Pattern


def find_isomorphisms(graph: CSRGraph, pattern: Pattern) -> np.ndarray:
    """All embeddings of ``pattern`` in ``graph`` as an ``(n, k)`` array.

    Row ``i`` maps pattern vertex ``j`` to data vertex ``result[i, j]``.
    Matching is non-induced subgraph isomorphism: pattern edges must exist
    in the graph, data labels must equal pattern labels, and the mapping is
    injective.  Every automorphic image is listed separately (matching the
    embedding-count semantics of the paper's embedding tables).
    """
    order = pattern.matching_order()
    position = {v: i for i, v in enumerate(order)}
    # For each step, the pattern neighbors already matched.
    back_edges = [
        [position[w] for w in pattern.neighbors(order[step]) if position[w] < step]
        for step in range(pattern.num_vertices)
    ]
    results: list[list[int]] = []
    assignment = [-1] * pattern.num_vertices
    used: set[int] = set()

    def candidates(step: int) -> np.ndarray:
        qv = order[step]
        if step == 0:
            if pattern.labeled:
                return np.flatnonzero(graph.labels == pattern.label(qv))
            return np.arange(graph.num_vertices, dtype=np.int64)
        anchor = assignment[back_edges[step][0]]
        return graph.neighbors_of(anchor)

    def extend(step: int) -> None:
        qv = order[step]
        for v in candidates(step):
            v = int(v)
            if v in used:
                continue
            if pattern.labeled and graph.label_of(v) != pattern.label(qv):
                continue
            ok = True
            for back in back_edges[step]:
                if not graph.has_edge(assignment[back], v):
                    ok = False
                    break
            if not ok:
                continue
            assignment[step] = v
            if step + 1 == pattern.num_vertices:
                results.append(list(assignment))
            else:
                used.add(v)
                extend(step + 1)
                used.discard(v)
        assignment[step] = -1

    extend(0)
    if not results:
        return np.empty((0, pattern.num_vertices), dtype=np.int64)
    # Rows currently map matching-order steps; reorder to pattern vertex ids.
    arr = np.asarray(results, dtype=np.int64)
    out = np.empty_like(arr)
    for step, qv in enumerate(order):
        out[:, qv] = arr[:, step]
    return out


def count_isomorphisms(graph: CSRGraph, pattern: Pattern) -> int:
    """Number of embeddings (automorphic images counted separately)."""
    return len(find_isomorphisms(graph, pattern))


def count_subgraphs(graph: CSRGraph, pattern: Pattern) -> int:
    """Number of distinct subgraphs (embeddings / automorphisms)."""
    embeddings = count_isomorphisms(graph, pattern)
    autos = pattern.automorphism_count()
    assert embeddings % autos == 0, "embedding count must divide evenly"
    return embeddings // autos


def count_cliques(graph: CSRGraph, k: int) -> int:
    """Exact k-clique count via ordered backtracking (oracle for kCL)."""
    if k < 1:
        raise ValueError("k must be >= 1")
    if k == 1:
        return graph.num_vertices
    count = 0

    def grow(candidates: np.ndarray, depth: int) -> None:
        nonlocal count
        if depth == k:
            count += len(candidates)
            return
        for v in candidates:
            v = int(v)
            nbrs = graph.neighbors_of(v)
            nxt = np.intersect1d(candidates, nbrs[nbrs > v], assume_unique=True)
            if len(nxt):
                grow(nxt, depth + 1)

    all_vertices = np.arange(graph.num_vertices, dtype=np.int64)
    for v in range(graph.num_vertices):
        nbrs = graph.neighbors_of(v)
        grow(np.intersect1d(all_vertices, nbrs[nbrs > v], assume_unique=True), 2)
    return count
