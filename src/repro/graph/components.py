"""Connected components (vectorized label propagation).

Dataset stand-ins and user graphs are not guaranteed connected; component
structure matters when interpreting mining results (a pattern cannot span
components) and when choosing BFS reordering roots.  The implementation is
pointer-jumping label propagation — O(E · log V) fully vectorized passes,
no Python recursion.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph


def connected_components(graph: CSRGraph) -> np.ndarray:
    """Component id per vertex (ids are the component's smallest vertex)."""
    n = graph.num_vertices
    labels = np.arange(n, dtype=np.int64)
    if graph.num_edges == 0:
        return labels
    src, dst = graph.edge_src, graph.edge_dst
    while True:
        # Hook: every edge pulls both endpoints to the smaller label.
        low = np.minimum(labels[src], labels[dst])
        changed_any = False
        for endpoint in (src, dst):
            np.minimum.at(labels, endpoint, low)
        # Pointer jumping: compress label chains.
        while True:
            jumped = labels[labels]
            if (jumped == labels).all():
                break
            labels = jumped
        new_low = np.minimum(labels[src], labels[dst])
        if (new_low == labels[src]).all() and (new_low == labels[dst]).all():
            break
    return labels


def component_sizes(graph: CSRGraph) -> np.ndarray:
    """Sizes of all components, largest first."""
    labels = connected_components(graph)
    __, counts = np.unique(labels, return_counts=True)
    return np.sort(counts)[::-1]


def num_components(graph: CSRGraph) -> int:
    return len(np.unique(connected_components(graph)))


def largest_component_fraction(graph: CSRGraph) -> float:
    """Share of vertices in the giant component (1.0 when connected)."""
    if graph.num_vertices == 0:
        return 1.0
    return float(component_sizes(graph)[0]) / graph.num_vertices
