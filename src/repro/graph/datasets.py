"""Stand-ins for the paper's datasets (Table II).

The paper evaluates on ten real/synthetic graphs up to 2.4 B edges.  Those
graphs (and a machine able to hold them) are unavailable here, so each
dataset has a deterministic synthetic stand-in scaled down by
:data:`SCALE` (~1000x) with the same vertex:edge ratio and an R-MAT
degree structure matching the dataset's domain.  Device memory in the
simulator is scaled by the same factor (see ``repro.gpusim.spec``), so the
paper's in-core/out-of-core crossovers happen at the same *relative* sizes.

``load(name)`` builds (and memoizes) a stand-in; ``table2_rows()`` prints
the reproduction of Table II.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from .csr import CSRGraph
from .generators import erdos_renyi, kronecker, zipf_labels
from .upscale import upscale
from ..errors import GammaError

#: Downscale factor from the paper's dataset sizes.
SCALE = 1000

#: Labels per stand-in graph (SM/FPM queries are labeled).
NUM_LABELS = 8


@dataclass(frozen=True)
class DatasetSpec:
    """One row of Table II plus the recipe for its stand-in."""

    name: str
    abbrev: str
    paper_nodes: int
    paper_edges: int
    kind: str
    #: Builds the scaled stand-in graph.
    factory: Callable[[], CSRGraph]

    @property
    def standin_nodes(self) -> int:
        return max(32, self.paper_nodes // SCALE)

    @property
    def standin_edges(self) -> int:
        return max(64, self.paper_edges // SCALE)


def _rmat_standin(spec_name: str, nodes: int, edges: int, seed: int) -> CSRGraph:
    """R-MAT graph with ~nodes vertices and ~edges edges (heavy-tailed)."""
    scale = max(5, int(round(nodes)).bit_length() - 1)
    n = 1 << scale
    edge_factor = max(1, int(round(edges / n)))
    graph = kronecker(
        scale, edge_factor, seed=seed, name=spec_name, labels=NUM_LABELS,
    )
    return graph


def _build_cp() -> CSRGraph:
    return _rmat_standin("cit-Patent", 6_000, 17_000, seed=11)


def _build_cl() -> CSRGraph:
    return _rmat_standin("com-lj", 4_000, 34_000, seed=12)


def _build_co() -> CSRGraph:
    return _rmat_standin("com-orkut", 3_000, 117_000, seed=13)


def _build_ea() -> CSRGraph:
    graph = erdos_renyi(265, 729, seed=14, name="email-EuAll", labels=NUM_LABELS)
    return graph


def _build_er() -> CSRGraph:
    graph = erdos_renyi(64, 368, seed=15, name="email-Euroll", labels=NUM_LABELS)
    return graph


def _build_cl8() -> CSRGraph:
    base = _build_cl()
    return upscale(base, 8, seed=16, name="com-lj*8")


def _build_sl5() -> CSRGraph:
    base = _rmat_standin("soc-Live", 4_800, 96_000, seed=17)
    return upscale(base, 5, seed=18, name="soc-Live*5")


def _build_uk() -> CSRGraph:
    return _rmat_standin("uk2005", 39_000, 1_600_000, seed=19)


def _build_it() -> CSRGraph:
    return _rmat_standin("it2004", 41_000, 2_100_000, seed=20)


def _build_tw() -> CSRGraph:
    return _rmat_standin("twitter_rv", 62_000, 2_400_000, seed=21)


#: Registry ordered as in Table II.
DATASETS: Dict[str, DatasetSpec] = {}


def _register(spec: DatasetSpec) -> None:
    DATASETS[spec.abbrev] = spec


_register(DatasetSpec("cit-Patent", "CP", 6_000_000, 17_000_000, "citation", _build_cp))
_register(DatasetSpec("com-lj", "CL", 4_000_000, 34_000_000, "social", _build_cl))
_register(DatasetSpec("com-orkut", "CO", 3_000_000, 117_000_000, "social", _build_co))
_register(DatasetSpec("email-EuAll", "EA", 265_000, 729_000, "email", _build_ea))
_register(DatasetSpec("email-Euroll", "ER", 37_000, 368_000, "email", _build_er))
_register(DatasetSpec("com-lj*8", "CL*8", 32_000_000, 467_000_000, "synthetic", _build_cl8))
_register(DatasetSpec("soc-Live*5", "SL*5", 24_000_000, 481_000_000, "synthetic", _build_sl5))
_register(DatasetSpec("uk2005", "UK", 39_000_000, 1_600_000_000, "web", _build_uk))
_register(DatasetSpec("it2004", "IT", 41_000_000, 2_100_000_000, "web", _build_it))
_register(DatasetSpec("twitter_rv", "TW", 62_000_000, 2_400_000_000, "social", _build_tw))

#: Dataset groups used by the figures.
SMALL = ("EA", "ER")
MEDIUM = ("CP", "CL", "CO")
LARGE = ("CL*8", "SL*5", "UK", "IT", "TW")
ALL = MEDIUM + SMALL + LARGE

_cache: Dict[str, CSRGraph] = {}


def load(abbrev: str) -> CSRGraph:
    """Build (or fetch from cache) the stand-in for a Table II dataset."""
    if abbrev not in DATASETS:
        known = ", ".join(DATASETS)
        raise GammaError(f"unknown dataset {abbrev!r}; known: {known}")
    if abbrev not in _cache:
        graph = DATASETS[abbrev].factory()
        if graph.num_labels <= 1:
            # Upscaled graphs inherit labels; others get a fresh Zipf draw.
            from .builders import relabel_vertices

            graph = relabel_vertices(
                graph, zipf_labels(graph.num_vertices, NUM_LABELS, seed=1)
            )
        _cache[abbrev] = graph
    return _cache[abbrev]


def clear_cache() -> None:
    """Drop memoized stand-ins (tests use this to bound memory)."""
    _cache.clear()


def table2_rows() -> list[dict]:
    """Rows reproducing Table II: paper sizes next to stand-in sizes."""
    rows = []
    for spec in DATASETS.values():
        graph = load(spec.abbrev)
        rows.append(
            {
                "dataset": spec.name,
                "abbrev": spec.abbrev,
                "paper_nodes": spec.paper_nodes,
                "paper_edges": spec.paper_edges,
                "type": spec.kind,
                "standin_nodes": graph.num_vertices,
                "standin_edges": graph.num_edges,
            }
        )
    return rows
