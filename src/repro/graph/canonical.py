"""Graph canonical labeling and the quick-pattern/canonical two-level scheme.

GAMMA's ``Aggregation`` primitive maps every embedding to its pattern graph
"by computing graph canonical label [24]" (§III-B2).  Canonicalizing each of
millions of embeddings individually is hopeless, so — like the Pangolin and
Kaleido systems GAMMA builds on — we use a two-level scheme:

1. **Quick pattern** (vectorized): relabel each embedding's vertices by
   first appearance in its edge list and pack the relabelled structure and
   label sequence into two 64-bit words.  Equal quick patterns are
   *identical* relabelled graphs, hence isomorphic; this collapses millions
   of embeddings to at most a few hundred distinct quick patterns.
2. **Canonical code** (exact, per unique quick pattern): minimize an
   encoding of the adjacency structure over all label/degree-respecting
   vertex permutations, so isomorphic quick patterns map to one code.

Limits: embeddings of at most :data:`MAX_EDGES` edges /
:data:`MAX_VERTICES` vertices, labels below 256 — comfortably covering the
paper's workloads (length <= 4 embeddings).
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Dict, Sequence, Tuple

import numpy as np

from ..errors import InvalidPatternError

#: Packing limits for quick patterns (4-bit vertex ids, 8-bit slots).
MAX_EDGES = 7
MAX_VERTICES = 8
MAX_LABEL = 255


def canonical_form(
    edges: Sequence[tuple[int, int]], labels: Sequence[int]
) -> tuple[bytes, tuple[int, ...]]:
    """Exact canonical form of a small labeled graph.

    Minimizes ``(label sequence, sorted edge list)`` over all permutations
    that respect the (label, degree) vertex partition — a sound pruning of
    the full permutation set, since automorphisms preserve both invariants.

    Returns ``(code, placement)`` where ``placement[i]`` is the original
    vertex occupying canonical position ``i`` (needed by MNI support, which
    counts distinct data vertices per canonical position).
    """
    n = len(labels)
    if n > MAX_VERTICES:
        raise InvalidPatternError(f"canonical_form supports <= {MAX_VERTICES} vertices")
    degree = [0] * n
    for u, v in edges:
        degree[u] += 1
        degree[v] += 1
    # Partition vertices into classes by the (label, degree) invariant.
    classes: Dict[tuple[int, int], list[int]] = {}
    for v in range(n):
        classes.setdefault((labels[v], degree[v]), []).append(v)
    class_keys = sorted(classes)

    best: tuple | None = None
    best_flat: tuple[int, ...] = ()
    members = [classes[key] for key in class_keys]
    for perm_parts in itertools.product(
        *(itertools.permutations(part) for part in members)
    ):
        flat = [v for part in perm_parts for v in part]
        # flat[i] is the original vertex placed at canonical position i.
        position = {v: i for i, v in enumerate(flat)}
        relabeled = sorted(
            (min(position[u], position[v]), max(position[u], position[v]))
            for u, v in edges
        )
        candidate = (tuple(labels[v] for v in flat), tuple(relabeled))
        if best is None or candidate < best:
            best = candidate
            best_flat = tuple(flat)
    assert best is not None
    label_part = ",".join(map(str, best[0]))
    edge_part = ";".join(f"{u}-{v}" for u, v in best[1])
    return f"{label_part}|{edge_part}".encode(), best_flat


def canonical_code(
    edges: Sequence[tuple[int, int]], labels: Sequence[int]
) -> bytes:
    """Exact canonical code (see :func:`canonical_form`)."""
    return canonical_form(edges, labels)[0]


def canonical_code_int(
    edges: Sequence[tuple[int, int]], labels: Sequence[int]
) -> int:
    """64-bit canonical key (blake2b of :func:`canonical_code`), suitable
    for the external sort used by the aggregation primitive."""
    digest = hashlib.blake2b(canonical_code(edges, labels), digest_size=8).digest()
    return int.from_bytes(digest, "little", signed=True)


def first_appearance_relabel(seq: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Row-wise first-appearance relabeling of integer sequences.

    For each row, the first distinct value becomes 0, the second 1, and so
    on.  Returns ``(ids, fresh)`` where ``fresh[i, j]`` marks the position
    where each distinct value first appears.  Vectorized over rows with an
    O(width^2) unrolled scan — widths here are at most ``2 * MAX_EDGES``.
    """
    seq = np.asarray(seq, dtype=np.int64)
    if seq.ndim != 2:
        raise ValueError("seq must be 2-D (rows of vertex sequences)")
    n, m = seq.shape
    ids = np.zeros((n, m), dtype=np.int64)
    fresh = np.ones((n, m), dtype=bool)
    for j in range(1, m):
        assigned = np.full(n, -1, dtype=np.int64)
        for jp in range(j):
            hit = (seq[:, jp] == seq[:, j]) & (assigned < 0)
            if hit.any():
                assigned[hit] = ids[hit, jp]
        new = assigned < 0
        ids[:, j] = np.where(new, fresh[:, :j].sum(axis=1), assigned)
        fresh[:, j] = new
    return ids, fresh


class QuickPatternEncoder:
    """Batch mapping of embeddings to canonical pattern keys.

    The encoder memoizes the quick-pattern -> canonical mapping across
    calls, so later FPM iterations reuse earlier canonicalizations.
    """

    def __init__(self) -> None:
        self._canonical_cache: Dict[Tuple[int, int, int], Tuple[int, Tuple[int, ...]]] = {}

    def encode_edge_embeddings(
        self,
        srcs: np.ndarray,
        dsts: np.ndarray,
        vertex_labels: np.ndarray,
        return_positions: bool = False,
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        """Canonical 64-bit keys for ``n`` edge-oriented embeddings.

        ``srcs``/``dsts`` are ``(n, k)`` endpoint arrays (embedding i is the
        edge set ``{(srcs[i, t], dsts[i, t])}``); ``vertex_labels`` maps data
        vertex id -> label.

        With ``return_positions=True`` additionally returns an
        ``(n, MAX_VERTICES)`` array whose ``[i, p]`` entry is the data
        vertex that embedding ``i`` maps to canonical pattern position
        ``p`` (or -1 beyond the pattern's size) — the input MNI support
        needs.
        """
        srcs = np.asarray(srcs, dtype=np.int64)
        dsts = np.asarray(dsts, dtype=np.int64)
        if srcs.ndim != 2 or srcs.shape != dsts.shape:
            raise ValueError("srcs/dsts must be matching (n, k) arrays")
        n, k = srcs.shape
        if k > MAX_EDGES:
            raise InvalidPatternError(f"at most {MAX_EDGES} edges per embedding")
        if n == 0:
            codes = np.empty(0, dtype=np.int64)
            if return_positions:
                return codes, np.empty((0, MAX_VERTICES), dtype=np.int64)
            return codes

        # Interleave endpoints: row i -> [s0, d0, s1, d1, ...].
        seq = np.empty((n, 2 * k), dtype=np.int64)
        seq[:, 0::2] = srcs
        seq[:, 1::2] = dsts
        ids, fresh = first_appearance_relabel(seq)
        if int(ids.max(initial=0)) >= MAX_VERTICES:
            raise InvalidPatternError(
                f"at most {MAX_VERTICES} vertices per embedding"
            )

        # Structure word: 8 bits per edge = (src_id << 4) | dst_id.
        edge_codes = (ids[:, 0::2] << 4) | ids[:, 1::2]
        shifts = (8 * np.arange(k, dtype=np.int64))[None, :]
        qa = (edge_codes << shifts).sum(axis=1)

        # Label word: 8 bits per *relabelled* vertex id.
        labels_at = vertex_labels[seq]
        if int(labels_at.max(initial=0)) > MAX_LABEL:
            raise InvalidPatternError(f"labels must be <= {MAX_LABEL}")
        contrib = np.where(fresh, labels_at << (8 * ids), 0)
        qb = contrib.sum(axis=1)

        codes, placements, inverse = self._canonicalize(qa, qb, k)
        if not return_positions:
            return codes

        # Data vertex behind each quick (first-appearance) id, per row.
        orig_at_qid = np.full((n, MAX_VERTICES), -1, dtype=np.int64)
        row_idx, col_idx = np.nonzero(fresh)
        orig_at_qid[row_idx, ids[row_idx, col_idx]] = seq[row_idx, col_idx]
        # Reorder quick ids into canonical positions per row.
        flat = placements[inverse]  # (n, MAX_VERTICES), -1 padded
        valid = flat >= 0
        positions = np.where(
            valid,
            np.take_along_axis(orig_at_qid, np.maximum(flat, 0), axis=1),
            -1,
        )
        return codes, positions

    def _canonicalize(
        self, qa: np.ndarray, qb: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Map quick keys to canonical keys, canonicalizing each distinct
        quick pattern exactly once.

        Returns ``(codes, placements, inverse)``: per-row codes, the
        per-unique-quick-pattern canonical placement matrix (quick id at
        canonical position, -1 padded) and the unique-row inverse map.
        """
        from .. import perf

        if perf.use_reference():
            packed = np.stack([qa, qb], axis=1)
            uniq, inverse = np.unique(packed, axis=0, return_inverse=True)
        else:
            # Same lexicographic (qa, qb) enumeration as np.unique(axis=0),
            # without the void-dtype round-trip: one two-key lexsort, then
            # lead flags mark group starts.  uniq order and inverse are
            # bit-identical to the reference arm.
            order = np.lexsort((qb, qa))
            qa_s, qb_s = qa[order], qb[order]
            lead = np.ones(len(order), dtype=bool)
            lead[1:] = (qa_s[1:] != qa_s[:-1]) | (qb_s[1:] != qb_s[:-1])
            groups = np.cumsum(lead, dtype=np.int64) - 1
            inverse = np.empty(len(order), dtype=np.int64)
            inverse[order] = groups
            uniq = np.stack([qa_s[lead], qb_s[lead]], axis=1)
        out_codes = np.empty(len(uniq), dtype=np.int64)
        placements = np.full((len(uniq), MAX_VERTICES), -1, dtype=np.int64)
        for i, (ua, ub) in enumerate(uniq):
            cache_key = (int(ua), int(ub), k)
            cached = self._canonical_cache.get(cache_key)
            if cached is None:
                edges, labels = self._decode_quick(int(ua), int(ub), k)
                code_bytes, flat = canonical_form(edges, labels)
                digest = hashlib.blake2b(code_bytes, digest_size=8).digest()
                cached = (int.from_bytes(digest, "little", signed=True), flat)
                self._canonical_cache[cache_key] = cached
            out_codes[i] = cached[0]
            flat = cached[1]
            placements[i, : len(flat)] = flat
        return out_codes[inverse], placements, inverse

    @staticmethod
    def _decode_quick(qa: int, qb: int, k: int) -> tuple[list, list]:
        """Invert the quick-pattern packing back to (edges, labels)."""
        edges = []
        max_vertex = -1
        for t in range(k):
            code = (qa >> (8 * t)) & 0xFF
            a, b = code >> 4, code & 0xF
            edges.append((a, b))
            max_vertex = max(max_vertex, a, b)
        labels = [(qb >> (8 * v)) & 0xFF for v in range(max_vertex + 1)]
        return edges, labels

    @property
    def cache_size(self) -> int:
        """Distinct quick patterns canonicalized so far."""
        return len(self._canonical_cache)
