"""The aggregation primitive (paper §III-B2 + Optimization 3).

``Aggregation(ET, m_f)`` maps every embedding to its pattern graph via
canonical labeling, then counts instances per pattern.  The heavy step is
grouping canonical codes whose total size may exceed device memory — that
is exactly what the out-of-core multi-merge sort (:mod:`repro.core.sort`)
exists for.

The canonical map uses the two-level quick-pattern scheme of
:mod:`repro.graph.canonical`; its device cost is charged per embedding.

The module also provides embedding-set deduplication for edge-oriented
growth: extending by "any adjacent edge" reaches the same edge set through
multiple orders, and instance counting requires each set once.  Dedup packs
each row's sorted edge ids and unique-sorts them with the same external
sort machinery.
"""

from __future__ import annotations

import numpy as np

from .. import perf
from ..graph.canonical import QuickPatternEncoder
from ..gpusim.platform import GpuPlatform
from .embedding_table import EmbeddingTable
from .pattern_table import PatternTable
from .residence import GraphResidence
from .sort import DEFAULT_P_SIZE, MULTI_MERGE, sort_and_count

#: Charged device ops per embedding for the quick-pattern relabel+pack.
_QUICK_OPS_PER_EDGE = 24

#: Overflow bound for the dedup fast path's single-int64 row packing.
_PACK_BITS_LIMIT = 62

#: Support metrics: raw instance frequency (the paper's §III definition)
#: or minimum-image-based support (the anti-monotone FSM standard).
INSTANCES = "instances"
MNI = "mni"
SUPPORT_METRICS = (INSTANCES, MNI)


def mni_supports(
    codes: np.ndarray, positions: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Minimum-image-based support per pattern.

    ``positions[i, p]`` is the data vertex embedding ``i`` maps to the
    pattern's canonical position ``p`` (-1 past the pattern's size).  A
    pattern's MNI is the minimum, over its positions, of the number of
    *distinct* data vertices seen there — the largest support measure that
    is still anti-monotone.
    """
    codes = np.asarray(codes, dtype=np.int64)
    uniq, inverse = np.unique(codes, return_inverse=True)
    if len(uniq) == 0:
        return uniq, np.empty(0, dtype=np.int64)
    mni = np.full(len(uniq), np.iinfo(np.int64).max, dtype=np.int64)
    covered = np.zeros(len(uniq), dtype=bool)
    for p in range(positions.shape[1]):
        column = positions[:, p]
        valid = column >= 0
        if not valid.any():
            continue
        pair_code = inverse[valid]
        pair_vertex = column[valid]
        distinct = np.unique(
            np.stack([pair_code, pair_vertex], axis=1), axis=0
        )
        counts = np.bincount(distinct[:, 0], minlength=len(uniq))
        present = counts > 0
        mni[present] = np.minimum(mni[present], counts[present])
        covered |= present
    mni[~covered] = 0
    return uniq, mni.astype(np.int64)


def aggregate_edge_table(
    platform: GpuPlatform,
    residence: GraphResidence,
    table: EmbeddingTable,
    encoder: QuickPatternEncoder,
    pattern_table: PatternTable,
    sort_method: str = MULTI_MERGE,
    p_size: int = DEFAULT_P_SIZE,
    cpu: bool = False,
    support_metric: str = INSTANCES,
) -> np.ndarray:
    """Aggregate an e-ET into the pattern table.

    Returns the per-row canonical codes (needed afterwards by the support
    filter).  The pattern table gains/updates one entry per pattern, whose
    support is instance frequency or MNI per ``support_metric``.
    """
    tel = platform.telemetry
    with tel.span("aggregation", kind="phase"):
        codes = _aggregate_edge_table_impl(
            platform, residence, table, encoder, pattern_table,
            sort_method, p_size, cpu, support_metric,
        )
    if tel.active:
        tel.metric("aggregation.rows", len(codes))
    return codes


def _aggregate_edge_table_impl(
    platform: GpuPlatform,
    residence: GraphResidence,
    table: EmbeddingTable,
    encoder: QuickPatternEncoder,
    pattern_table: PatternTable,
    sort_method: str,
    p_size: int,
    cpu: bool,
    support_metric: str,
) -> np.ndarray:
    if support_metric not in SUPPORT_METRICS:
        raise ValueError(
            f"support_metric must be one of {SUPPORT_METRICS}, got {support_metric!r}"
        )
    mats = table.materialize()
    n, k = (mats.shape if mats.size else (0, max(1, table.depth)))
    if n == 0:
        return np.empty(0, dtype=np.int64)
    src, dst = residence.endpoints_of(mats.ravel())
    want_mni = support_metric == MNI
    encoded = encoder.encode_edge_embeddings(
        src.reshape(n, k), dst.reshape(n, k),
        residence.graph.labels,  # gammalint: allow[charge] -- label gathers are billed in the encode kernel's element_ops below
        return_positions=want_mni,
    )
    codes, positions = encoded if want_mni else (encoded, None)
    quick_ops = n * k * _QUICK_OPS_PER_EDGE
    if cpu:
        platform.cpu.work(quick_ops)
        # CPU baselines group with a hash table rather than a sort.
        platform.cpu.work(n * 2)
        uniq, counts = np.unique(codes, return_counts=True)
    else:
        platform.kernel.launch("aggregate:quick-pattern", element_ops=quick_ops)
        uniq, counts = sort_and_count(
            platform, codes, method=sort_method, p_size=p_size
        )
    if want_mni:
        # One extra sort-like pass per canonical position.
        extra_ops = positions.shape[1] * n
        if cpu:
            platform.cpu.work(extra_ops)
        else:
            platform.kernel.launch("aggregate:mni", element_ops=extra_ops)
        uniq, counts = mni_supports(codes, positions)
    pattern_table.merge(uniq, counts)
    return codes


def embedding_set_keys(mats: np.ndarray) -> np.ndarray:
    """Order-insensitive key per embedding row (the sorted id set packed to
    bytes).  Rows with equal keys are the same subgraph instance."""
    if mats.size == 0:
        return np.empty(0, dtype=np.void)
    ordered = np.sort(mats, axis=1)
    contiguous = np.ascontiguousarray(ordered)
    return contiguous.view(
        np.dtype((np.void, contiguous.dtype.itemsize * contiguous.shape[1]))
    ).ravel()


def dedup_embeddings(
    platform: GpuPlatform,
    table: EmbeddingTable,
    cpu: bool = False,
) -> int:
    """Remove duplicate embeddings (same id set, different discovery order).

    Returns the number of rows removed.  Charged as a sort+compact over the
    packed set keys.
    """
    with platform.telemetry.span("dedup", kind="phase"):
        mats = table.materialize()
        if mats.size == 0:
            return 0
        n = len(mats)
        if perf.use_reference():
            keys = embedding_set_keys(mats)
            __, first_idx = np.unique(keys, return_index=True)
        else:
            # Pack each sorted row into one int64 when the ids fit: a
            # scalar-key unique avoids the void-dtype byte-wise compare.
            # Packing is bijective (each id takes ``bits`` bits), so the
            # first-occurrence set is bit-identical to the reference arm.
            ordered = np.sort(mats, axis=1)
            max_id = int(ordered.max())
            bits = max(1, max_id.bit_length())
            if int(ordered.min()) >= 0 and \
                    ordered.shape[1] * bits <= _PACK_BITS_LIMIT:
                packed = ordered[:, 0].astype(np.int64)
                for col in range(1, ordered.shape[1]):
                    packed = (packed << bits) | ordered[:, col]
                __, first_idx = np.unique(packed, return_index=True)  # gammalint: allow[banned-sort] -- the sort is dedup's charged algorithm; the fast win is the int64 scalar key replacing the void-dtype compare
            else:
                keys = embedding_set_keys(mats)
                __, first_idx = np.unique(keys, return_index=True)  # gammalint: allow[banned-sort] -- too-wide rows fall back to the reference keying; dedup is inherently a sort
        keep = np.zeros(n, dtype=bool)
        keep[first_idx] = True
        log_n = float(np.log2(max(2, n)))
        if cpu:
            platform.cpu.work(n * log_n)
        else:
            platform.kernel.launch("dedup:sort", element_ops=n * log_n)
        return table.compact(keep)
