"""The extension primitives (paper §III-B1, §V-B Challenges 1–2).

One :class:`ExtensionEngine` serves every system in the reproduction; what
differs per system is its wiring:

* **results layout** — a :class:`~repro.core.memory_pool.WriteStrategy`
  (GAMMA's dynamic warp-block allocation, Pangolin's two-pass counting, or
  GSI's worst-case prealloc);
* **redundancy** — ``pre_merge=True`` groups embeddings sharing a parent
  and intersects the shared prefix's adjacency lists once per group
  (Optimization 2 / Fig. 8); ``False`` re-intersects every list for every
  embedding;
* **graph residency** — hybrid host memory (GAMMA), device memory
  (in-core baselines) or plain host memory (CPU baselines);
* **executor** — device kernels or CPU threads.

The *computation* is vectorized NumPy and identical across wirings (so all
systems provably produce the same embeddings); the *charged cost* follows
each system's actual algorithm, which is what the paper's figures compare.
Computation reads the CSR host-side; every device-visible access is charged
explicitly from the read multiset the engine derives for its mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .. import perf
from ..errors import ExecutionError
from ..gpusim import stats as st
from ..gpusim.platform import GpuPlatform
from ..gpusim.regions import expand_ranges
from .access_planner import AccessHeatPlanner
from .embedding_table import EDGE, VERTEX, EmbeddingTable
from .memory_pool import WriteStrategy
from .residence import GraphResidence

#: Each appended cell is (value, parent) = 16 bytes.
_RESULT_BYTES = 16


def _first_occurrence_mask(
    rows: np.ndarray, values: np.ndarray, modulus: int
) -> np.ndarray:
    """Boolean mask keeping the first occurrence of each (row, value) pair.

    The fast path packs each pair into one int64 key
    (``row * modulus + value``), valid only while the largest key fits in
    int64; past that bound it falls back to a stable two-key dedup on the
    unpacked pair.  Both paths keep exactly the first occurrence in input
    order, so the choice never changes results.
    """
    if len(rows) == 0:
        return np.ones(0, dtype=bool)
    keep = np.zeros(len(rows), dtype=bool)
    if int(rows.max()) <= (np.iinfo(np.int64).max - (modulus - 1)) // modulus:
        key = rows * np.int64(modulus) + values
        __, first_idx = np.unique(key, return_index=True)
        keep[first_idx] = True
    else:
        # np.lexsort is stable, so among equal pairs the earliest input
        # index sorts first and ``lead`` picks it.
        order = np.lexsort((values, rows))
        r, v = rows[order], values[order]
        lead = np.ones(len(order), dtype=bool)
        lead[1:] = (r[1:] != r[:-1]) | (v[1:] != v[:-1])
        keep[order[lead]] = True
    return keep


@dataclass
class ExtensionStats:
    """Work accounting for one extension call."""

    rows_in: int = 0
    rows_out: int = 0
    candidates: int = 0
    groups: int = 0
    kernel_ops: float = 0.0
    list_reads: int = 0
    per_row_counts: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )


class ExtensionEngine:
    """Vertex- and edge-extension over an embedding table."""

    def __init__(
        self,
        platform: GpuPlatform,
        residence: GraphResidence,
        write_strategy: WriteStrategy | None = None,
        pre_merge: bool = True,
        planner: AccessHeatPlanner | None = None,
        cpu: bool = False,
        cpu_op_factor: float = 1.0,
    ) -> None:
        self.platform = platform
        self.residence = residence
        self.write_strategy = write_strategy
        self.pre_merge = pre_merge
        self.planner = planner
        #: CPU engines charge traversal ops to the CPU executor instead of
        #: launching kernels; ``cpu_op_factor`` scales per-op cost to model
        #: algorithmic differences between CPU systems.
        self.cpu = cpu
        self.cpu_op_factor = cpu_op_factor
        self.graph = residence.graph
        #: When set, vertex extensions process the table in contiguous row
        #: chunks of this size, shrinking per-step device allocations (the
        #: halve-chunk degradation policy lowers this under memory
        #: pressure).  Chunking never changes the produced embeddings —
        #: each row's candidates come from exactly one source list and rows
        #: are processed in order — only the charge accounting (shared
        #: prefix groups split at chunk boundaries are re-read).
        self.chunk_rows: int | None = None

    # -- seeding ------------------------------------------------------------
    def seed_vertices(
        self, table: EmbeddingTable, label: int | None = None
    ) -> EmbeddingTable:
        """Install the initial v-ET column: all vertices (optionally label-
        filtered) — line 2 of Algorithm 1."""
        if table.kind != VERTEX:
            raise ExecutionError("seed_vertices requires a vertex table")
        with self.platform.telemetry.span("seed:vertex", kind="level", level=0):
            n = self.graph.num_vertices
            if label is None:
                values = np.arange(n, dtype=np.int64)
            else:
                values = np.flatnonzero(
                    self.graph.labels == label  # gammalint: allow[charge] -- label scan billed by _charge_scan below
                ).astype(np.int64)
            self._charge_scan(n)
            table.seed(values)
        return table

    def seed_edges(self, table: EmbeddingTable) -> EmbeddingTable:
        """Install the initial e-ET column: all length-1 embeddings — line 1
        of Algorithm 2."""
        if table.kind != EDGE:
            raise ExecutionError("seed_edges requires an edge table")
        with self.platform.telemetry.span("seed:edge", kind="level", level=0):
            values = np.arange(self.graph.num_edges, dtype=np.int64)
            self._charge_scan(self.graph.num_edges)
            table.seed(values)
        return table

    def _charge_scan(self, n: int) -> None:
        if self.cpu:
            self.platform.cpu.work(n * self.cpu_op_factor)
        else:
            self.platform.kernel.launch("seed", element_ops=n)

    # -- shared helpers -------------------------------------------------------
    def _adjacency_values(self, vertices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Host-side CSR expansion (uncharged; charging is explicit)."""
        starts = self.graph.offsets[vertices]  # gammalint: allow[charge] -- host-side compute mirror; device traffic charged via _charge_list_reads
        ends = self.graph.offsets[vertices + 1]  # gammalint: allow[charge] -- host-side compute mirror; device traffic charged via _charge_list_reads
        return (
            self.graph.neighbors[expand_ranges(starts, ends)],  # gammalint: allow[charge] -- host-side compute mirror; device traffic charged via _charge_list_reads
            ends - starts,
        )

    def _incident_values(self, vertices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        starts = self.graph.offsets[vertices]  # gammalint: allow[charge] -- host-side compute mirror; device traffic charged via _charge_list_reads
        ends = self.graph.offsets[vertices + 1]  # gammalint: allow[charge] -- host-side compute mirror; device traffic charged via _charge_list_reads
        return (
            self.graph.edge_ids[expand_ranges(starts, ends)],  # gammalint: allow[charge] -- host-side compute mirror; device traffic charged via _charge_list_reads
            ends - starts,
        )

    def _charge_list_reads(self, region_name: str, vertices: np.ndarray) -> None:
        """Charge adjacency/incidence list reads for the given vertex
        multiset through the residence's region (GPU engines only)."""
        if self.cpu or len(vertices) == 0:
            return
        region = getattr(self.residence, region_name, None)
        if region is None:
            return
        starts = self.graph.offsets[vertices]  # gammalint: allow[charge] -- derives the ranges handed to region.charge_ranges below
        ends = self.graph.offsets[vertices + 1]  # gammalint: allow[charge] -- derives the ranges handed to region.charge_ranges below
        passes = getattr(self.write_strategy, "passes", 1)
        for __ in range(passes):
            region.charge_ranges(starts, ends)

    def _prune_candidates(
        self,
        cand: np.ndarray,
        cand_row: np.ndarray,
        mats: np.ndarray,
        verify_cols: Sequence[int],
        depth: int,
        greater_than_cols: Sequence[int],
        less_than_cols: Sequence[int],
        injective: bool,
        label: int | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Apply constraint pushdown to a candidate batch; returns the
        surviving ``(cand, cand_row)`` in original candidate order.

        Every constraint is a pure per-candidate predicate of
        ``(row, value)``, so the survivor set is independent of evaluation
        order — with one charged exception: ``labels_of`` bills device reads
        for exactly the candidates that survived every *other* constraint,
        so the label filter always runs last.  The fast pipeline compresses
        the arrays after each predicate (cheap ordering filters first, edge
        verification on the shrunken remainder) instead of AND-ing
        full-width boolean masks; the reference pipeline keeps the original
        mask cascade.  Identical survivors, identical charges.
        """
        if perf.use_reference():
            mask = np.ones(len(cand), dtype=bool)
            for col in verify_cols:
                mask &= self.graph.has_edges(mats[cand_row, col], cand)
            if injective:
                for col in range(depth):
                    mask &= cand != mats[cand_row, col]
            for col in greater_than_cols:
                mask &= cand > mats[cand_row, col]
            for col in less_than_cols:
                mask &= cand < mats[cand_row, col]
            if label is not None:
                live = np.flatnonzero(mask)
                mask[live] = self.residence.labels_of(cand[live]) == label
            return cand[mask], cand_row[mask]

        # Cheap ordering/injectivity predicates first, fused into one mask;
        # the expensive edge-verification probes then run on whatever
        # survives.  Compression (dropping dead candidates) is adaptive: a
        # gather-copy of the int64 arrays only pays for itself when the
        # pending mask actually prunes, so low-selectivity filters keep
        # AND-ing masks instead (kCL's ordering filter halves the batch —
        # compress; SM's injectivity filter keeps ~everything — don't).
        pending: np.ndarray | None = None
        for col in greater_than_cols:
            m = cand > mats[cand_row, col]
            pending = m if pending is None else pending & m
        for col in less_than_cols:
            m = cand < mats[cand_row, col]
            pending = m if pending is None else pending & m
        if injective:
            # An ordering constraint against a column already implies the
            # candidate differs from it.
            ordered = set(greater_than_cols) | set(less_than_cols)
            for col in range(depth):
                if col in ordered:
                    continue
                m = cand != mats[cand_row, col]
                pending = m if pending is None else pending & m
        for col in verify_cols:
            cand, cand_row, pending = self._compress(cand, cand_row, pending)
            if len(cand) == 0:
                break
            m = self.graph.has_edges(mats[cand_row, col], cand)
            pending = m if pending is None else pending & m
        cand, cand_row, __ = self._compress(
            cand, cand_row, pending, force=True
        )
        if label is not None:
            keep = self.residence.labels_of(cand) == label
            cand, cand_row = cand[keep], cand_row[keep]
        return cand, cand_row

    @staticmethod
    def _compress(
        cand: np.ndarray,
        cand_row: np.ndarray,
        pending: np.ndarray | None,
        force: bool = False,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """Apply a pending mask when profitable (or ``force``\\ d)."""
        if pending is None:
            return cand, cand_row, None
        kept = int(np.count_nonzero(pending))
        if force or kept * 4 <= len(cand) * 3:
            return cand[pending], cand_row[pending], None
        return cand, cand_row, pending

    def _account_writes(
        self,
        per_row_counts: np.ndarray,
        kernel_ops: float,
        upper_bounds: np.ndarray,
    ) -> None:
        """Charge traversal compute + result layout for one extension."""
        if self.cpu:
            total = float(kernel_ops) + float(per_row_counts.sum())
            self.platform.cpu.work(total * self.cpu_op_factor)
            return
        if self.write_strategy is None:
            raise ExecutionError("GPU engines need a write strategy")
        self.write_strategy.account(
            per_row_counts, _RESULT_BYTES, kernel_ops,
            upper_bound_counts=upper_bounds,
        )

    # -- vertex extension (union mode) -------------------------------------
    def extend_vertices_any(
        self,
        table: EmbeddingTable,
        anchor_cols: Sequence[int],
        label: int | None = None,
        greater_than_col: int | None = None,
        greater_than_cols: Sequence[int] = (),
        less_than_cols: Sequence[int] = (),
        injective: bool = True,
    ) -> ExtensionStats:
        """Extend by one vertex adjacent to *at least one* anchor column —
        Definition 3.1's literal ``N_v(M)`` (the union of the embedding's
        neighborhoods), used by connected-subgraph enumeration (graphlets).

        Candidates are the union of the anchors' adjacency lists, deduped
        within each row; the same constraint arguments as
        :meth:`extend_vertices` apply.
        """
        tel = self.platform.telemetry
        depth = table.depth
        with tel.span("extend-vertices-any", kind="level", level=depth), \
                self.platform.resilience.phase(f"level:{depth}"):
            stats = self._extend_vertices_any_impl(
                table, anchor_cols, label, greater_than_col,
                greater_than_cols, less_than_cols, injective,
            )
        if tel.active:
            tel.metric("extension.rows_out", stats.rows_out,
                       level=depth, mode="vertex-any")
        return stats

    def _extend_vertices_any_impl(
        self,
        table: EmbeddingTable,
        anchor_cols: Sequence[int],
        label: int | None,
        greater_than_col: int | None,
        greater_than_cols: Sequence[int],
        less_than_cols: Sequence[int],
        injective: bool,
    ) -> ExtensionStats:
        if table.kind != VERTEX:
            raise ExecutionError("extend_vertices_any requires a vertex table")
        anchor_cols = sorted(set(int(c) for c in anchor_cols))
        depth = table.depth
        if not anchor_cols or anchor_cols[-1] >= depth or anchor_cols[0] < 0:
            raise ExecutionError(f"bad anchor columns {anchor_cols} for depth {depth}")
        greater_than_cols = list(greater_than_cols)
        if greater_than_col is not None:
            greater_than_cols.append(int(greater_than_col))
        less_than_cols = list(less_than_cols)

        stats = ExtensionStats(rows_in=table.num_embeddings)
        mats = table.materialize()
        n = len(mats)
        if n == 0:
            table.append_column(
                np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
            )
            return stats

        # Reads: every anchor list per row (deduped when pre-merge groups
        # shared vertices, as in edge extension).
        anchor_vertices = mats[:, anchor_cols].ravel()
        if self.pre_merge:
            read_vertices = np.unique(anchor_vertices)
        else:
            read_vertices = anchor_vertices
        stats.list_reads = len(read_vertices)
        stats.kernel_ops = float(self.residence.degrees_of(anchor_vertices).sum())
        if self.planner is not None:
            self.planner.plan_extension(read_vertices)
        self._charge_list_reads("neighbors", read_vertices)

        # Candidates: concatenate every anchor's neighborhood per row.
        cand, lengths = self._adjacency_values(anchor_vertices)
        row_of_anchor = np.repeat(
            np.arange(n, dtype=np.int64), len(anchor_cols)
        )
        cand_row = np.repeat(row_of_anchor, lengths)
        stats.candidates = len(cand)
        upper = np.bincount(cand_row, minlength=n).astype(np.int64)

        cand, cand_row = self._prune_candidates(
            cand, cand_row, mats, (), depth,
            greater_than_cols, less_than_cols, injective, label,
        )
        # Dedup within a row: a candidate adjacent to several anchors
        # appears once per anchor.  Duplicates of a (row, value) pair share
        # every constraint verdict, so deduping the *survivors* keeps
        # exactly the first occurrence the full-width dedup would keep.
        keep = _first_occurrence_mask(cand_row, cand, self.graph.num_vertices + 1)
        cand, cand_row = cand[keep], cand_row[keep]

        counts = np.bincount(cand_row, minlength=n).astype(np.int64)
        stats.per_row_counts = counts
        self._account_writes(counts, stats.kernel_ops, upper)
        order = np.argsort(cand_row, kind="stable")
        table.append_column(cand[order], cand_row[order])
        stats.rows_out = len(cand)
        self.platform.counters.add(st.EXTENSION_PASSES)
        self.platform.counters.add(st.EMBEDDINGS_PRODUCED, stats.rows_out)
        return stats

    # -- vertex extension ------------------------------------------------------
    def extend_vertices(
        self,
        table: EmbeddingTable,
        anchor_cols: Sequence[int],
        label: int | None = None,
        greater_than_col: int | None = None,
        greater_than_cols: Sequence[int] = (),
        less_than_cols: Sequence[int] = (),
        injective: bool = True,
    ) -> ExtensionStats:
        """Extend every embedding by one vertex adjacent to all anchors.

        ``anchor_cols`` are the columns whose vertices the new vertex must
        neighbor (the matched query neighbors in WOJ, all columns in kCL).
        ``label`` filters candidates by vertex label;
        ``greater_than_cols``/``less_than_cols`` enforce id-ordering
        constraints against already-matched columns (kCL canonicality,
        symmetry-breaking restrictions); ``greater_than_col`` is the
        single-column shorthand; ``injective`` excludes vertices already in
        the embedding.

        Constraint pushdown is the paper's §III-B3: "extended embeddings
        violating the query graph's constraint can be pruned immediately".
        """
        tel = self.platform.telemetry
        depth = table.depth
        with tel.span("extend-vertices", kind="level", level=depth), \
                self.platform.resilience.phase(f"level:{depth}"):
            stats = self._extend_vertices_impl(
                table, anchor_cols, label, greater_than_col,
                greater_than_cols, less_than_cols, injective,
            )
        if tel.active:
            tel.metric("extension.rows_out", stats.rows_out,
                       level=depth, mode="vertex")
        return stats

    def _extend_vertices_impl(
        self,
        table: EmbeddingTable,
        anchor_cols: Sequence[int],
        label: int | None,
        greater_than_col: int | None,
        greater_than_cols: Sequence[int],
        less_than_cols: Sequence[int],
        injective: bool,
    ) -> ExtensionStats:
        if table.kind != VERTEX:
            raise ExecutionError("extend_vertices requires a vertex table")
        anchor_cols = sorted(set(int(c) for c in anchor_cols))
        depth = table.depth
        if not anchor_cols or anchor_cols[-1] >= depth or anchor_cols[0] < 0:
            raise ExecutionError(f"bad anchor columns {anchor_cols} for depth {depth}")
        greater_than_cols = list(greater_than_cols)
        if greater_than_col is not None:
            greater_than_cols.append(int(greater_than_col))
        less_than_cols = list(less_than_cols)
        for col in greater_than_cols + less_than_cols:
            if not 0 <= col < depth:
                raise ExecutionError(f"ordering column {col} out of range")

        stats = ExtensionStats(rows_in=table.num_embeddings)
        mats = table.materialize()
        n = len(mats)
        if n == 0:
            table.append_column(
                np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
            )
            return stats

        tail_col = depth - 1 if (depth - 1) in anchor_cols else None
        prefix_cols = [c for c in anchor_cols if c != tail_col]
        grouped = bool(self.pre_merge and tail_col is not None and prefix_cols)
        parents = (
            table.column_parents(table.depth - 1)
            if grouped and depth > 1 else None
        )

        if self.chunk_rows is not None and n > self.chunk_rows:
            return self._extend_vertices_rows_chunked(
                table, stats, mats, parents, anchor_cols, prefix_cols,
                tail_col, label, greater_than_cols, less_than_cols,
                injective,
            )

        # ---- derive this mode's read multiset + traversal op count ---------
        kernel_ops, read_vertices, groups = self._vertex_read_plan(
            parents, mats, prefix_cols, tail_col
        )
        stats.kernel_ops = kernel_ops
        stats.groups = groups
        stats.list_reads = len(read_vertices)
        if self.planner is not None:
            self.planner.plan_extension(read_vertices)
        self._charge_list_reads("neighbors", read_vertices)

        # ---- generate candidates from each row's cheapest anchor ------------
        # (expanding the smallest adjacency list and verifying the others —
        # the intersection order every real GPM kernel uses)
        offsets = self.graph.offsets  # gammalint: allow[charge] -- degree probes for anchor choice; list reads charged above
        neighbors = self.graph.neighbors  # gammalint: allow[charge] -- degree probes for anchor choice; list reads charged above
        anchor_deg = np.stack(
            [offsets[mats[:, c] + 1] - offsets[mats[:, c]] for c in anchor_cols],
            axis=1,
        )
        source_choice = np.argmin(anchor_deg, axis=1)
        cand_parts: list[np.ndarray] = []
        row_parts: list[np.ndarray] = []
        # Upper bound per row = its source list length (each row belongs to
        # exactly one source part).
        upper = np.zeros(n, dtype=np.int64)
        for idx, source_col in enumerate(anchor_cols):
            rows = np.flatnonzero(source_choice == idx)
            if len(rows) == 0:
                continue
            # Reuse the degree table instead of re-gathering CSR offsets.
            lengths = anchor_deg[rows, idx]
            starts = offsets[mats[rows, source_col]]
            cand = neighbors[expand_ranges(starts, starts + lengths)]
            cand_row = rows.repeat(lengths)
            upper[rows] = lengths
            stats.candidates += len(cand)
            verify_cols = [c for c in anchor_cols if c != source_col]
            cand, cand_row = self._prune_candidates(
                cand, cand_row, mats, verify_cols, depth,
                greater_than_cols, less_than_cols, injective, label,
            )
            cand_parts.append(cand)
            row_parts.append(cand_row)

        cand = np.concatenate(cand_parts) if cand_parts else np.empty(0, np.int64)
        cand_row = np.concatenate(row_parts) if row_parts else np.empty(0, np.int64)

        counts = np.bincount(cand_row, minlength=n).astype(np.int64)
        stats.per_row_counts = counts
        self._account_writes(counts, kernel_ops, upper)

        # Keep output grouped by parent row (BFS order) regardless of which
        # source column produced a candidate.
        order = np.argsort(cand_row, kind="stable")
        table.append_column(cand[order], cand_row[order])
        stats.rows_out = len(cand)
        self.platform.counters.add(st.EXTENSION_PASSES)
        self.platform.counters.add(st.EMBEDDINGS_PRODUCED, stats.rows_out)
        return stats

    def _extend_vertices_rows_chunked(
        self,
        table: EmbeddingTable,
        stats: ExtensionStats,
        mats: np.ndarray,
        parents: np.ndarray | None,
        anchor_cols: list[int],
        prefix_cols: list[int],
        tail_col: int | None,
        label: int | None,
        greater_than_cols: list[int],
        less_than_cols: list[int],
        injective: bool,
    ) -> ExtensionStats:
        """Vertex extension over contiguous row chunks of ``chunk_rows``.

        Produces the exact embeddings of the unchunked path: every row's
        candidates come from its single cheapest source list, rows are
        processed in ascending order, and each chunk is stably sorted by
        row before concatenation.  Charges differ — each chunk plans,
        reads, and allocates independently, which is the point: per-chunk
        device allocations (e.g. the prealloc strategy's worst-case
        buffer) shrink with the chunk size.
        """
        n = len(mats)
        depth = mats.shape[1]
        chunk = int(self.chunk_rows or n)
        offsets = self.graph.offsets  # gammalint: allow[charge] -- degree probes for anchor choice; list reads charged per chunk below
        neighbors = self.graph.neighbors  # gammalint: allow[charge] -- degree probes for anchor choice; list reads charged per chunk below
        cand_parts: list[np.ndarray] = []
        row_parts: list[np.ndarray] = []
        count_parts: list[np.ndarray] = []
        for lo in range(0, n, chunk):
            hi = min(lo + chunk, n)
            sub = mats[lo:hi]
            sub_parents = parents[lo:hi] if parents is not None else None
            kernel_ops, read_vertices, groups = self._vertex_read_plan(
                sub_parents, sub, prefix_cols, tail_col
            )
            stats.kernel_ops += kernel_ops
            stats.groups += groups
            stats.list_reads += len(read_vertices)
            if self.planner is not None:
                self.planner.plan_extension(read_vertices)
            self._charge_list_reads("neighbors", read_vertices)

            m = hi - lo
            anchor_deg = np.stack(
                [offsets[sub[:, c] + 1] - offsets[sub[:, c]]
                 for c in anchor_cols],
                axis=1,
            )
            source_choice = np.argmin(anchor_deg, axis=1)
            upper = np.zeros(m, dtype=np.int64)
            chunk_cands: list[np.ndarray] = []
            chunk_rows_out: list[np.ndarray] = []
            for idx, source_col in enumerate(anchor_cols):
                rows = np.flatnonzero(source_choice == idx)
                if len(rows) == 0:
                    continue
                lengths = anchor_deg[rows, idx]
                starts = offsets[sub[rows, source_col]]
                cand = neighbors[expand_ranges(starts, starts + lengths)]
                cand_row = rows.repeat(lengths)
                upper[rows] = lengths
                stats.candidates += len(cand)
                verify_cols = [c for c in anchor_cols if c != source_col]
                cand, cand_row = self._prune_candidates(
                    cand, cand_row, sub, verify_cols, depth,
                    greater_than_cols, less_than_cols, injective, label,
                )
                chunk_cands.append(cand)
                chunk_rows_out.append(cand_row)

            cand = (np.concatenate(chunk_cands) if chunk_cands
                    else np.empty(0, np.int64))
            cand_row = (np.concatenate(chunk_rows_out) if chunk_rows_out
                        else np.empty(0, np.int64))
            counts = np.bincount(cand_row, minlength=m).astype(np.int64)
            count_parts.append(counts)
            self._account_writes(counts, kernel_ops, upper)
            order = np.argsort(cand_row, kind="stable")
            cand_parts.append(cand[order])
            row_parts.append(cand_row[order] + lo)

        cand = np.concatenate(cand_parts) if cand_parts else np.empty(0, np.int64)
        cand_row = np.concatenate(row_parts) if row_parts else np.empty(0, np.int64)
        stats.per_row_counts = (
            np.concatenate(count_parts) if count_parts
            else np.empty(0, np.int64)
        )
        table.append_column(cand, cand_row)
        stats.rows_out = len(cand)
        self.platform.counters.add(st.EXTENSION_PASSES)
        self.platform.counters.add(st.EMBEDDINGS_PRODUCED, stats.rows_out)
        return stats

    def _vertex_read_plan(
        self,
        parents: np.ndarray | None,
        mats: np.ndarray,
        prefix_cols: list[int],
        tail_col: int | None,
    ) -> tuple[float, np.ndarray, int]:
        """Traversal-op count and adjacency-read multiset for one vertex
        extension, following the mode's actual algorithm:

        * **pre-merge** (Fig. 8(b)): per *group* (= shared parent), read and
          merge the prefix anchors' lists once into ``L_m``; per row, merge
          ``N(tail)`` against ``L_m``.
        * **naive** (Fig. 8(a)): per *row*, read and merge every anchor's
          full list.

        ``parents`` is the last column's parent array (``None`` when the
        mode is ungrouped); chunked extensions pass the chunk's slice.

        Returns ``(kernel_ops, read_vertex_multiset, num_groups)``.
        """
        n = len(mats)
        anchor_cols = prefix_cols + ([tail_col] if tail_col is not None else [])
        degrees = self.residence.degrees_of
        grouped = (
            self.pre_merge and tail_col is not None and prefix_cols
            and parents is not None
        )
        if not grouped:
            vertices = mats[:, anchor_cols].ravel()
            ops = float(degrees(vertices).sum())
            return ops, vertices, n

        group_ids, first_rows = np.unique(parents, return_index=True)
        group_mats = mats[first_rows]
        prefix_vertices = group_mats[:, prefix_cols].ravel()
        prefix_deg = degrees(prefix_vertices)
        group_ops = float(prefix_deg.sum())

        tail_vertices = mats[:, tail_col]
        tail_deg = degrees(tail_vertices)
        # |L_m| is bounded by the smallest prefix list in the group.
        lm_bound = prefix_deg.reshape(len(group_mats), len(prefix_cols)).min(axis=1)
        bound_by_parent = np.zeros(
            int(parents.max()) + 1 if len(parents) else 1, dtype=np.float64
        )
        bound_by_parent[group_ids] = lm_bound
        row_ops = float(tail_deg.sum() + bound_by_parent[parents].sum())

        vertices = np.concatenate([prefix_vertices, tail_vertices])
        return group_ops + row_ops, vertices, len(group_ids)

    # -- edge extension -----------------------------------------------------------
    def extend_edges(self, table: EmbeddingTable,
                     greater_than_col: "int | None" = None) -> ExtensionStats:
        """Extend every edge-oriented embedding by one adjacent edge
        (Definition 3.1's ``Ext_e``): any edge incident to any embedding
        vertex that is not already in the embedding.

        ``greater_than_col`` restricts candidates to edge ids strictly
        greater than the edge in that column (the planner's ordered-growth
        restriction: with column 0 holding each row's minimum edge, every
        edge *pair* is generated exactly once and the downstream dedup
        pass becomes unnecessary)."""
        tel = self.platform.telemetry
        depth = table.depth
        with tel.span("extend-edges", kind="level", level=depth), \
                self.platform.resilience.phase(f"level:{depth}"):
            stats = self._extend_edges_impl(table, greater_than_col)
        if tel.active:
            tel.metric("extension.rows_out", stats.rows_out,
                       level=depth, mode="edge")
        return stats

    def _extend_edges_impl(self, table: EmbeddingTable,
                           greater_than_col: "int | None" = None,
                           ) -> ExtensionStats:
        if table.kind != EDGE:
            raise ExecutionError("extend_edges requires an edge table")
        stats = ExtensionStats(rows_in=table.num_embeddings)
        mats = table.materialize()
        n, depth = (mats.shape if mats.size else (0, table.depth))
        if n == 0:
            table.append_column(
                np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
            )
            return stats

        # Embedding vertices: endpoints of every edge column, deduped per row.
        flat_edges = mats.ravel()
        src, dst = self.residence.endpoints_of(flat_edges)
        verts = np.empty((n, 2 * depth), dtype=np.int64)
        verts[:, 0::2] = src.reshape(n, depth)
        verts[:, 1::2] = dst.reshape(n, depth)
        verts_sorted = np.sort(verts, axis=1)
        fresh = np.ones_like(verts_sorted, dtype=bool)
        fresh[:, 1:] = verts_sorted[:, 1:] != verts_sorted[:, :-1]
        row_of_vert = np.repeat(
            np.arange(n, dtype=np.int64), fresh.sum(axis=1)
        )
        distinct_verts = verts_sorted[fresh]

        # Traversal ops: one incident-list merge per (row, vertex).
        incident_deg = self.residence.degrees_of(distinct_verts)
        stats.kernel_ops = float(incident_deg.sum())
        # Reads: pre-merge dedups lists shared across rows; naive re-reads.
        if self.pre_merge:
            read_vertices = np.unique(distinct_verts)
            stats.groups = len(read_vertices)
        else:
            read_vertices = distinct_verts
            stats.groups = n
        stats.list_reads = len(read_vertices)
        if self.planner is not None:
            self.planner.plan_extension(read_vertices)
        self._charge_list_reads("edge_slots", read_vertices)

        # Candidate edges.
        cand, lengths = self._incident_values(distinct_verts)
        cand_row = np.repeat(row_of_vert, lengths)
        stats.candidates = len(cand)

        # Drop edges already in the embedding, then dedup within each row
        # (an edge incident to two embedding vertices is generated twice).
        mask = np.ones(len(cand), dtype=bool)
        for col in range(depth):
            mask &= cand != mats[cand_row, col]
        if greater_than_col is not None:
            # Ordered growth: the per-warp kernel compares each candidate
            # against one resident column, so the restriction prunes before
            # any output is written (the comparison rides the existing
            # already-present check, no extra charged pass).
            mask &= cand > mats[cand_row, greater_than_col]
        mask &= _first_occurrence_mask(cand_row, cand, self.graph.num_edges + 1)

        counts = np.bincount(cand_row[mask], minlength=n).astype(np.int64)
        stats.per_row_counts = counts
        per_row_bound = np.bincount(row_of_vert, weights=incident_deg, minlength=n)
        self._account_writes(counts, stats.kernel_ops, per_row_bound.astype(np.int64))
        table.append_column(cand[mask], cand_row[mask])
        stats.rows_out = int(mask.sum())
        self.platform.counters.add(st.EXTENSION_PASSES)
        self.platform.counters.add(st.EMBEDDINGS_PRODUCED, stats.rows_out)
        return stats
