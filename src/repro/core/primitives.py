"""Paper-literal user interface (Fig. 3).

The paper presents GAMMA to users as five free-standing interfaces over
shared data structures::

    Vertex_Extension(embedding_table ET, graph_data G_d);
    Edge_Extension(embedding_table ET, graph_data G_d);
    Aggregation(embedding_table ET, map_function m_f);
    Filtering(embedding_table ET, pattern_table PT = NULL, constraint c);
    output_results(embedding_table ET = NULL, pattern_table PT = NULL);

:class:`repro.core.Gamma` exposes the same operations as methods; this
module provides the literal free-function spelling for code that wants to
read exactly like the paper's Algorithms 1 and 2 (see
``tests/core/test_primitives.py`` for both algorithms transcribed
line-by-line).  Tables remember the engine that created them, so the
functions need no explicit engine argument — ``G_d`` is carried by the
engine, as in the paper's framework.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ExecutionError
from ..graph.patterns import Pattern
from .embedding_table import EmbeddingTable
from .filtering import MinSupport
from .pattern_table import PatternTable


@dataclass(frozen=True)
class Constraint:
    """The paper's ``constraint`` data structure: either a query graph's
    structure (SM) or a minimum support (FPM)."""

    query_graph: Optional[Pattern] = None
    min_support: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.query_graph is None) == (self.min_support is None):
            raise ExecutionError(
                "a constraint is either a query graph or a support threshold"
            )


def _engine_of(table: EmbeddingTable):
    engine = getattr(table, "owner", None)
    if engine is None:
        raise ExecutionError(
            "this table was not created by an engine; use Gamma.new_*_table"
        )
    return engine


def vertex_extension(
    table: EmbeddingTable,
    anchor_cols,
    label: int | None = None,
    greater_than_col: int | None = None,
) -> EmbeddingTable:
    """``Vertex_Extension(ET, G_d)``: extend each embedding by one vertex."""
    _engine_of(table).vertex_extension(
        table, anchor_cols, label=label, greater_than_col=greater_than_col
    )
    return table


def edge_extension(table: EmbeddingTable) -> EmbeddingTable:
    """``Edge_Extension(ET, G_d)``: extend each embedding by one edge."""
    _engine_of(table).edge_extension(table)
    return table


def aggregation(
    table: EmbeddingTable,
    pattern_table: PatternTable,
    map_function: str = "canonical",
) -> np.ndarray:
    """``Aggregation(ET, m_f)``: map embeddings to patterns and count.

    ``map_function`` names the supported canonical maps: ``"canonical"``
    (instance-frequency support) or ``"canonical-mni"``.
    """
    metric = {"canonical": "instances", "canonical-mni": "mni"}.get(map_function)
    if metric is None:
        raise ExecutionError(
            "map_function must be 'canonical' or 'canonical-mni'"
        )
    return _engine_of(table).aggregation(
        table, pattern_table, support_metric=metric
    )


def filtering(
    table: EmbeddingTable,
    pattern_table: PatternTable | None = None,
    constraint: Constraint | None = None,
    keep_mask: np.ndarray | None = None,
    row_codes: np.ndarray | None = None,
) -> int:
    """``Filtering(ET, PT, constraint)``: drop embeddings/patterns that
    violate the constraint.  Returns rows removed."""
    engine = _engine_of(table)
    if keep_mask is not None:
        return engine.filtering(table, keep_mask=keep_mask)
    if constraint is None:
        raise ExecutionError("filtering needs a constraint or a mask")
    if constraint.min_support is not None:
        return engine.filtering(
            table,
            pattern_table=pattern_table,
            row_codes=row_codes,
            constraint=MinSupport(constraint.min_support),
        )
    # Query-graph constraint: verify every pattern edge on the full rows.
    pattern = constraint.query_graph
    mats = table.materialize()
    if mats.shape[1] < pattern.num_vertices:
        raise ExecutionError(
            "query-graph filtering needs fully matched embeddings"
        )
    graph = engine.graph
    order = pattern.matching_order()  # gammalint: allow[planorder] -- verification, not planning: any fixed vertex enumeration works, rows are already fully matched
    mask = np.ones(len(mats), dtype=bool)
    position = {qv: i for i, qv in enumerate(order)}
    for u, v in pattern.edges:
        mask &= graph.has_edges(
            mats[:, position[u]], mats[:, position[v]]
        )
    if pattern.labeled:
        for qv in range(pattern.num_vertices):
            mask &= (
                graph.labels[mats[:, position[qv]]] == pattern.label(qv)  # gammalint: allow[charge] -- verification probe; billed by the filter kernel engine.filtering launches
            )
    return engine.filtering(table, keep_mask=mask)


def output_results(
    table: EmbeddingTable | None = None,
    pattern_table: PatternTable | None = None,
):
    """``output_results(ET, PT)``."""
    if table is not None:
        return _engine_of(table).output_results(
            table=table, pattern_table=pattern_table
        )
    if pattern_table is not None:
        return pattern_table.as_dict()
    raise ExecutionError("nothing to output")
