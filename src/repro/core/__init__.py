"""GAMMA core: the paper's primary contribution.

Embedding tables (§III-A/§V-A), the extension–aggregation–filtering
primitives (§III-B), the three optimizations of §V-B (dynamic allocation,
pre-merge grouping, out-of-core multi-merge sort), the self-adaptive
access-heat planner (§IV) and the :class:`~repro.core.framework.Gamma`
façade that wires them to the simulated platform.
"""

from .access_planner import (
    ACCESS_MODES,
    HYBRID,
    UNIFIED_ONLY,
    ZEROCOPY_ONLY,
    AccessHeatPlanner,
)
from .aggregation import (
    INSTANCES,
    MNI,
    SUPPORT_METRICS,
    aggregate_edge_table,
    dedup_embeddings,
    embedding_set_keys,
    mni_supports,
)
from .embedding_table import EDGE, VERTEX, Column, EmbeddingTable
from .extension import ExtensionEngine, ExtensionStats
from .filtering import MinSupport, QueryConstraint, filter_by_support, filter_rows
from .framework import Gamma, GammaConfig
from .memory_pool import (
    DEFAULT_BLOCK_BYTES,
    DYNAMIC,
    PREALLOC,
    STRATEGIES,
    TWO_PASS,
    DynamicAllocStrategy,
    MemoryPool,
    PreallocStrategy,
    TwoPassStrategy,
    WriteStrategy,
    make_write_strategy,
)
from .pattern_table import PatternTable
from .primitives import (
    Constraint,
    aggregation,
    edge_extension,
    filtering,
    output_results,
    vertex_extension,
)
from .residence import GammaResidence, GraphResidence, HostResidence, InCoreResidence
from .spill import DISK_IO, SpillPolicy, SpillStore
from .sort import (
    CPU_SORT,
    DEFAULT_P_SIZE,
    MULTI_MERGE,
    NAIVE_MERGE,
    SORT_METHODS,
    XTR2SORT,
    device_sort_segments,
    multi_merge,
    out_of_core_sort,
    sort_and_count,
)

__all__ = [
    "ACCESS_MODES",
    "HYBRID",
    "UNIFIED_ONLY",
    "ZEROCOPY_ONLY",
    "AccessHeatPlanner",
    "INSTANCES",
    "MNI",
    "SUPPORT_METRICS",
    "aggregate_edge_table",
    "dedup_embeddings",
    "embedding_set_keys",
    "mni_supports",
    "EDGE",
    "VERTEX",
    "Column",
    "EmbeddingTable",
    "ExtensionEngine",
    "ExtensionStats",
    "MinSupport",
    "QueryConstraint",
    "filter_by_support",
    "filter_rows",
    "Gamma",
    "GammaConfig",
    "DEFAULT_BLOCK_BYTES",
    "DYNAMIC",
    "PREALLOC",
    "STRATEGIES",
    "TWO_PASS",
    "DynamicAllocStrategy",
    "MemoryPool",
    "PreallocStrategy",
    "TwoPassStrategy",
    "WriteStrategy",
    "make_write_strategy",
    "PatternTable",
    "Constraint",
    "aggregation",
    "edge_extension",
    "filtering",
    "output_results",
    "vertex_extension",
    "GammaResidence",
    "GraphResidence",
    "HostResidence",
    "InCoreResidence",
    "CPU_SORT",
    "DEFAULT_P_SIZE",
    "MULTI_MERGE",
    "NAIVE_MERGE",
    "SORT_METHODS",
    "XTR2SORT",
    "DISK_IO",
    "SpillPolicy",
    "SpillStore",
    "device_sort_segments",
    "multi_merge",
    "out_of_core_sort",
    "sort_and_count",
]
