"""The embedding table (paper §III-A, §V-A).

Intermediate results are stored column-first: each extension appends one
column, and every cell holds a vertex (v-ET) or edge (e-ET) id plus a
pointer to its predecessor in the previous column.  Rows extended from the
same parent share that parent cell, so the columnar layout *is* the
prefix-tree compression of Fig. 6(b).

The table is host-resident (its size can exceed device memory by orders of
magnitude); reads stream through unified memory with prefetch, and
extension results are first written to a device-side buffer and flushed to
host after the extension (Fig. 6).  ``compact`` implements the three-stage
GPU compression of §V-A: mark, prefix-scan, parallel collect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..errors import ExecutionError
from ..gpusim import clock as clk
from ..gpusim.platform import GpuPlatform
from ..gpusim.warp import warp_exclusive_scan

VERTEX = "vertex"
EDGE = "edge"

#: int64 ids + int64 parent pointer per cell.
_CELL_BYTES = 16


@dataclass
class Column:
    """One extension level: ids plus parent row pointers (-1 at the root)."""

    values: np.ndarray
    parents: np.ndarray

    def __post_init__(self) -> None:
        self.values = np.ascontiguousarray(self.values, dtype=np.int64)
        self.parents = np.ascontiguousarray(self.parents, dtype=np.int64)
        if self.values.shape != self.parents.shape:
            raise ExecutionError("column values/parents must align")

    def __len__(self) -> int:
        return len(self.values)


class SpilledColumn:
    """A column evicted to disk (see :mod:`repro.core.spill`)."""

    __slots__ = ("handle", "length")

    def __init__(self, handle: int, length: int) -> None:
        self.handle = handle
        self.length = length

    def __len__(self) -> int:
        return self.length


class EmbeddingTable:
    """Columnar, host-resident table of partial embeddings."""

    def __init__(
        self,
        platform: GpuPlatform,
        kind: str = VERTEX,
        name: str = "ET",
        device_resident: bool = False,
        write_buffer_bytes: int = 1 << 20,
        charged: bool = True,
    ) -> None:
        if kind not in (VERTEX, EDGE):
            raise ExecutionError(f"embedding table kind must be vertex|edge, got {kind}")
        self.platform = platform
        self.kind = kind
        self.name = name
        self.columns: List[Column] = []
        #: In-core baselines (Pangolin) keep the ET in device memory; they
        #: OOM where GAMMA keeps going.
        self.device_resident = device_resident
        #: CPU engines pass ``charged=False``: the table lives in plain host
        #: memory and its traversal cost is billed per-op by the engine.
        self.charged = charged
        self._device_allocs: list = []
        self._registered_bytes = 0
        if not device_resident and charged and write_buffer_bytes:
            # GAMMA keeps a device write buffer for extension results and
            # flushes it to host after each extension (§V-A).
            self._write_buffer = platform.device.allocate(
                write_buffer_bytes, f"{name}:write-buffer"
            )
        else:
            self._write_buffer = None
        self._spill_store = None
        self._spill_policy = None

    # -- spilling (extension beyond host memory; repro.core.spill) ----------
    def attach_spill(self, store, policy) -> None:
        """Enable disk spilling: once the table's host footprint crosses the
        policy's budget, old columns move to ``store`` and are faulted back
        transparently on access."""
        self._spill_store = store
        self._spill_policy = policy

    @property
    def spilled_columns(self) -> int:
        return sum(isinstance(c, SpilledColumn) for c in self.columns)

    def _column_arrays(self, level: int) -> tuple[np.ndarray, np.ndarray]:
        """(values, parents) of one level, faulting from disk if spilled."""
        column = self.columns[level]
        if isinstance(column, SpilledColumn):
            packed = self._spill_store.fetch(column.handle)
            return packed[0], packed[1]
        return column.values, column.parents

    def _maybe_spill(self) -> None:
        if self._spill_store is None or self._spill_policy is None:
            return
        column_bytes = [len(c) * _CELL_BYTES for c in self.columns]
        resident = [not isinstance(c, SpilledColumn) for c in self.columns]
        for index in self._spill_policy.columns_to_spill(column_bytes, resident):
            column = self.columns[index]
            packed = np.stack([column.values, column.parents])
            handle = self._spill_store.spill(packed)
            self.columns[index] = SpilledColumn(handle, len(column))
            freed = len(column) * _CELL_BYTES
            if self._registered_bytes >= freed:
                self.platform.unregister_host_bytes(freed, self.name)
                self._registered_bytes -= freed

    def column_values(self, level: int) -> np.ndarray:
        """One level's ids (host-side view; faults from disk if spilled)."""
        return self._column_arrays(level)[0]

    def column_parents(self, level: int) -> np.ndarray:
        """One level's parent pointers (faults from disk if spilled)."""
        return self._column_arrays(level)[1]

    # -- shape -------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Embedding length (number of columns)."""
        return len(self.columns)

    @property
    def num_embeddings(self) -> int:
        """Rows in the last column = number of current embeddings."""
        return len(self.columns[-1]) if self.columns else 0

    @property
    def total_cells(self) -> int:
        return sum(len(col) for col in self.columns)

    @property
    def nbytes(self) -> int:
        return self.total_cells * _CELL_BYTES

    # -- growth --------------------------------------------------------------
    def seed(self, values: np.ndarray) -> None:
        """Install the initial (root) column."""
        if self.columns:
            raise ExecutionError("table already seeded")
        values = np.ascontiguousarray(values, dtype=np.int64)
        parents = np.full(len(values), -1, dtype=np.int64)
        self._store_column(Column(values, parents))

    def append_column(self, values: np.ndarray, parents: np.ndarray) -> None:
        """Append one extension level.

        ``parents[i]`` indexes the previous column.  Charges the device
        write-buffer traffic and the flush of results back to host memory.
        """
        if not self.columns:
            raise ExecutionError("seed the table before appending")
        parents = np.ascontiguousarray(parents, dtype=np.int64)
        if len(parents) and (
            parents.min() < 0 or parents.max() >= len(self.columns[-1])
        ):
            raise ExecutionError("parent pointers out of range")
        self._store_column(Column(values, parents))

    def _store_column(self, column: Column) -> None:
        nbytes = len(column) * _CELL_BYTES
        platform = self.platform
        if not self.charged:
            platform.register_host_bytes(nbytes, self.name, charge=False)
            self._registered_bytes += nbytes
        elif self.device_resident:
            # In-core: the new column must fit device memory, or we crash.
            alloc = platform.device.allocate(nbytes, f"{self.name}:col{self.depth}")
            self._device_allocs.append(alloc)
            platform.clock.advance(
                clk.DEVICE_MEM, nbytes / platform.cost.device_bandwidth
            )
        else:
            # Out-of-core: write to device buffer, then flush to host.
            platform.clock.advance(
                clk.DEVICE_MEM, nbytes / platform.cost.device_bandwidth
            )
            platform.pcie.writeback(nbytes)
            if platform.telemetry.active:
                platform.telemetry.metric(
                    "et.flush_bytes", nbytes, table=self.name
                )
            if self._oversized_for_host(nbytes):
                # With spilling enabled, a column too large for the host
                # budget streams straight to disk instead of OOMing.
                packed = np.stack([column.values, column.parents])
                handle = self._spill_store.spill(packed)
                self.columns.append(SpilledColumn(handle, len(column)))
                return
            platform.register_host_bytes(nbytes, self.name, charge=False)
            self._registered_bytes += nbytes
        self.columns.append(column)
        self._maybe_spill()

    def _oversized_for_host(self, nbytes: int) -> bool:
        if self._spill_store is None or self._spill_policy is None:
            return False
        available = (
            self.platform.spec.host_memory_bytes - self.platform.host_used
        )
        return nbytes > min(available, self._spill_policy.host_budget_bytes)

    # -- checkpoint support --------------------------------------------------
    def snapshot_columns(self) -> list[dict]:
        """Copy every column for a checkpoint (uncharged bookkeeping)."""
        records = []
        for column in self.columns:
            if isinstance(column, SpilledColumn):
                packed = self._spill_store.peek(column.handle)
                records.append({
                    "values": packed[0].copy(),
                    "parents": packed[1].copy(),
                    "spilled": True,
                })
            else:
                records.append({
                    "values": column.values.copy(),
                    "parents": column.parents.copy(),
                    "spilled": False,
                })
        return records

    def restore_columns(self, records: list[dict]) -> None:
        """Replace the table's contents from :meth:`snapshot_columns` output.

        Current columns (and their host/device accounting) are dropped, then
        each record is re-installed: spilled columns go back to the attached
        store (uncharged — the restored clock already carries the original
        spill cost), resident columns re-register their host bytes.  Callers
        overwrite the platform's clock/counters afterwards, so nothing here
        bills simulated time.
        """
        platform = self.platform
        if self._registered_bytes:
            platform.unregister_host_bytes(self._registered_bytes, self.name)
            self._registered_bytes = 0
        if self._spill_store is not None:
            for column in self.columns:
                if isinstance(column, SpilledColumn):
                    self._spill_store.discard(column.handle)
        for alloc in self._device_allocs:
            if alloc.live:
                platform.device.free(alloc)
        self._device_allocs = []
        self.columns = []
        for record in records:
            column = Column(record["values"], record["parents"])
            nbytes = len(column) * _CELL_BYTES
            if record.get("spilled") and self._spill_store is not None:
                packed = np.stack([column.values, column.parents])
                handle = self._spill_store.restore(packed)
                self.columns.append(SpilledColumn(handle, len(column)))
            elif self.device_resident and self.charged:
                alloc = platform.device.allocate(
                    nbytes, f"{self.name}:col{self.depth}"
                )
                self._device_allocs.append(alloc)
                self.columns.append(column)
            else:
                platform.register_host_bytes(nbytes, self.name, charge=False)
                self._registered_bytes += nbytes
                self.columns.append(column)

    # -- reads -----------------------------------------------------------------
    def read_column_values(self, index: int) -> np.ndarray:
        """Stream one column's values to the device (sequential access)."""
        values, __ = self._column_arrays(index)
        self._charge_stream(len(values) * 8, level=index)
        return values

    def read_cells(self, index: int, rows: np.ndarray) -> np.ndarray:
        """Scattered reads of (value, parent) cells in one column."""
        values, __ = self._column_arrays(index)
        rows = np.asarray(rows, dtype=np.int64)
        self._charge_stream(len(rows) * _CELL_BYTES, level=index)
        return values[rows]

    def _charge_stream(self, nbytes: int, level: int | None = None) -> None:
        """Charge reading ``nbytes`` of column data.

        Out-of-core tables serve the *most recent* column from the device
        write buffer while it still fits (it was flushed to host but its
        buffered copy remains valid until the next extension overwrites it);
        everything else streams from host over unified memory.
        """
        platform = self.platform
        if not self.charged:
            return
        if self.device_resident:
            platform.clock.advance(
                clk.DEVICE_MEM, nbytes / platform.cost.device_bandwidth
            )
            return
        buffered = 0
        if (
            self._write_buffer is not None
            and level is not None
            and level == self.depth - 1
        ):
            buffered = min(nbytes, self._write_buffer.nbytes)
        if buffered:
            platform.clock.advance(
                clk.DEVICE_MEM, buffered / platform.cost.device_bandwidth
            )
        if nbytes > buffered:
            platform.pcie.bulk_unified(nbytes - buffered)

    def materialize(self, rows: np.ndarray | None = None) -> np.ndarray:
        """Full embeddings as an ``(n, depth)`` matrix by walking parents.

        Column ``j`` of the result is the id at level ``j``.  Charges one
        scattered read per visited cell.
        """
        if not self.columns:
            return np.empty((0, 0), dtype=np.int64)
        if rows is None:
            rows = np.arange(self.num_embeddings, dtype=np.int64)
        rows = np.asarray(rows, dtype=np.int64)
        out = np.empty((len(rows), self.depth), dtype=np.int64)
        current = rows
        for level in range(self.depth - 1, -1, -1):
            values, parents = self._column_arrays(level)
            out[:, level] = values[current]
            current = parents[current]
            self._charge_stream(len(rows) * _CELL_BYTES, level=level)
        return out

    # -- compression (paper §V-A, three stages) -----------------------------------
    def compact(self, keep_mask: np.ndarray) -> int:
        """Remove invalid rows from the last column; returns rows removed.

        Implements the paper's three stages: (1) mark valid/invalid, (2)
        prefix-scan the marks to compute compacted positions, (3) collect
        valid cells in parallel.
        """
        if not self.columns:
            raise ExecutionError("nothing to compact")
        keep_mask = np.asarray(keep_mask, dtype=bool)
        last = self.columns[-1]
        was_spilled = isinstance(last, SpilledColumn)
        if was_spilled:
            values, parents = self._column_arrays(self.depth - 1)
            last = Column(values, parents)
        if len(keep_mask) != len(last):
            raise ExecutionError("mask must cover the last column")
        n = len(last)
        platform = self.platform
        if self.charged:
            # Stage 1: marking (one pass over the marks).
            platform.kernel.launch(f"{self.name}:mark", element_ops=n)
            # Stage 2: prefix scan of marks -> new positions.
            __, kept = warp_exclusive_scan(
                keep_mask.astype(np.int64), platform.clock, platform.spec,
                platform.cost,
            )
            # Stage 3: parallel collection of valid cells.
            moved_bytes = kept * _CELL_BYTES
            platform.kernel.launch(
                f"{self.name}:collect", element_ops=n, device_bytes=moved_bytes
            )
        else:
            kept = int(keep_mask.sum())
            platform.cpu.work(n)
        new_values = last.values[keep_mask]
        new_parents = last.parents[keep_mask]
        compacted = Column(new_values, new_parents)
        if was_spilled:
            # Compact the disk-resident column in place: drop the old copy
            # and either bring the (now smaller) column back to host memory
            # or re-spill it if it still exceeds the budget.
            self._spill_store.discard(self.columns[-1].handle)
            nbytes = kept * _CELL_BYTES
            if self._oversized_for_host(nbytes):
                packed = np.stack([compacted.values, compacted.parents])
                handle = self._spill_store.spill(packed)
                self.columns[-1] = SpilledColumn(handle, kept)
            else:
                platform.register_host_bytes(nbytes, self.name, charge=False)
                self._registered_bytes += nbytes
                self.columns[-1] = compacted
            return n - kept
        self.columns[-1] = compacted
        # Compression reclaims the dropped cells' memory — the space saving
        # the paper notes other frameworks forgo (§V-A).
        freed = (n - kept) * _CELL_BYTES
        if freed:
            if self.device_resident and self.charged:
                old = self._device_allocs.pop()
                platform.device.free(old)
                self._device_allocs.append(
                    platform.device.allocate(
                        kept * _CELL_BYTES, f"{self.name}:col{self.depth - 1}"
                    )
                )
            elif self._registered_bytes >= freed:
                platform.unregister_host_bytes(freed, self.name)
                self._registered_bytes -= freed
        return n - kept

    # -- lifecycle ----------------------------------------------------------------
    def release(self) -> None:
        """Free device allocations and host registrations."""
        platform = self.platform
        if self._write_buffer is not None and self._write_buffer.live:
            platform.device.free(self._write_buffer)
        for alloc in self._device_allocs:
            if alloc.live:
                platform.device.free(alloc)
        if self._registered_bytes:
            platform.unregister_host_bytes(self._registered_bytes, self.name)
            self._registered_bytes = 0
        if self._spill_store is not None:
            for column in self.columns:
                if isinstance(column, SpilledColumn):
                    self._spill_store.discard(column.handle)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = "x".join(str(len(c)) for c in self.columns)
        return f"EmbeddingTable({self.name!r}, {self.kind}, cols={sizes or '[]'})"
