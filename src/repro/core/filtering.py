"""The filtering primitive (paper §III-B3).

Filtering enforces user constraints on the embedding table after extension
or aggregation: structural constraints of a query graph (SM), a minimum
support over the pattern table (FPM), or any user predicate.  Invalid rows
are removed by the table's three-stage compaction (§V-A) — the space
saving the paper notes other frameworks skip.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ExecutionError
from ..graph.patterns import Pattern
from ..gpusim.platform import GpuPlatform
from .embedding_table import EmbeddingTable
from .pattern_table import PatternTable


@dataclass(frozen=True)
class MinSupport:
    """FPM constraint: keep patterns (and their instances) with support of
    at least ``threshold``."""

    threshold: int

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ExecutionError("support threshold must be >= 1")


@dataclass(frozen=True)
class QueryConstraint:
    """SM constraint: embeddings must satisfy the query graph's structure
    (used by the WOJ driver to derive extension-time pruning)."""

    pattern: Pattern


def filter_rows(
    table: EmbeddingTable, keep_mask: np.ndarray, compact: bool = True
) -> int:
    """Apply a per-row predicate mask; returns rows removed.

    ``compact=False`` models frameworks that skip compression (the invalid
    rows stay allocated — their memory is not reclaimed), which is how the
    no-compaction baselines inflate Fig. 10's peak memory."""
    tel = table.platform.telemetry
    with tel.span("filtering", kind="phase"):
        keep_mask = np.asarray(keep_mask, dtype=bool)
        removed = int((~keep_mask).sum())
        if compact:
            removed = table.compact(keep_mask)
        else:
            # Mark-only: rewrite the column in place with holes dropped from
            # the logical view but bytes still accounted by the table.
            last = table.columns[-1]
            last.values = last.values[keep_mask]
            last.parents = last.parents[keep_mask]
    if tel.active:
        tel.metric("filtering.rows_removed", removed)
    return removed


def filter_by_support(
    platform: GpuPlatform,
    table: EmbeddingTable,
    row_codes: np.ndarray,
    pattern_table: PatternTable,
    constraint: MinSupport,
    compact: bool = True,
    cpu: bool = False,
) -> int:
    """Algorithm 2 line 4: drop infrequent patterns from the pattern table
    and their instances from the embedding table.  Returns rows removed."""
    with platform.telemetry.span("support-filtering", kind="phase"):
        row_codes = np.asarray(row_codes, dtype=np.int64)
        if len(row_codes) != table.num_embeddings:
            raise ExecutionError("row codes must cover every embedding")
        supports = pattern_table.support_of(row_codes)
        keep = supports >= constraint.threshold
        pattern_table.prune_below(constraint.threshold)
        if cpu:
            platform.cpu.work(len(row_codes))
        else:
            platform.kernel.launch("filter:support", element_ops=len(row_codes))
        return filter_rows(table, keep, compact=compact)
