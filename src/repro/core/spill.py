"""Disk spilling for embedding tables.

The paper's GAMMA is bounded by *host* memory (its Fig. 10 peak reaches
310 GB of the testbed's 380 GB); the related work (§VII-A) points at
disk-involved platforms (Kaleido, RStream) as the next tier.  This module
adds that tier as an opt-in extension: when a table's host footprint
crosses a budget, cold columns are spilled to disk-backed storage
(``numpy.memmap``) and transparently faulted back on access.

Cost model: spilled writes/reads are charged at SSD-class streaming
bandwidth on top of the usual host traffic, under the ``disk_io`` clock
category — so benchmarks can show exactly what the extra tier costs
(see ``benchmarks/bench_spill.py``).
"""

from __future__ import annotations

import os
import shutil
import tempfile
from typing import Dict

import numpy as np

from ..gpusim.platform import GpuPlatform

#: Clock category for disk traffic.
DISK_IO = "disk_io"

#: SSD-class streaming bandwidth for spilled columns.
DEFAULT_DISK_BANDWIDTH = 2e9


class SpillStore:
    """Disk-backed storage for spilled arrays.

    Arrays are written to ``.npy``-style memmaps in a private temporary
    directory; the store charges simulated disk time for every spill and
    fault and tracks the on-disk footprint.
    """

    def __init__(
        self,
        platform: GpuPlatform,
        directory: str | os.PathLike | None = None,
        bandwidth: float = DEFAULT_DISK_BANDWIDTH,
    ) -> None:
        self.platform = platform
        self.bandwidth = bandwidth
        self._own_dir = directory is None
        self._dir = (
            tempfile.mkdtemp(prefix="gamma-spill-")
            if directory is None
            else str(directory)
        )
        os.makedirs(self._dir, exist_ok=True)
        self._files: Dict[int, tuple[str, tuple, np.dtype]] = {}
        self._next_id = 0
        self.bytes_spilled = 0
        self.bytes_faulted = 0

    @property
    def directory(self) -> str:
        return self._dir

    @property
    def bytes_on_disk(self) -> int:
        total = 0
        for path, shape, dtype in self._files.values():
            total += int(np.prod(shape)) * dtype.itemsize
        return total

    def spill(self, array: np.ndarray) -> int:
        """Write ``array`` to disk; returns a handle for :meth:`fetch`."""
        res = self.platform.resilience
        if res.active:
            res.io("spill:write")
        handle = self._next_id
        self._next_id += 1
        path = os.path.join(self._dir, f"col-{handle}.bin")
        try:
            mm = np.memmap(path, dtype=array.dtype, mode="w+",
                           shape=array.shape)
            mm[:] = array
            mm.flush()
            del mm
        except BaseException:
            # A half-written file would outlive the store: it is not in
            # ``_files``, so close() would never discard it and the temp
            # directory would leak on abort.  Scrub it before re-raising.
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
            raise
        self._files[handle] = (path, array.shape, array.dtype)
        self.bytes_spilled += array.nbytes
        self.platform.clock.advance(DISK_IO, array.nbytes / self.bandwidth)
        return handle

    def fetch(self, handle: int) -> np.ndarray:
        """Fault a spilled array back into memory (charged)."""
        res = self.platform.resilience
        if res.active:
            res.io("spill:read")
        path, shape, dtype = self._files[handle]
        mm = np.memmap(path, dtype=dtype, mode="r", shape=shape)
        out = np.array(mm)
        del mm
        self.bytes_faulted += out.nbytes
        self.platform.clock.advance(DISK_IO, out.nbytes / self.bandwidth)
        return out

    def peek(self, handle: int) -> np.ndarray:
        """Uncharged read of a spilled array (checkpoint bookkeeping only —
        simulated cost accrues through :meth:`fetch`)."""
        path, shape, dtype = self._files[handle]
        mm = np.memmap(path, dtype=dtype, mode="r", shape=shape)
        out = np.array(mm)
        del mm
        return out

    def restore(self, array: np.ndarray) -> int:
        """Uncharged write used by checkpoint resume: re-materialize a
        spilled array on disk without billing simulated disk time (the
        restored clock already contains the original spill's charge)."""
        handle = self._next_id
        self._next_id += 1
        path = os.path.join(self._dir, f"col-{handle}.bin")
        mm = np.memmap(path, dtype=array.dtype, mode="w+", shape=array.shape)
        mm[:] = array
        mm.flush()
        del mm
        self._files[handle] = (path, array.shape, array.dtype)
        return handle

    def discard(self, handle: int) -> None:
        """Drop a spilled array (idempotent)."""
        entry = self._files.pop(handle, None)
        if entry is not None and os.path.exists(entry[0]):
            os.unlink(entry[0])

    def close(self) -> None:
        """Delete every spill file (and the directory if we created it).

        A run that aborts mid-level can leave files the store no longer
        tracks (e.g. a column written just before the fault unwound the
        append); for directories the store owns, the whole tree is removed
        so aborted runs cannot leak temp directories.
        """
        for handle in list(self._files):
            self.discard(handle)
        if self._own_dir and os.path.isdir(self._dir):
            shutil.rmtree(self._dir, ignore_errors=True)

    def __enter__(self) -> "SpillStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SpillPolicy:
    """Decides which columns of a table to spill.

    Strategy: keep the most recent ``keep_columns`` levels resident (they
    are the ones extensions touch); spill everything older once the
    table's host footprint crosses ``host_budget_bytes``.  Parent-pointer
    walks (``materialize``) fault old columns back one level at a time.
    """

    def __init__(
        self,
        host_budget_bytes: int,
        keep_columns: int = 2,
    ) -> None:
        if host_budget_bytes <= 0:
            raise ValueError("host budget must be positive")
        if keep_columns < 1:
            raise ValueError("at least one column must stay resident")
        self.host_budget_bytes = host_budget_bytes
        self.keep_columns = keep_columns

    def columns_to_spill(
        self, column_bytes: list[int], resident: list[bool]
    ) -> list[int]:
        """Indices of columns to push to disk, oldest first."""
        total = sum(b for b, r in zip(column_bytes, resident) if r)
        if total <= self.host_budget_bytes:
            return []
        spill: list[int] = []
        cutoff = len(column_bytes) - self.keep_columns
        for index in range(max(0, cutoff)):
            if not resident[index]:
                continue
            spill.append(index)
            total -= column_bytes[index]
            if total <= self.host_budget_bytes:
                break
        return spill
