"""Dynamic device-memory allocation for extension results (Optimization 1).

Thousands of threads produce an unknown number of results each — the
"parallel write conflict" of §V-B.  GAMMA's answer: the result buffer is a
pool of 8 KB blocks; each *warp* owns one block, writes results into it,
and requests a fresh block from a scheduler when full.  Intra-warp write
positions come from a warp-level prefix scan (free in SIMT).  The costs the
paper argues about are modelled explicitly:

* allocation requests serialize through the scheduler (bounded because only
  hundreds of warps are active and each requests only when a block fills);
* at the end, each warp's partially filled block wastes its tail — at most
  ``active_warps x block_bytes``, negligible next to the results.

The module also implements the two alternatives GAMMA is compared against:
Pangolin's run-twice counting pass and GSI's worst-case preallocation,
selected via :func:`make_write_strategy` for the Fig. 17/18 ablations.
"""

from __future__ import annotations

import numpy as np

from ..errors import ExecutionError
from ..gpusim import stats as st
from ..gpusim.platform import GpuPlatform
from ..gpusim.warp import WarpGrid, warp_exclusive_scan

#: The paper's block size: "a memory block is only 8 KB".
DEFAULT_BLOCK_BYTES = 8 * 1024

DYNAMIC = "dynamic"
TWO_PASS = "two_pass"
PREALLOC = "prealloc"

STRATEGIES = (DYNAMIC, TWO_PASS, PREALLOC)


class MemoryPool:
    """The block pool + scheduler of Optimization 1."""

    def __init__(
        self,
        platform: GpuPlatform,
        pool_bytes: int,
        block_bytes: int = DEFAULT_BLOCK_BYTES,
        tag: str = "memory-pool",
    ) -> None:
        if block_bytes <= 0:
            raise ExecutionError("block size must be positive")
        if pool_bytes < block_bytes:
            raise ExecutionError("pool must hold at least one block")
        self.platform = platform
        self.block_bytes = block_bytes
        self.num_blocks = pool_bytes // block_bytes
        self._allocation = platform.device.allocate(
            self.num_blocks * block_bytes, tag
        )
        self.blocks_served = 0
        self.wasted_bytes = 0

    def write_extension_results(
        self, per_warp_bytes: np.ndarray
    ) -> None:
        """Account one extension's result writes.

        ``per_warp_bytes[w]`` is the number of result bytes warp ``w``
        produced.  Charges: block-allocation scheduler contention (serial),
        device-bandwidth writes, and records tail waste.  Blocks recycle
        through flushes, so the pool bounds *in-flight* buffering, not total
        output.
        """
        per_warp_bytes = np.asarray(per_warp_bytes, dtype=np.int64)
        if len(per_warp_bytes) == 0 or per_warp_bytes.sum() == 0:
            return
        res = self.platform.resilience
        if res.active:
            # Injection site for pool_exhausted faults (the scheduler denies
            # a block request, surfacing as MemoryPoolExhausted).
            res.io("pool:alloc")
        blocks_per_warp = -(-per_warp_bytes // self.block_bytes)
        total_blocks = int(blocks_per_warp.sum())
        waste = int((blocks_per_warp * self.block_bytes - per_warp_bytes).sum())
        self.blocks_served += total_blocks
        self.wasted_bytes += waste
        counters = self.platform.counters
        counters.add(st.MEMORY_BLOCKS_ALLOCATED, total_blocks)
        counters.add(st.MEMORY_BLOCKS_WASTED_BYTES, waste)
        # Scheduler: one serialized atomic per block request.
        self.platform.kernel.launch(
            "pool:alloc", serial_steps=total_blocks * 4
        )
        # The writes themselves, at device bandwidth.
        flush_bytes = int(per_warp_bytes.sum())
        self.platform.kernel.launch(
            "pool:write", device_bytes=flush_bytes
        )
        tel = self.platform.telemetry
        if tel.active:
            tel.metric("pool.flush_bytes", flush_bytes)
            tel.metric("pool.flush_blocks", total_blocks)
            tel.metric("pool.flush_waste_bytes", waste)

    def release(self) -> None:
        if self._allocation.live:
            self.platform.device.free(self._allocation)


class WriteStrategy:
    """How an engine resolves the parallel write conflict of Challenge 1.

    Subclasses charge the cost of laying out ``per_row_counts`` results
    (``itemsize`` bytes each) produced by an extension kernel whose compute
    cost is ``kernel_ops`` — the strategy decides whether that kernel runs
    once or twice and what memory it needs.
    """

    name: str
    #: How many times the extension traversal (and its graph reads) runs;
    #: the engine multiplies its charged adjacency reads by this.
    passes: int = 1

    def account(
        self,
        per_row_counts: np.ndarray,
        itemsize: int,
        kernel_ops: float,
        upper_bound_counts: np.ndarray | None = None,
    ) -> None:
        raise NotImplementedError


class DynamicAllocStrategy(WriteStrategy):
    """GAMMA: single pass + warp-owned blocks (Optimization 1)."""

    name = DYNAMIC

    def __init__(self, platform: GpuPlatform, pool: MemoryPool) -> None:
        self.platform = platform
        self.pool = pool
        self._grid = WarpGrid(platform.kernel.num_warps, platform.spec.warp_size)

    def account(self, per_row_counts, itemsize, kernel_ops, upper_bound_counts=None):
        per_row_counts = np.asarray(per_row_counts, dtype=np.int64)
        # One extension kernel.
        self.platform.kernel.launch("extend", element_ops=kernel_ops)
        # Intra-warp positions: warp-level prefix scan over lane counts.
        warp_exclusive_scan(
            per_row_counts[: self.platform.spec.warp_size],
            self.platform.clock,
            self.platform.spec,
            self.platform.cost,
        )
        # Warp-level block consumption.
        bounds = self._grid.chunk_bounds(len(per_row_counts))
        if len(per_row_counts):
            cumulative = np.concatenate(
                [[0], np.cumsum(per_row_counts)]
            )
            per_warp = np.diff(cumulative[bounds]) * itemsize
            self.pool.write_extension_results(per_warp)


class TwoPassStrategy(WriteStrategy):
    """Pangolin: run the extension twice — count, exclusive-scan, re-run
    and write ("this method solves the write conflict with an additional
    extension, leading to a severe performance decline")."""

    name = TWO_PASS
    passes = 2

    def __init__(self, platform: GpuPlatform) -> None:
        self.platform = platform

    def account(self, per_row_counts, itemsize, kernel_ops, upper_bound_counts=None):
        per_row_counts = np.asarray(per_row_counts, dtype=np.int64)
        # Pass 1: counting (same traversal work, results discarded).
        self.platform.kernel.launch("extend:count", element_ops=kernel_ops)
        # Global prefix scan over per-row counts.
        warp_exclusive_scan(
            per_row_counts, self.platform.clock, self.platform.spec,
            self.platform.cost,
        )
        # Pass 2: the real extension, writing to exact offsets.
        total_bytes = int(per_row_counts.sum()) * itemsize
        self.platform.kernel.launch(
            "extend:write", element_ops=kernel_ops, device_bytes=total_bytes
        )


class PreallocStrategy(WriteStrategy):
    """GSI: estimate each row's maximum result count and preallocate —
    single pass, but "the overestimation often causes significant space
    waste" and, on large inputs, device OOM."""

    name = PREALLOC

    def __init__(self, platform: GpuPlatform, tag: str = "prealloc") -> None:
        self.platform = platform
        self.tag = tag

    def account(self, per_row_counts, itemsize, kernel_ops, upper_bound_counts=None):
        per_row_counts = np.asarray(per_row_counts, dtype=np.int64)
        if upper_bound_counts is None:
            upper_bound_counts = per_row_counts
        upper = int(np.asarray(upper_bound_counts, dtype=np.int64).sum())
        # Worst-case space for one pass.  GSI processes join steps in
        # chunks, so a single prealloc is capped at a quarter of the device;
        # the waste still shows in peak memory, and truly large runs die
        # anyway when the (device-resident) result table overflows.
        alloc_bytes = min(upper * itemsize, self.platform.device.capacity // 4)
        allocation = self.platform.device.allocate(alloc_bytes, self.tag)
        self.platform.kernel.launch(
            "extend:prealloc",
            element_ops=kernel_ops,
            device_bytes=int(per_row_counts.sum()) * itemsize,
        )
        # The "combine" pass: scan the (mostly empty) worst-case space to
        # collect the real results into a dense table.
        self.platform.kernel.launch(
            "extend:combine", element_ops=upper, device_bytes=upper * itemsize
        )
        self.platform.device.free(allocation)


def make_write_strategy(
    strategy: str, platform: GpuPlatform, pool: MemoryPool | None = None
) -> WriteStrategy:
    """Factory keyed by the Fig. 17/18 ablation names."""
    if strategy == DYNAMIC:
        if pool is None:
            raise ExecutionError("dynamic allocation needs a memory pool")
        return DynamicAllocStrategy(platform, pool)
    if strategy == TWO_PASS:
        return TwoPassStrategy(platform)
    if strategy == PREALLOC:
        return PreallocStrategy(platform)
    raise ExecutionError(f"unknown write strategy {strategy!r}; use {STRATEGIES}")
