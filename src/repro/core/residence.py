"""Graph residency: how an engine maps the CSR onto the platform.

Three placements cover every system in the paper:

* :class:`GammaResidence` — GAMMA's: small structural arrays (offsets,
  labels, per-edge endpoints' index) live in device memory; the large
  adjacency payloads (``neighbors`` and adjacency-slot ``edge_ids``) live in
  host memory behind :class:`~repro.gpusim.hybrid.HybridRegion` with the
  access-heat planner choosing per-page modes (§IV).
* :class:`InCoreResidence` — Pangolin/GSI: everything staged into device
  memory; large graphs raise :class:`~repro.errors.DeviceOutOfMemory`.
* :class:`HostResidence` — CPU baselines: plain host arrays; cost is
  charged per operation through :class:`~repro.gpusim.kernel.CpuExecutor`.

All three expose the same read API, so the extension engine is placement-
agnostic — exactly the transparency the paper claims for implicit access.
"""

# gammalint: module-allow[charge] -- this module IS the charging boundary:
# every raw CSR read below is paired with a region gather / clock charge,
# and engines are required to come through these accessors.

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..gpusim import clock as clk
from ..gpusim.platform import GpuPlatform
from ..gpusim.regions import expand_ranges


class GraphResidence:
    """Common interface: charged reads of the graph's arrays."""

    def __init__(self, platform: GpuPlatform, graph: CSRGraph) -> None:
        self.platform = platform
        self.graph = graph

    # -- reads used by the extension engine ---------------------------------
    def adjacency_of(self, vertices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Concatenated neighbor lists + lengths for ``vertices`` (with
        multiplicity: a vertex listed twice is read twice)."""
        raise NotImplementedError

    def incident_edges_of(self, vertices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Concatenated incident edge-id lists + lengths."""
        raise NotImplementedError

    def labels_of(self, vertices: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def endpoints_of(self, edge_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    def degrees_of(self, vertices: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def release(self) -> None:
        """Free any platform resources held by this residence."""

    def _ranges(self, vertices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        vertices = np.asarray(vertices, dtype=np.int64)
        return self.graph.offsets[vertices], self.graph.offsets[vertices + 1]


class GammaResidence(GraphResidence):
    """GAMMA's placement with hybrid host-memory adjacency access."""

    def __init__(
        self,
        platform: GpuPlatform,
        graph: CSRGraph,
        buffer_pages: int,
    ) -> None:
        super().__init__(platform, graph)
        with platform.telemetry.span("graph-residence", kind="stage"):
            # Structural arrays on the device (small even for our largest
            # stand-ins): offsets, labels, and edge endpoint columns'
            # *offsets* are addressed positionally; we keep offsets+labels
            # device-resident and endpoints in zero-copy host memory
            # (isolated lookups).
            structural = graph.offsets.nbytes + graph.labels.nbytes
            self._structural_alloc = platform.device.allocate(structural, "graph:structural")
            platform.pcie.explicit_copy(structural, to_device=True)
            self._buffer_pages = buffer_pages
            self.neighbors = platform.hybrid_region(
                "graph:neighbors", graph.neighbors, buffer_pages
            )
        # Edge-side mappings are registered lazily: a vertex-extension
        # workload (SM, kCL) never touches incident-edge lists or endpoint
        # tables, so it should not pay their host-preparation cost.
        self._edge_slots: "object | None" = None
        self._endpoints_src = None
        self._endpoints_dst = None

    @property
    def edge_slots(self):
        if self._edge_slots is None:
            self._edge_slots = self.platform.hybrid_region(
                "graph:edge-ids", self.graph.edge_ids, self._buffer_pages
            )
        return self._edge_slots

    def _endpoints(self):
        if self._endpoints_src is None:
            self._endpoints_src = self.platform.zerocopy_region(
                "graph:edge-src", self.graph.edge_src
            )
            self._endpoints_dst = self.platform.zerocopy_region(
                "graph:edge-dst", self.graph.edge_dst
            )
        return self._endpoints_src, self._endpoints_dst

    def adjacency_of(self, vertices):
        starts, ends = self._ranges(vertices)
        return self.neighbors.gather_ranges(starts, ends)

    def incident_edges_of(self, vertices):
        starts, ends = self._ranges(vertices)
        return self.edge_slots.gather_ranges(starts, ends)

    def labels_of(self, vertices):
        vertices = np.asarray(vertices, dtype=np.int64)
        self.platform.clock.advance(
            clk.DEVICE_MEM, vertices.nbytes / self.platform.cost.device_bandwidth
        )
        return self.graph.labels[vertices]

    def endpoints_of(self, edge_ids):
        src_region, dst_region = self._endpoints()
        return src_region.gather(edge_ids), dst_region.gather(edge_ids)

    def degrees_of(self, vertices):
        vertices = np.asarray(vertices, dtype=np.int64)
        self.platform.clock.advance(
            clk.DEVICE_MEM, 2 * vertices.nbytes / self.platform.cost.device_bandwidth
        )
        return self.graph.offsets[vertices + 1] - self.graph.offsets[vertices]

    def release(self):
        self.platform.device.free(self._structural_alloc)
        for region in (
            self.neighbors, self._edge_slots,
            self._endpoints_src, self._endpoints_dst,
        ):
            if region is not None:
                region.release()


class InCoreResidence(GraphResidence):
    """Everything in device memory (Pangolin-GPU / GSI style).

    Construction stages the whole CSR over PCIe; graphs larger than device
    memory raise :class:`~repro.errors.DeviceOutOfMemory` right here — the
    first of the two crash modes of the in-core baselines.
    """

    def __init__(self, platform: GpuPlatform, graph: CSRGraph) -> None:
        super().__init__(platform, graph)
        with platform.telemetry.span("graph-residence", kind="stage"):
            self.neighbors = platform.device_region(
                "graph:neighbors", graph.neighbors
            )
            structural = graph.offsets.nbytes + graph.labels.nbytes
            self._structural_alloc = platform.device.allocate(structural, "graph:structural")
            platform.pcie.explicit_copy(structural, to_device=True)
        # Edge-side arrays staged on first use (same laziness as GAMMA's
        # residence, so comparisons stay apples-to-apples).
        self._edge_slots = None
        self._endpoints_src = None
        self._endpoints_dst = None

    @property
    def edge_slots(self):
        if self._edge_slots is None:
            self._edge_slots = self.platform.device_region(
                "graph:edge-ids", self.graph.edge_ids
            )
        return self._edge_slots

    def _endpoints(self):
        if self._endpoints_src is None:
            self._endpoints_src = self.platform.device_region(
                "graph:edge-src", self.graph.edge_src
            )
            self._endpoints_dst = self.platform.device_region(
                "graph:edge-dst", self.graph.edge_dst
            )
        return self._endpoints_src, self._endpoints_dst

    def adjacency_of(self, vertices):
        starts, ends = self._ranges(vertices)
        return self.neighbors.gather_ranges(starts, ends)

    def incident_edges_of(self, vertices):
        starts, ends = self._ranges(vertices)
        return self.edge_slots.gather_ranges(starts, ends)

    def labels_of(self, vertices):
        vertices = np.asarray(vertices, dtype=np.int64)
        self.platform.clock.advance(
            clk.DEVICE_MEM, vertices.nbytes / self.platform.cost.device_bandwidth
        )
        return self.graph.labels[vertices]

    def endpoints_of(self, edge_ids):
        src_region, dst_region = self._endpoints()
        return src_region.gather(edge_ids), dst_region.gather(edge_ids)

    def degrees_of(self, vertices):
        vertices = np.asarray(vertices, dtype=np.int64)
        self.platform.clock.advance(
            clk.DEVICE_MEM, 2 * vertices.nbytes / self.platform.cost.device_bandwidth
        )
        return self.graph.offsets[vertices + 1] - self.graph.offsets[vertices]

    def release(self):
        self.platform.device.free(self._structural_alloc)
        for region in (
            self.neighbors, self._edge_slots,
            self._endpoints_src, self._endpoints_dst,
        ):
            if region is not None:
                region.release()


class HostResidence(GraphResidence):
    """Plain host arrays for CPU engines; reads are uncharged here because
    CPU engines charge per traversal operation instead."""

    def adjacency_of(self, vertices):
        starts, ends = self._ranges(vertices)
        flat = expand_ranges(starts, ends)
        return self.graph.neighbors[flat], ends - starts

    def incident_edges_of(self, vertices):
        starts, ends = self._ranges(vertices)
        flat = expand_ranges(starts, ends)
        return self.graph.edge_ids[flat], ends - starts

    def labels_of(self, vertices):
        return self.graph.labels[np.asarray(vertices, dtype=np.int64)]

    def endpoints_of(self, edge_ids):
        return self.graph.edge_endpoints(np.asarray(edge_ids, dtype=np.int64))

    def degrees_of(self, vertices):
        vertices = np.asarray(vertices, dtype=np.int64)
        return self.graph.offsets[vertices + 1] - self.graph.offsets[vertices]
