"""The pattern table (paper §III-B2).

``Aggregation`` maps each embedding to its pattern's canonical code and
counts instances per pattern.  The pattern table holds those
``(canonical code -> support)`` pairs across FPM iterations; ``Filtering``
prunes patterns below the support threshold and the embeddings that
instantiate them (Algorithm 2, lines 3–4).
"""

from __future__ import annotations

from typing import Dict, Iterator

import numpy as np


class PatternTable:
    """Sorted canonical codes with per-pattern supports."""

    def __init__(self) -> None:
        self.codes = np.empty(0, dtype=np.int64)
        self.supports = np.empty(0, dtype=np.int64)

    def __len__(self) -> int:
        return len(self.codes)

    def merge(self, codes: np.ndarray, counts: np.ndarray) -> None:
        """Fold freshly aggregated ``(codes, counts)`` into the table.

        Codes already present accumulate support; new codes are inserted.
        Input codes must be unique (the output of the aggregation sort).
        """
        codes = np.asarray(codes, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        if codes.shape != counts.shape:
            raise ValueError("codes/counts must align")
        if len(codes) == 0:
            return
        if len(np.unique(codes)) != len(codes):
            raise ValueError("merge expects unique codes")
        merged_codes = np.concatenate([self.codes, codes])
        merged_counts = np.concatenate([self.supports, counts])
        order = np.argsort(merged_codes, kind="stable")
        merged_codes = merged_codes[order]
        merged_counts = merged_counts[order]
        uniq, inverse = np.unique(merged_codes, return_inverse=True)
        sums = np.zeros(len(uniq), dtype=np.int64)
        np.add.at(sums, inverse, merged_counts)
        self.codes = uniq
        self.supports = sums

    def support_of(self, codes: np.ndarray) -> np.ndarray:
        """Support per code (0 for unknown codes)."""
        codes = np.asarray(codes, dtype=np.int64)
        if len(self.codes) == 0:
            return np.zeros(len(codes), dtype=np.int64)
        pos = np.searchsorted(self.codes, codes)
        pos = np.minimum(pos, len(self.codes) - 1)
        found = self.codes[pos] == codes
        out = np.where(found, self.supports[pos], 0)
        return out.astype(np.int64)

    def prune_below(self, min_support: int) -> int:
        """Drop patterns with support below the threshold; returns the
        number removed."""
        keep = self.supports >= min_support
        removed = int((~keep).sum())
        self.codes = self.codes[keep]
        self.supports = self.supports[keep]
        return removed

    def frequent(self, min_support: int) -> "PatternTable":
        """A new table containing only patterns at/above the threshold."""
        out = PatternTable()
        keep = self.supports >= min_support
        out.codes = self.codes[keep].copy()
        out.supports = self.supports[keep].copy()
        return out

    def as_dict(self) -> Dict[int, int]:
        return {int(c): int(s) for c, s in zip(self.codes, self.supports)}

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(zip(self.codes.tolist(), self.supports.tolist()))

    @property
    def nbytes(self) -> int:
        return self.codes.nbytes + self.supports.nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PatternTable({len(self)} patterns)"
