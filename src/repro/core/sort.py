"""Out-of-core GPU sorting (Optimization 3, §V-B Challenge 3, Algorithm 3).

``Aggregation`` sorts canonical pattern labels whose total size can exceed
device memory.  GAMMA's answer is a two-phase external sort:

1. **Segment phase** — partition the keys into segments that fit device
   memory and sort each with the in-core GPU sort.
2. **Multi-merge phase** — merge all sorted segments at once: per-segment
   *checkpoints* every ``p_size`` elements are pooled into Ω; *matched
   indices* (Def. 5.1, a binary search) split every segment at every
   checkpoint, producing aligned subtasks of bounded size that merge
   independently (one warp each).  Within a subtask, an element's final
   position is its local index plus its matched index in every other list;
   for the pair ``(j, k)`` with ``j < k`` only the ``S_j``-over-``S_k``
   search runs — the reverse direction is recovered with the prefix-sum
   trick of Fig. 9(c), halving the search work.

The module also implements the comparators of Fig. 19 / Table III: the
naive multi-merge (both search directions run), an ``xtr2sort``-style
radix-partitioning external sort, and a CPU in-memory sort.  All four
produce identical output and differ only in charged cost, which is what the
figure compares.
"""

from __future__ import annotations

import numpy as np

from ..errors import ExecutionError
from ..gpusim import clock as clk
from ..gpusim import stats as st
from ..gpusim.platform import GpuPlatform

MULTI_MERGE = "multi_merge"
NAIVE_MERGE = "naive_merge"
XTR2SORT = "xtr2sort"
CPU_SORT = "cpu_sort"

SORT_METHODS = (MULTI_MERGE, NAIVE_MERGE, XTR2SORT, CPU_SORT)

#: Default checkpoint spacing (elements) for the merge phase.
DEFAULT_P_SIZE = 1 << 14


def _log2(n: int) -> float:
    return float(np.log2(max(2, n)))


def device_sort_segments(
    platform: GpuPlatform, keys: np.ndarray, segment_len: int
) -> list[np.ndarray]:
    """Phase 1: split ``keys`` into device-sized segments, sort each on the
    device, and write the sorted segments back to host memory."""
    if segment_len <= 0:
        raise ExecutionError("segment_len must be positive")
    keys = np.asarray(keys)
    segments = []
    for start in range(0, len(keys), segment_len):
        chunk = keys[start: start + segment_len]
        # Stage the segment in, radix-sort it, stream it back out.
        platform.pcie.explicit_copy(chunk.nbytes, to_device=True)
        platform.kernel.launch(
            "segment-sort",
            element_ops=len(chunk) * _log2(len(chunk)),
            device_bytes=2 * chunk.nbytes,
        )
        platform.pcie.writeback(chunk.nbytes)
        segments.append(np.sort(chunk))
    platform.counters.add(st.SORT_ELEMENTS, len(keys))
    return segments


def _collect_checkpoints(segments: list[np.ndarray], p_size: int) -> np.ndarray:
    """Ω: the pooled checkpoint values of all segments (sorted, unique)."""
    points = [seg[p_size::p_size] for seg in segments if len(seg) > p_size]
    if not points:
        return np.empty(0, dtype=segments[0].dtype if segments else np.int64)
    return np.unique(np.concatenate(points))


def _subtask_boundaries(
    segments: list[np.ndarray], omega: np.ndarray
) -> list[np.ndarray]:
    """Matched indices of every checkpoint in every segment -> per-segment
    split boundaries ``[0, d_1, ..., |S_i|]`` (Def. 5.1 is ``searchsorted``
    with side='left')."""
    bounds = []
    for seg in segments:
        inner = np.searchsorted(seg, omega, side="left")
        bounds.append(np.concatenate([[0], inner, [len(seg)]]).astype(np.int64))
    return bounds


def _merge_subtask(
    platform: GpuPlatform,
    lists: list[np.ndarray],
    out: np.ndarray,
    offset: int,
    skip_reverse_search: bool,
) -> None:
    """Merge aligned short lists into ``out[offset:...]`` via matched-index
    positioning.  ``skip_reverse_search=False`` is the naive variant that
    searches both directions of every pair."""
    lists = [lst for lst in lists if len(lst)]
    if not lists:
        return
    positions = [np.arange(len(lst), dtype=np.int64) for lst in lists]
    search_ops = 0.0
    for j in range(len(lists)):
        for k in range(j + 1, len(lists)):
            s_j, s_k = lists[j], lists[k]
            # Matched index of each S_j element over S_k (ties: j first).
            idx_jk = np.searchsorted(s_k, s_j, side="left")
            positions[j] += idx_jk
            step_cost = platform.cost.search_step_ops
            search_ops += len(s_j) * _log2(len(s_k)) * step_cost
            if skip_reverse_search:
                # Fig. 9(c): recover S_k's offsets over S_j with a
                # prefix-sum over the matched-index histogram.
                counts = np.bincount(idx_jk, minlength=len(s_k) + 1)
                positions[k] += np.cumsum(counts)[: len(s_k)]
                search_ops += len(s_k)  # prefix-sum pass
            else:
                idx_kj = np.searchsorted(s_j, s_k, side="right")
                positions[k] += idx_kj
                search_ops += len(s_k) * _log2(len(s_j)) * step_cost
    total = sum(len(lst) for lst in lists)
    for lst, pos in zip(lists, positions):
        out[offset + pos] = lst
    platform.kernel.launch(
        "multi-merge:subtask",
        element_ops=search_ops + total,
        device_bytes=total * out.dtype.itemsize * 2,
    )


def multi_merge(
    platform: GpuPlatform,
    segments: list[np.ndarray],
    p_size: int = DEFAULT_P_SIZE,
    skip_reverse_search: bool = True,
) -> np.ndarray:
    """Phase 2 (Algorithm 3): merge sorted segments into one sorted array."""
    segments = [np.asarray(seg) for seg in segments]
    for seg in segments:
        # Direct comparison, not np.diff: differences of extreme int64
        # values overflow and would flag a sorted segment as unsorted.
        if len(seg) > 1 and (seg[1:] < seg[:-1]).any():
            raise ExecutionError("multi_merge requires sorted segments")
    total = sum(len(seg) for seg in segments)
    if total == 0:
        return np.empty(0, dtype=segments[0].dtype if segments else np.int64)
    if p_size <= 0:
        raise ExecutionError("p_size must be positive")

    omega = _collect_checkpoints(segments, p_size)
    # Matched indices of all checkpoints over all segments (parallel binary
    # searches on the device).
    search_ops = sum(
        len(omega) * _log2(len(seg)) * platform.cost.search_step_ops
        for seg in segments
    )
    platform.kernel.launch("multi-merge:split", element_ops=search_ops)
    bounds = _subtask_boundaries(segments, omega)

    out = np.empty(total, dtype=segments[0].dtype)
    n_subtasks = len(omega) + 1
    offset = 0
    for task in range(n_subtasks):
        lists = [
            seg[b[task]: b[task + 1]] for seg, b in zip(segments, bounds)
        ]
        task_total = sum(len(lst) for lst in lists)
        # Stream the subtask's data through the device.
        platform.pcie.explicit_copy(task_total * out.dtype.itemsize, to_device=True)
        _merge_subtask(platform, lists, out, offset, skip_reverse_search)
        platform.pcie.writeback(task_total * out.dtype.itemsize)
        offset += task_total
    return out


def out_of_core_sort(
    platform: GpuPlatform,
    keys: np.ndarray,
    method: str = MULTI_MERGE,
    segment_len: int | None = None,
    p_size: int = DEFAULT_P_SIZE,
) -> np.ndarray:
    """Sort ``keys`` (host-resident, possibly exceeding device memory).

    ``method`` selects GAMMA's optimized multi-merge, the naive multi-merge,
    the xtr2sort-style radix partitioner, or a CPU sort (Table III).
    """
    keys = np.asarray(keys)
    if method not in SORT_METHODS:
        raise ExecutionError(f"unknown sort method {method!r}; use {SORT_METHODS}")
    tel = platform.telemetry
    with tel.span(f"sort:{method}", kind="stage"):
        result = _out_of_core_sort_impl(platform, keys, method,
                                        segment_len, p_size)
    if tel.active:
        tel.metric("sort.elements", len(keys), method=method)
    return result


def _out_of_core_sort_impl(
    platform: GpuPlatform,
    keys: np.ndarray,
    method: str,
    segment_len: int | None,
    p_size: int,
) -> np.ndarray:
    if method == CPU_SORT:
        # A single-threaded comparison sort on the host (Table III's
        # CPU baseline): n log n ops at one core's effective rate.
        ops = len(keys) * _log2(len(keys))
        platform.clock.advance(clk.CPU_COMPUTE, ops / platform.cost.cpu_ops_per_thread)
        platform.counters.add(st.CPU_OPS, int(ops))
        platform.counters.add(st.SORT_ELEMENTS, len(keys))
        return np.sort(keys)
    if segment_len is None:
        # Half the *free* device memory for keys, leaving room for the
        # in-core sort's double buffer.
        free = max(platform.device.available, 2 * keys.dtype.itemsize)
        segment_len = max(1, free // (2 * keys.dtype.itemsize))
    if method == XTR2SORT:
        return _xtr2sort(platform, keys, segment_len)
    segments = device_sort_segments(platform, keys, segment_len)
    if len(segments) == 1:
        return segments[0]
    return multi_merge(
        platform, segments, p_size,
        skip_reverse_search=(method == MULTI_MERGE),
    )


def _xtr2sort(
    platform: GpuPlatform, keys: np.ndarray, segment_len: int
) -> np.ndarray:
    """xtr2sort-style external sort: radix-partition the keys into
    device-sized buckets on the host (two extra full passes over the data),
    then sort each bucket in-core.

    This is the [29]/[30] style of out-of-core GPU sort the paper compares
    against: correct, but its partitioning passes do not overlap and the
    bucket scatter is random-access on the host."""
    keys = np.asarray(keys)
    if len(keys) == 0:
        return keys.copy()
    n_buckets = max(1, -(-len(keys) // segment_len))
    # Pass 1: histogram/sample pass to find splitters (full read).
    platform.pcie.explicit_copy(keys.nbytes, to_device=True)
    platform.kernel.launch("xtr2sort:histogram", element_ops=len(keys))
    quantiles = np.linspace(0, 1, n_buckets + 1)[1:-1]
    sample = np.sort(keys[:: max(1, len(keys) // 4096)])
    splitters = sample[(quantiles * (len(sample) - 1)).astype(np.int64)]
    # Pass 2: scatter into host-side buckets.  The reorganization is a
    # random-access pass over host memory (this is what "do not fully
    # utilize GPU parallelism" costs the [29]/[30] designs).
    platform.clock.advance(
        clk.HOST_PREP, 2 * keys.nbytes / platform.cost.host_scatter_bandwidth
    )
    platform.kernel.launch("xtr2sort:scatter", element_ops=2 * len(keys))
    bucket_of = np.searchsorted(splitters, keys, side="right")
    order = np.argsort(bucket_of, kind="stable")
    scattered = keys[order]
    bucket_sizes = np.bincount(bucket_of, minlength=n_buckets)
    # Pass 3: in-core sort per bucket.  Skewed buckets can exceed the
    # segment length; they fall back to a (charged) recursive split.
    out = np.empty_like(keys)
    offset = 0
    for size in bucket_sizes:
        size = int(size)
        if size == 0:
            continue
        chunk = scattered[offset: offset + size]
        passes = max(1, -(-size // segment_len))
        platform.pcie.explicit_copy(chunk.nbytes * passes, to_device=True)
        platform.kernel.launch(
            "xtr2sort:bucket-sort",
            element_ops=size * _log2(size) * passes,
            device_bytes=2 * chunk.nbytes,
        )
        platform.pcie.writeback(chunk.nbytes)
        out[offset: offset + size] = np.sort(chunk)
        offset += size
    platform.counters.add(st.SORT_ELEMENTS, len(keys))
    return out


def sort_and_count(
    platform: GpuPlatform,
    keys: np.ndarray,
    method: str = MULTI_MERGE,
    segment_len: int | None = None,
    p_size: int = DEFAULT_P_SIZE,
) -> tuple[np.ndarray, np.ndarray]:
    """Sort keys out-of-core, then run-length encode: the aggregation
    primitive's grouping step.  Returns ``(unique_keys, counts)``."""
    with platform.telemetry.span("sort-and-count", kind="stage"):
        ordered = out_of_core_sort(platform, keys, method, segment_len, p_size)
        platform.kernel.launch("run-length", element_ops=len(ordered))
        if len(ordered) == 0:
            return ordered, np.empty(0, dtype=np.int64)
        boundaries = np.flatnonzero(np.diff(ordered)) + 1
        starts = np.concatenate([[0], boundaries])
        ends = np.concatenate([boundaries, [len(ordered)]])
        return ordered[starts], (ends - starts).astype(np.int64)
