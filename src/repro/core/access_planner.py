"""Self-adaptive host-memory access planning (paper §IV, Defs. 4.1–4.3).

Before each extension GAMMA knows exactly which adjacency lists the kernel
will read (the anchor vertices of every embedding).  The planner converts
that knowledge into a per-page *access heat*:

* ``SpatialLoc_i(p)`` — bytes of page ``p`` the upcoming extension will
  touch, weighted by how many times each list is read (Def. 4.1);
* ``TempLoc_i(p)`` — the same quantity accumulated over all previous
  extensions (Def. 4.2);
* ``AccHeat_i(p)`` — a convex combination of the two, weighted by the ratio
  of current to historical access volume (Def. 4.3).

The ``N_u`` hottest pages are routed through unified memory (they get
device-buffer residency); everything else goes through zero-copy.  The
planner also records the hot-page overlap between consecutive extensions —
the quantity Fig. 5 plots to justify temporal locality.
"""

from __future__ import annotations

import numpy as np

from ..gpusim.hybrid import HybridRegion
from ..gpusim.platform import GpuPlatform

HYBRID = "hybrid"
UNIFIED_ONLY = "unified"
ZEROCOPY_ONLY = "zerocopy"

ACCESS_MODES = (HYBRID, UNIFIED_ONLY, ZEROCOPY_ONLY)


class AccessHeatPlanner:
    """Chooses the unified/zero-copy page split for one hybrid CSR region."""

    def __init__(
        self,
        platform: GpuPlatform,
        region: HybridRegion,
        offsets: np.ndarray,
        mode: str = HYBRID,
    ) -> None:
        if mode not in ACCESS_MODES:
            raise ValueError(f"mode must be one of {ACCESS_MODES}, got {mode!r}")
        self.platform = platform
        self.region = region
        self.mode = mode
        self._offsets = np.asarray(offsets, dtype=np.int64)
        self._itemsize = region.itemsize
        self._page_size = platform.spec.page_size
        self._temporal = np.zeros(region.total_pages, dtype=np.float64)
        self._history_volume = 0.0
        self._extension_index = 0
        self._previous_hot: np.ndarray | None = None
        #: Per-extension fraction of hot pages shared with the previous
        #: extension (the Fig. 5 series).
        self.hot_overlap_history: list[float] = []
        if mode == UNIFIED_ONLY:
            region.set_unified_pages(np.arange(region.total_pages, dtype=np.int64))
        elif mode == ZEROCOPY_ONLY:
            region.set_unified_pages(np.empty(0, dtype=np.int64))

    @property
    def extension_index(self) -> int:
        return self._extension_index

    def spatial_locality(
        self, vertices: np.ndarray, multiplicities: np.ndarray | None = None
    ) -> np.ndarray:
        """Def. 4.1: per-page access quantity of the upcoming extension.

        Each requested adjacency list ``l(v)`` contributes
        ``|l(v)| * times(l(v))`` to every page it overlaps.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        heat = np.zeros(self.region.total_pages, dtype=np.float64)
        if len(vertices) == 0:
            return heat
        if multiplicities is None:
            vertices, multiplicities = np.unique(vertices, return_counts=True)
        starts = self._offsets[vertices]
        ends = self._offsets[vertices + 1]
        sizes = ends - starts
        weights = sizes.astype(np.float64) * multiplicities
        first = (starts * self._itemsize) // self._page_size
        last = np.maximum(first, (ends * self._itemsize - 1) // self._page_size)
        # Distribute each list's weight onto [first, last] via a difference
        # array, skipping empty lists.
        live = sizes > 0
        diff = np.zeros(self.region.total_pages + 1, dtype=np.float64)
        np.add.at(diff, first[live], weights[live])
        np.add.at(diff, last[live] + 1, -weights[live])
        heat = np.cumsum(diff)[:-1]
        return heat

    def plan_extension(
        self, vertices: np.ndarray, multiplicities: np.ndarray | None = None
    ) -> np.ndarray:
        """Pick the unified page set for the upcoming extension and update
        the temporal history.  Returns the chosen hot page ids."""
        self._extension_index += 1
        spatial = self.spatial_locality(vertices, multiplicities)
        volume = float(spatial.sum())

        if self.mode == HYBRID:
            if self._history_volume > 0:
                w_spatial = volume / (volume + self._history_volume)
            else:
                w_spatial = 1.0
            heat = w_spatial * spatial + (1.0 - w_spatial) * self._temporal
            capacity = self.region.buffer_capacity_pages
            hot = self._hottest_pages(heat, capacity)
            # Quantitative model (§IV): beyond the buffered hot set, a page
            # still belongs on unified access if the extension will read it
            # more than the break-even number of times — one 4 KB migration
            # then beats re-fetching the same bytes through 128 B zero-copy
            # transactions on every access.
            reused = np.flatnonzero(
                spatial * self._itemsize
                >= self._break_even_reuse() * self.platform.spec.page_size
            )
            hot = np.union1d(hot, reused)
            # Pages already buffered on the device are served from there for
            # free — demoting them to zero-copy would refetch data the
            # device already holds.
            hot = np.union1d(hot, self.region.buffer.resident_pages)
            self.region.set_unified_pages(hot)
        elif self.mode == UNIFIED_ONLY:
            hot = np.arange(self.region.total_pages, dtype=np.int64)
        else:
            hot = np.empty(0, dtype=np.int64)

        self._record_overlap(spatial)
        self._temporal += spatial
        self._history_volume += volume
        tel = self.platform.telemetry
        if tel.active:
            tel.metric("planner.hot_pages", len(hot),
                       region=getattr(self.region, "name", "region"))
        return hot

    def heat_histogram(self, bins: int = 8) -> dict:
        """Temporal page-heat histogram: pages per heat bucket.

        The telemetry layer polls this as an end-of-run gauge — the page-
        heat profile that explains why hybrid access wins (Fig. 5's skew
        rendered as a distribution).  Bucket keys are the upper heat bound.
        """
        heat = self._temporal
        hot = heat[heat > 0]
        cold = int(len(heat) - len(hot))
        if len(hot) == 0:
            return {"cold": float(cold)}
        edges = np.linspace(0.0, float(hot.max()), bins + 1)
        counts, _ = np.histogram(hot, bins=edges if edges[-1] > 0 else bins)
        out = {"cold": float(cold)}
        for i, count in enumerate(counts):
            out[f"<={edges[i + 1]:.4g}"] = float(count)
        return out

    #: Bias below 1.0 promotes pages slightly before the single-extension
    #: break-even: pages hot now tend to stay hot (Fig. 5), so the migrated
    #: copy usually pays for itself again in later extensions.
    promotion_bias: float = 0.5

    def _break_even_reuse(self) -> float:
        """Page reads at which one unified migration is cheaper than serving
        every read through zero-copy transactions."""
        spec = self.platform.spec
        cost = self.platform.cost
        migrate = cost.page_fault_overhead + spec.page_size / cost.pcie_bandwidth
        lines = spec.page_size // spec.zerocopy_line
        zerocopy = (
            spec.page_size / cost.zerocopy_bandwidth + lines * cost.zerocopy_latency
        )
        return self.promotion_bias * migrate / zerocopy

    def _hottest_pages(self, heat: np.ndarray, capacity: int) -> np.ndarray:
        """Top-``capacity`` pages by heat (zero-heat pages never qualify)."""
        candidates = np.flatnonzero(heat > 0)
        if len(candidates) <= capacity:
            return candidates
        # argpartition for the top-k, then a deterministic tie-break sort.
        part = candidates[
            np.argpartition(heat[candidates], -capacity)[-capacity:]
        ]
        order = np.lexsort((part, -heat[part]))
        return np.sort(part[order])

    def _record_overlap(self, spatial: np.ndarray) -> None:
        """Fig. 5's statistic: share of this extension's hot pages already
        hot in the previous extension."""
        capacity = max(1, self.region.buffer_capacity_pages)
        current_hot = self._hottest_pages(spatial, capacity)
        if self._previous_hot is not None and len(current_hot):
            shared = np.intersect1d(
                current_hot, self._previous_hot, assume_unique=True
            )
            self.hot_overlap_history.append(len(shared) / len(current_hot))
        self._previous_hot = current_hot
