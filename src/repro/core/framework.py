"""GAMMA: the user-facing framework object (paper Fig. 3).

:class:`Gamma` wires the whole stack for one data graph: the simulated
platform, the hybrid graph residency with one access-heat planner per
adjacency region, the result-buffer memory pool, the extension engine and
the canonical encoder.  Its methods mirror the paper's user-visible
interfaces — ``vertex_extension``, ``edge_extension``, ``aggregation``,
``filtering``, ``output_results`` — so the algorithm drivers in
:mod:`repro.algorithms` read like Algorithms 1 and 2.

:class:`GammaConfig` exposes every design knob the evaluation ablates:
write strategy (Fig. 17/18), pre-merge (Fig. 17/18), access mode (Fig. 20),
sort method (Fig. 19), compaction (Fig. 10) and warp count (Fig. 16).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from ..errors import (
    DeviceOutOfMemory,
    ExecutionError,
    HostOutOfMemory,
    SpillIOError,
)
from ..graph.canonical import QuickPatternEncoder
from ..graph.csr import CSRGraph
from ..gpusim.platform import GpuPlatform, make_platform
from ..gpusim.spec import CostModel
from ..resilience import runner as res_runner
from ..resilience.checkpoint import CheckpointManager
from ..resilience.faults import BACKOFF_CATEGORY
from .access_planner import ACCESS_MODES, HYBRID, AccessHeatPlanner
from .aggregation import aggregate_edge_table, dedup_embeddings
from .embedding_table import EDGE, VERTEX, EmbeddingTable
from .extension import ExtensionEngine, ExtensionStats
from .filtering import MinSupport, filter_by_support, filter_rows
from .memory_pool import (
    DEFAULT_BLOCK_BYTES,
    DYNAMIC,
    STRATEGIES,
    MemoryPool,
    make_write_strategy,
)
from .pattern_table import PatternTable
from .residence import GammaResidence
from .sort import DEFAULT_P_SIZE, MULTI_MERGE, SORT_METHODS
from .spill import SpillPolicy, SpillStore


@dataclass(frozen=True)
class GammaConfig:
    """Design knobs of the framework (defaults = the paper's GAMMA)."""

    #: Active warps (Fig. 16 sweeps this); ``None`` = device default.
    num_warps: Optional[int] = None
    #: Device memory override in bytes (``None`` = scaled V100 default).
    device_memory_bytes: Optional[int] = None
    #: Host access strategy for the CSR: hybrid | unified | zerocopy (Fig. 20).
    access_mode: str = HYBRID
    #: Optimization 2 (Fig. 17/18 "pre-merge").
    pre_merge: bool = True
    #: Optimization 1 (Fig. 17/18 "dynamic-alloc"); dynamic | two_pass | prealloc.
    write_strategy: str = DYNAMIC
    #: Embedding-table compression after filtering (§V-A).
    compaction: bool = True
    #: Memory-pool block size (8 KB in the paper).
    block_bytes: int = DEFAULT_BLOCK_BYTES
    #: Fraction of device memory for the result-buffer pool.
    pool_fraction: float = 0.25
    #: Fraction of device memory for each hybrid region's page buffer.
    buffer_fraction: float = 0.2
    #: Optimization 3 (Fig. 19): multi_merge | naive_merge | xtr2sort | cpu_sort.
    sort_method: str = MULTI_MERGE
    #: Checkpoint spacing for the multi-merge.
    p_size: int = DEFAULT_P_SIZE
    #: Device write buffer for extension results (§V-A).
    write_buffer_bytes: int = 2 << 20
    #: Extension tier beyond host memory: spill cold embedding-table
    #: columns to disk (repro.core.spill) instead of dying with host OOM.
    spill_to_disk: bool = False
    #: Host bytes an embedding table may hold before spilling; ``None`` =
    #: half the simulated host memory.
    spill_budget_bytes: Optional[int] = None
    #: Most recent columns kept resident when spilling.
    spill_keep_columns: int = 2
    #: Cost-model override (calibration experiments).
    cost: Optional[CostModel] = None

    def __post_init__(self) -> None:
        if self.access_mode not in ACCESS_MODES:
            raise ExecutionError(f"access_mode must be one of {ACCESS_MODES}")
        if self.write_strategy not in STRATEGIES:
            raise ExecutionError(f"write_strategy must be one of {STRATEGIES}")
        if self.sort_method not in SORT_METHODS:
            raise ExecutionError(f"sort_method must be one of {SORT_METHODS}")
        if not 0 < self.pool_fraction < 1 or not 0 < self.buffer_fraction < 1:
            raise ExecutionError("pool/buffer fractions must be in (0, 1)")

    def variant(self, **changes) -> "GammaConfig":
        """A copy with some knobs changed (ablation convenience)."""
        return replace(self, **changes)


class Gamma:
    """The GAMMA framework bound to one data graph."""

    def __init__(
        self,
        graph: CSRGraph,
        config: GammaConfig | None = None,
        platform: GpuPlatform | None = None,
    ) -> None:
        self.graph = graph
        self.config = config if config is not None else GammaConfig()
        if platform is None:
            platform = make_platform(
                num_warps=self.config.num_warps,
                device_memory_bytes=self.config.device_memory_bytes,
                cost=self.config.cost,
            )
        self.platform = platform

        tel = platform.telemetry
        with tel.span("gamma-setup", kind="phase"):
            page = platform.spec.page_size
            buffer_pages = max(
                1, int(platform.spec.device_memory_bytes * self.config.buffer_fraction) // page
            )
            self.residence = GammaResidence(platform, graph, buffer_pages)
            self.planners = {
                "neighbors": AccessHeatPlanner(
                    platform,
                    self.residence.neighbors,  # gammalint: allow[charge] -- wiring the region + offsets INTO the charging machinery, not reading data
                    graph.offsets,  # gammalint: allow[charge] -- wiring the region + offsets INTO the charging machinery, not reading data
                    mode=self.config.access_mode,
                ),
            }
            pool_bytes = max(
                self.config.block_bytes,
                int(platform.spec.device_memory_bytes * self.config.pool_fraction),
            )
            self.pool = (
                MemoryPool(platform, pool_bytes, self.config.block_bytes)
                if self.config.write_strategy == DYNAMIC
                else None
            )
            self._strategy = make_write_strategy(
                self.config.write_strategy, platform, self.pool
            )
            self._vertex_engine = ExtensionEngine(
                platform, self.residence, self._strategy,
                pre_merge=self.config.pre_merge,
                planner=self.planners["neighbors"],
            )
        # Built on first edge extension, so vertex-only workloads never map
        # the edge-side CSR copies (see GammaResidence).
        self._edge_engine_cache: ExtensionEngine | None = None
        self.encoder = QuickPatternEncoder()
        self._tables: list[EmbeddingTable] = []
        self._spill_store: SpillStore | None = None
        self._closed = False
        # Journaled-replay checkpointing (repro.resilience).  ``None`` until
        # run()/enable_checkpointing arms it, so plain use pays nothing but
        # one ``is None`` test per user-visible op.
        self._journal: list | None = None
        self._op_index = 0
        self._replay_cursor = 0
        self._last_state: dict | None = None
        self._ckpt_mgr: CheckpointManager | None = None
        # Installed by the "spill" degradation policy so tables created
        # after it engages are covered too.
        self._spill_policy_override: SpillPolicy | None = None
        if tel.active:
            self._register_gauges(tel)

    def _register_gauges(self, tel) -> None:
        """End-of-run derived gauges (polled once by the span collector)."""
        planner = self.planners["neighbors"]
        tel.gauge("planner.page_heat", planner.heat_histogram)
        pool = self.pool
        if pool is not None:
            tel.gauge("pool.blocks_served", lambda: pool.blocks_served)
            tel.gauge("pool.wasted_bytes", lambda: pool.wasted_bytes)
            tel.gauge(
                "pool.block_occupancy",
                lambda: 1.0 - pool.wasted_bytes
                / max(1, pool.blocks_served * pool.block_bytes),
            )

    # -- table construction (Fig. 3 data structures) -----------------------------
    def _write_buffer_bytes(self) -> int:
        """The configured ET write buffer, capped so small simulated devices
        (memory-scaling experiments) still leave room for everything else."""
        return min(
            self.config.write_buffer_bytes,
            self.platform.spec.device_memory_bytes // 8,
        )

    def _attach_spill(self, table: EmbeddingTable) -> None:
        if self._spill_policy_override is not None:
            if self._spill_store is None:
                self._spill_store = SpillStore(self.platform)
            table.attach_spill(self._spill_store, self._spill_policy_override)
            return
        if not self.config.spill_to_disk:
            return
        if self._spill_store is None:
            self._spill_store = SpillStore(self.platform)
        budget = self.config.spill_budget_bytes
        if budget is None:
            budget = self.platform.spec.host_memory_bytes // 2
        table.attach_spill(
            self._spill_store,
            SpillPolicy(budget, keep_columns=self.config.spill_keep_columns),
        )

    def _build_table(self, kind: str, name: str) -> EmbeddingTable:
        """Raw table construction (also used when a checkpoint is restored
        into a fresh engine, bypassing the op journal)."""
        table = EmbeddingTable(
            self.platform, kind, name,
            write_buffer_bytes=self._write_buffer_bytes(),
        )
        self._attach_spill(table)
        table.owner = self  # lets the Fig. 3 free functions find the engine
        self._tables.append(table)
        return table

    def new_vertex_table(self, name: str = "v-ET") -> EmbeddingTable:
        return self._run_op(
            "new-table",
            lambda: self._build_table(VERTEX, name),
            capture=lambda table: {"index": len(self._tables) - 1},
            apply=lambda payload: self._tables[payload["index"]],
        )

    def new_edge_table(self, name: str = "e-ET") -> EmbeddingTable:
        return self._run_op(
            "new-table",
            lambda: self._build_table(EDGE, name),
            capture=lambda table: {"index": len(self._tables) - 1},
            apply=lambda payload: self._tables[payload["index"]],
        )

    @property
    def _edge_engine(self) -> ExtensionEngine:
        if self._edge_engine_cache is None:
            planner = AccessHeatPlanner(
                self.platform,
                self.residence.edge_slots,
                self.graph.offsets,  # gammalint: allow[charge] -- wiring the planner; offsets are its page-heat index, not a data read
                mode=self.config.access_mode,
            )
            self.planners["edge_slots"] = planner
            self._edge_engine_cache = ExtensionEngine(
                self.platform, self.residence, self._strategy,
                pre_merge=self.config.pre_merge, planner=planner,
            )
            tel = self.platform.telemetry
            if tel.active:
                tel.gauge("planner.page_heat_edges", planner.heat_histogram)
        return self._edge_engine_cache

    # -- resilience: op journal, checkpoints, degradation (repro.resilience) --
    def _run_op(self, kind: str, execute, capture=None, apply=None):
        """Route one user-visible op through the replay journal.

        Without checkpointing armed this is a passthrough.  Armed, each op
        gets an index: indices below the replay cursor were already executed
        before the checkpoint, so their recorded result is re-applied
        (``apply``) without touching the platform — restored tables, clock
        and counters already reflect them.  Past the cursor, the op runs
        live, its result is journaled (``capture``), and a new snapshot is
        taken — level-granular checkpointing, since extensions are ops.
        """
        if self._journal is None:
            return execute()
        index = self._op_index
        self._op_index += 1
        if index < self._replay_cursor:
            record = self._journal[index]
            if record["kind"] != kind:
                raise ExecutionError(
                    f"resume mismatch at op {index}: the checkpoint journal "
                    f"recorded {record['kind']!r} but the driver issued "
                    f"{kind!r} — resume requires the same workload"
                )
            return apply(record["payload"]) if apply is not None else None
        result = execute()
        self._journal.append(
            {"kind": kind,
             "payload": capture(result) if capture is not None else {}}
        )
        self._checkpoint()
        return result

    def custom_op(self, kind: str, execute, capture=None, apply=None):
        """Route an engine-extension step through the op journal.

        Layers built on top of the engine (e.g. the sharded front-end's
        exchange/barrier steps, :mod:`repro.shard`) must bill their charges
        inside ops: during a resumed replay only op results are re-applied,
        so any charge made between ops would be double-billed.  ``execute``
        runs the step live; ``capture`` turns its result into a
        checkpoint-serializable payload; ``apply`` rebuilds the result from
        that payload during replay.  Semantics match the built-in ops
        (see :meth:`run`).
        """
        return self._run_op(kind, execute, capture, apply)

    def _checkpoint(self) -> None:
        self._last_state = res_runner.capture_state(self)
        if self._ckpt_mgr is not None:
            self._ckpt_mgr.save(self._last_state)

    def enable_checkpointing(
        self,
        checkpoint_dir: str | None = None,
        resume: bool = False,
    ) -> bool:
        """Arm journaled-replay checkpointing.

        With a ``checkpoint_dir``, every completed op atomically rewrites
        ``checkpoint.bin`` there; ``resume=True`` loads it (when present)
        into this engine and arms replay, so re-running the same driver
        skips the completed ops and continues live from the crash point.
        Returns ``True`` when a checkpoint was actually loaded.
        """
        if self._journal is None:
            self._journal = []
            self._op_index = 0
            self._replay_cursor = 0
        if checkpoint_dir is not None:
            self._ckpt_mgr = CheckpointManager(checkpoint_dir)
            if resume:
                state = self._ckpt_mgr.load()
                if state is not None:
                    res_runner.restore_state(self, state)
                    self._last_state = res_runner.capture_state(self)
                    return True
        # Op-0 snapshot, so even a fault before the first op can rewind.
        self._checkpoint()
        return False

    def run(
        self,
        task,
        *,
        checkpoint_dir: str | None = None,
        resume: bool = False,
        policy=None,
        max_retries: int = 8,
        backoff_seconds: float = 0.05,
    ):
        """Run a workload with checkpoint/resume and graceful degradation.

        ``task`` is a callable taking this engine (e.g. ``lambda g:
        count_kcliques(g, 4)``) or an object with a ``run(engine)`` method.
        Checkpointing is always armed; ``checkpoint_dir``/``resume`` add
        cross-process persistence (see :meth:`enable_checkpointing`).

        ``policy`` names a degradation policy (see
        :data:`repro.resilience.DEGRADATION_POLICIES`) or is an instance.
        When a memory fault or spill I/O error escapes the task, the engine
        rewinds to the last per-op snapshot, asks the policy to adjust
        (halve extension chunks, demote unified pages, engage the disk
        tier), charges an exponential recovery backoff to the simulated
        clock, records the event in ``platform.resilience_log`` (and thus
        the run manifest), and retries — at most ``max_retries`` times.
        Without a policy, or when the policy gives up, the fault propagates.

        Drivers must route all *charged* work through the engine's op
        methods: during a resumed replay only op results are re-applied, so
        charged reads done directly between ops would be double-billed.
        """
        fn = task if callable(task) else task.run
        if isinstance(policy, str):
            from ..resilience import get_policy

            policy = get_policy(policy)
        self.enable_checkpointing(checkpoint_dir, resume=resume)
        attempts = 0
        while True:
            try:
                return fn(self)
            except (DeviceOutOfMemory, HostOutOfMemory, SpillIOError) as exc:
                attempts += 1
                if policy is None or attempts > max_retries:
                    raise
                # Rewind before asking the policy: its adjustments (planner
                # modes, page sets, spill attachments) must not be clobbered
                # by the snapshot restore.
                res_runner.rewind(self)
                action = policy.apply(self, exc, attempts)
                if action is None:
                    raise
                self.platform.clock.advance(
                    BACKOFF_CATEGORY,
                    backoff_seconds * (2 ** (attempts - 1)),
                )
                event = {
                    "type": "degradation",
                    "policy": policy.name,
                    "attempt": attempts,
                    "error": type(exc).__name__,
                }
                event.update(action)
                self.platform.resilience_log.append(event)

    # -- the five user-visible interfaces (Fig. 3) ---------------------------------
    def seed_vertices(self, table: EmbeddingTable, label: int | None = None):
        def execute():
            with self.platform.telemetry.span("seed-vertices", kind="phase"), \
                    self.platform.resilience.phase("phase:seed-vertices"):
                return self._vertex_engine.seed_vertices(table, label)

        return self._run_op(
            "seed-vertices", execute,
            capture=lambda t: {"table": self._tables.index(t)},
            apply=lambda payload: self._tables[payload["table"]],
        )

    def seed_edges(self, table: EmbeddingTable):
        def execute():
            with self.platform.telemetry.span("seed-edges", kind="phase"), \
                    self.platform.resilience.phase("phase:seed-edges"):
                return self._edge_engine.seed_edges(table)

        return self._run_op(
            "seed-edges", execute,
            capture=lambda t: {"table": self._tables.index(t)},
            apply=lambda payload: self._tables[payload["table"]],
        )

    def vertex_extension(
        self,
        table: EmbeddingTable,
        anchor_cols,
        label: int | None = None,
        greater_than_col: int | None = None,
        greater_than_cols=(),
        less_than_cols=(),
        injective: bool = True,
    ) -> ExtensionStats:
        """``Vertex_Extension(ET, G_d)`` with extension-time pruning."""
        def execute():
            with self.platform.telemetry.span("vertex-extension", kind="phase"), \
                    self.platform.resilience.phase("phase:vertex-extension"):
                return self._vertex_engine.extend_vertices(
                    table, anchor_cols, label=label,
                    greater_than_col=greater_than_col,
                    greater_than_cols=greater_than_cols,
                    less_than_cols=less_than_cols,
                    injective=injective,
                )

        return self._run_op(
            "vertex-extension", execute,
            capture=_capture_stats, apply=_apply_stats,
        )

    def vertex_extension_any(
        self,
        table: EmbeddingTable,
        anchor_cols,
        label: int | None = None,
        greater_than_col: int | None = None,
        greater_than_cols=(),
        less_than_cols=(),
        injective: bool = True,
    ) -> ExtensionStats:
        """Union-neighborhood vertex extension (Definition 3.1's literal
        ``N_v(M)``), used by connected-subgraph enumeration."""
        def execute():
            with self.platform.telemetry.span("vertex-extension", kind="phase"), \
                    self.platform.resilience.phase("phase:vertex-extension"):
                return self._vertex_engine.extend_vertices_any(
                    table, anchor_cols, label=label,
                    greater_than_col=greater_than_col,
                    greater_than_cols=greater_than_cols,
                    less_than_cols=less_than_cols,
                    injective=injective,
                )

        return self._run_op(
            "vertex-extension-any", execute,
            capture=_capture_stats, apply=_apply_stats,
        )

    def edge_extension(self, table: EmbeddingTable,
                       greater_than_col: int | None = None) -> ExtensionStats:
        """``Edge_Extension(ET, G_d)``; ``greater_than_col`` applies the
        planner's ordered-growth restriction (candidate edge id strictly
        above the id in that column)."""
        def execute():
            with self.platform.telemetry.span("edge-extension", kind="phase"), \
                    self.platform.resilience.phase("phase:edge-extension"):
                return self._edge_engine.extend_edges(
                    table, greater_than_col=greater_than_col)

        return self._run_op(
            "edge-extension", execute,
            capture=_capture_stats, apply=_apply_stats,
        )

    def aggregation(
        self,
        table: EmbeddingTable,
        pattern_table: PatternTable,
        support_metric: str = "instances",
    ) -> np.ndarray:
        """``Aggregation(ET, m_f)`` with the canonical-label map function.
        Returns per-row canonical codes; ``support_metric`` selects raw
        instance frequency or MNI."""
        def execute():
            with self.platform.resilience.phase("phase:aggregation"):
                return aggregate_edge_table(
                    self.platform, self.residence, table, self.encoder,
                    pattern_table,
                    sort_method=self.config.sort_method,
                    p_size=self.config.p_size,
                    support_metric=support_metric,
                )

        def capture(codes):
            return {
                "codes": codes,
                "pt_codes": pattern_table.codes.copy(),
                "pt_supports": pattern_table.supports.copy(),
            }

        def apply(payload):
            pattern_table.codes = np.array(payload["pt_codes"], dtype=np.int64)
            pattern_table.supports = np.array(
                payload["pt_supports"], dtype=np.int64
            )
            return np.array(payload["codes"], dtype=np.int64)

        return self._run_op("aggregation", execute, capture, apply)

    def filtering(
        self,
        table: EmbeddingTable,
        keep_mask: np.ndarray | None = None,
        pattern_table: PatternTable | None = None,
        row_codes: np.ndarray | None = None,
        constraint: MinSupport | None = None,
    ) -> int:
        """``Filtering(ET, PT, constraint)``: either a per-row mask or a
        min-support constraint over a pattern table."""
        def execute():
            with self.platform.resilience.phase("phase:filtering"):
                if keep_mask is not None:
                    return filter_rows(
                        table, keep_mask, compact=self.config.compaction
                    )
                if pattern_table is None or row_codes is None or constraint is None:
                    raise ExecutionError(
                        "support filtering needs pattern_table, row_codes "
                        "and constraint"
                    )
                return filter_by_support(
                    self.platform, table, row_codes, pattern_table, constraint,
                    compact=self.config.compaction,
                )

        def capture(removed):
            payload = {"removed": int(removed)}
            if pattern_table is not None:
                payload["pt_codes"] = pattern_table.codes.copy()
                payload["pt_supports"] = pattern_table.supports.copy()
            return payload

        def apply(payload):
            if pattern_table is not None and "pt_codes" in payload:
                pattern_table.codes = np.array(
                    payload["pt_codes"], dtype=np.int64
                )
                pattern_table.supports = np.array(
                    payload["pt_supports"], dtype=np.int64
                )
            return int(payload["removed"])

        return self._run_op("filtering", execute, capture, apply)

    def dedup(self, table: EmbeddingTable) -> int:
        """Remove duplicate embeddings (same id set)."""
        def execute():
            with self.platform.resilience.phase("phase:dedup"):
                return dedup_embeddings(self.platform, table)

        return self._run_op(
            "dedup", execute,
            capture=lambda removed: {"removed": int(removed)},
            apply=lambda payload: int(payload["removed"]),
        )

    def output_results(
        self,
        table: EmbeddingTable | None = None,
        pattern_table: PatternTable | None = None,
    ):
        """``output_results(ET, PT)``: materialize what the caller asked for."""
        def execute():
            with self.platform.resilience.phase("phase:output"):
                outputs = []
                if table is not None:
                    outputs.append(table.materialize())
                if pattern_table is not None:
                    outputs.append(pattern_table.as_dict())
                if not outputs:
                    raise ExecutionError("nothing to output")
                return outputs[0] if len(outputs) == 1 else tuple(outputs)

        def capture(result):
            payload = {}
            if table is not None:
                payload["matrix"] = (
                    result[0] if pattern_table is not None else result
                )
            if pattern_table is not None:
                payload["pt_codes"] = pattern_table.codes.copy()
                payload["pt_supports"] = pattern_table.supports.copy()
            return payload

        def apply(payload):
            outputs = []
            if table is not None:
                outputs.append(np.array(payload["matrix"], dtype=np.int64))
            if pattern_table is not None:
                outputs.append({
                    int(c): int(s)
                    for c, s in zip(payload["pt_codes"],
                                    payload["pt_supports"])
                })
            if not outputs:
                raise ExecutionError("nothing to output")
            return outputs[0] if len(outputs) == 1 else tuple(outputs)

        return self._run_op("output-results", execute, capture, apply)

    # -- bookkeeping ------------------------------------------------------------
    @property
    def simulated_seconds(self) -> float:
        return self.platform.simulated_seconds

    @property
    def peak_device_bytes(self) -> int:
        return self.platform.device.peak

    @property
    def peak_host_bytes(self) -> int:
        return self.platform.host_peak

    @property
    def peak_memory_bytes(self) -> int:
        """Fig. 10's quantity: host + device peak."""
        return self.peak_device_bytes + self.peak_host_bytes

    def close(self) -> None:
        """Release all platform resources (idempotent)."""
        if self._closed:
            return
        for table in self._tables:
            table.release()
        if self.pool is not None:
            self.pool.release()
        if self._spill_store is not None:
            self._spill_store.close()
        self.residence.release()
        self._closed = True

    def __enter__(self) -> "Gamma":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _capture_stats(stats: ExtensionStats) -> dict:
    """Journal payload for an extension op (checkpoint-serializable)."""
    return {
        "rows_in": int(stats.rows_in),
        "rows_out": int(stats.rows_out),
        "candidates": int(stats.candidates),
        "groups": int(stats.groups),
        "kernel_ops": float(stats.kernel_ops),
        "list_reads": int(stats.list_reads),
        "per_row_counts": stats.per_row_counts,
    }


def _apply_stats(payload: dict) -> ExtensionStats:
    return ExtensionStats(
        rows_in=int(payload["rows_in"]),
        rows_out=int(payload["rows_out"]),
        candidates=int(payload["candidates"]),
        groups=int(payload["groups"]),
        kernel_ops=float(payload["kernel_ops"]),
        list_reads=int(payload["list_reads"]),
        per_row_counts=np.array(payload["per_row_counts"], dtype=np.int64),
    )
