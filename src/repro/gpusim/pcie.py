"""PCIe bus model.

All host<->device traffic flows through one :class:`PcieBus`: explicit bulk
copies (used by in-core baselines to stage graphs), unified-memory page
migrations, and zero-copy 128 B transactions.  The bus charges simulated time
to the clock and records byte counters, so benchmarks can attribute the cost
of each access strategy (paper §II-B, §VI-F).
"""

from __future__ import annotations

from . import clock as clk
from . import stats as st
from .clock import SimClock
from .spec import CostModel, DeviceSpec
from .stats import Counters


class PcieBus:
    """Simulated PCIe link between host and device memory."""

    def __init__(
        self,
        spec: DeviceSpec,
        cost: CostModel,
        clock: SimClock,
        counters: Counters,
    ) -> None:
        self._spec = spec
        self._cost = cost
        self._clock = clock
        self._counters = counters

    def explicit_copy(self, nbytes: int, to_device: bool = True) -> None:
        """Bulk ``cudaMemcpy``-style transfer of ``nbytes``."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if nbytes == 0:
            return
        self._clock.advance(clk.PCIE_EXPLICIT, nbytes / self._cost.pcie_bandwidth)
        key = st.BYTES_H2D if to_device else st.BYTES_D2H
        self._counters.add(key, nbytes)

    def migrate_pages(self, npages: int) -> None:
        """Unified-memory page migration: fault handling + 4 KB transfers."""
        if npages < 0:
            raise ValueError("npages must be >= 0")
        if npages == 0:
            return
        nbytes = npages * self._spec.page_size
        self._clock.advance(clk.PAGE_FAULT, npages * self._cost.page_fault_overhead)
        self._clock.advance(clk.PCIE_UNIFIED, nbytes / self._cost.pcie_bandwidth)
        self._counters.add(st.PAGE_FAULTS, npages)
        self._counters.add(st.BYTES_H2D, nbytes)

    def bulk_unified(self, nbytes: int, prefetch_pages: int = 16) -> None:
        """Sequential unified-memory streaming (e.g. embedding-table columns).

        Sequential access lets the driver prefetch runs of pages, so the
        per-page fault overhead is paid once per ``prefetch_pages`` pages
        instead of per page ("the access to the embedding table is
        concentrated and continuous", paper §V-A).
        """
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if nbytes == 0:
            return
        npages = -(-nbytes // self._spec.page_size)
        nfaults = -(-npages // max(1, prefetch_pages))
        self._clock.advance(clk.PAGE_FAULT, nfaults * self._cost.page_fault_overhead)
        self._clock.advance(clk.PCIE_UNIFIED, nbytes / self._cost.pcie_bandwidth)
        self._counters.add(st.PAGE_FAULTS, nfaults)
        self._counters.add(st.BYTES_H2D, nbytes)

    def zerocopy_transactions(self, nlines: int) -> None:
        """``nlines`` scattered 128 B zero-copy reads over the bus."""
        if nlines < 0:
            raise ValueError("nlines must be >= 0")
        if nlines == 0:
            return
        nbytes = nlines * self._spec.zerocopy_line
        seconds = (
            nbytes / self._cost.zerocopy_bandwidth
            + nlines * self._cost.zerocopy_latency
        )
        self._clock.advance(clk.PCIE_ZEROCOPY, seconds)
        self._counters.add(st.ZC_TRANSACTIONS, nlines)
        self._counters.add(st.BYTES_H2D, nbytes)

    def writeback(self, nbytes: int) -> None:
        """Device-buffer flush back to host memory (ET write buffer, §V-A)."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if nbytes == 0:
            return
        self._clock.advance(clk.PCIE_EXPLICIT, nbytes / self._cost.pcie_bandwidth)
        self._counters.add(st.BYTES_D2H, nbytes)
