"""Zero-copy host-memory access.

Zero-copy memory maps pinned host memory into the device address space with
no device-side buffer: every access moves a 128 B transaction across PCIe
(paper §II-B).  It wins for isolated, infrequently touched data because it
never migrates a whole 4 KB page for a few bytes — and loses when the same
data is re-read, since nothing is cached.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from .regions import HostRegion, range_lengths_in_units, units_for_indices

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .platform import GpuPlatform


class ZeroCopyRegion(HostRegion):
    """A host array accessed through zero-copy (pinned) mappings."""

    def __init__(self, name: str, array: np.ndarray, platform: "GpuPlatform") -> None:
        super().__init__(name, array, platform)
        line = platform.spec.zerocopy_line
        self._total_lines = max(1, -(-array.nbytes // line))

    def _charge_elements(self, indices: np.ndarray) -> None:
        if len(indices) == 0:
            return
        lines = units_for_indices(
            indices,
            self._itemsize,
            self._platform.spec.zerocopy_line,
            total_units=self._total_lines,
        )
        self._platform.pcie.zerocopy_transactions(len(lines))

    def _charge_ranges(
        self, starts: np.ndarray, ends: np.ndarray, flat: np.ndarray
    ) -> None:
        # Coalesced within each range; re-fetched across ranges (no cache).
        starts = np.asarray(starts, dtype=np.int64)
        ends = np.asarray(ends, dtype=np.int64)
        nlines = self._charge_memo.lookup(starts, ends)
        if nlines is None:
            nlines = int(
                range_lengths_in_units(
                    starts, ends, self._itemsize, self._platform.spec.zerocopy_line
                ).sum()
            )
            self._charge_memo.store(starts, ends, nlines)
        self._platform.pcie.zerocopy_transactions(nlines)
