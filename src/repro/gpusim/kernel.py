"""Kernel launch accounting and CPU execution cost.

Engines perform their real work in vectorized NumPy and report the amount of
logical device work (element ops, device bytes) to :class:`KernelLauncher`,
which converts it into simulated time.  CPU baselines report work to
:class:`CpuExecutor` instead.  The two share one clock, so GPU and CPU
systems can be compared on the same simulated timeline.
"""

from __future__ import annotations

from ..obs.spans import KERNEL, NULL_TELEMETRY
from . import clock as clk
from . import stats as st
from .clock import SimClock
from .spec import CostModel, DeviceSpec
from .stats import Counters


class KernelLauncher:
    """Charges simulated time for device kernels."""

    def __init__(
        self,
        spec: DeviceSpec,
        cost: CostModel,
        clock: SimClock,
        counters: Counters,
        num_warps: int | None = None,
    ) -> None:
        self._spec = spec
        self._cost = cost
        self._clock = clock
        self._counters = counters
        #: Active warp count; Fig. 16's warp-scaling sweep overrides this.
        self.num_warps = num_warps if num_warps is not None else spec.active_warps
        #: Telemetry sink; ``GpuPlatform.attach_telemetry`` swaps this in.
        self.telemetry = NULL_TELEMETRY

    @property
    def ops_per_second(self) -> float:
        lanes = self.num_warps * self._spec.warp_size
        return lanes * self._spec.clock_hz * self._cost.gpu_ipc

    def launch(
        self,
        name: str,
        element_ops: float = 0.0,
        device_bytes: float = 0.0,
        serial_steps: float = 0.0,
    ) -> None:
        """Record one kernel execution.

        ``element_ops`` is work divisible across all lanes; ``serial_steps``
        is per-warp serial work (e.g. a loop every warp runs in full) charged
        at single-lane throughput; ``device_bytes`` is device-memory traffic.
        """
        if min(element_ops, device_bytes, serial_steps) < 0:
            raise ValueError("kernel work quantities must be >= 0")
        tel = self.telemetry
        if tel.active:
            with tel.span("kernel:" + name, kind=KERNEL):
                self._charge(element_ops, device_bytes, serial_steps)
        else:
            self._charge(element_ops, device_bytes, serial_steps)

    def _charge(
        self,
        element_ops: float,
        device_bytes: float,
        serial_steps: float,
    ) -> None:
        self._clock.advance(clk.KERNEL_LAUNCH, self._cost.kernel_launch_overhead)
        self._counters.add(st.KERNEL_LAUNCHES)
        if element_ops:
            self._clock.advance(clk.COMPUTE, element_ops / self.ops_per_second)
            self._counters.add(st.ELEMENT_OPS, int(element_ops))
        if serial_steps:
            lane_rate = self._spec.clock_hz * self._cost.gpu_serial_ipc
            self._clock.advance(clk.COMPUTE, serial_steps / lane_rate)
        if device_bytes:
            self._clock.advance(
                clk.DEVICE_MEM, device_bytes / self._cost.device_bandwidth
            )
            self._counters.add(st.BYTES_DEVICE, int(device_bytes))


class CpuExecutor:
    """Charges simulated time for host-CPU work (baseline systems)."""

    def __init__(
        self,
        cost: CostModel,
        clock: SimClock,
        counters: Counters,
        threads: int = 1,
    ) -> None:
        if threads <= 0:
            raise ValueError("threads must be positive")
        self._cost = cost
        self._clock = clock
        self._counters = counters
        self.threads = threads

    @property
    def ops_per_second(self) -> float:
        return self._cost.cpu_ops_per_second(self.threads)

    def work(self, element_ops: float) -> None:
        """Record ``element_ops`` of parallelizable CPU work."""
        if element_ops < 0:
            raise ValueError("element_ops must be >= 0")
        if element_ops:
            self._clock.advance(clk.CPU_COMPUTE, element_ops / self.ops_per_second)
            self._counters.add(st.CPU_OPS, int(element_ops))
