"""Event counters for the simulated platform.

Counters are the simulator's ground truth: memory regions count transactions
and page faults, the kernel launcher counts element ops, and the cost model
converts those into simulated time.  Benchmarks also report raw counters
(e.g. bytes over PCIe) because they explain *why* one configuration beats
another — the same style of analysis the paper uses for its hybrid-access
evaluation (§VI-F).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator

#: Canonical counter names.
PAGE_FAULTS = "page_faults"
PAGE_HITS = "page_hits"
PAGES_EVICTED = "pages_evicted"
ZC_TRANSACTIONS = "zc_transactions"
BYTES_H2D = "bytes_h2d"
BYTES_D2H = "bytes_d2h"
BYTES_DEVICE = "bytes_device"
KERNEL_LAUNCHES = "kernel_launches"
ELEMENT_OPS = "element_ops"
CPU_OPS = "cpu_ops"
MEMORY_BLOCKS_ALLOCATED = "memory_blocks_allocated"
MEMORY_BLOCKS_WASTED_BYTES = "memory_blocks_wasted_bytes"
EXTENSION_PASSES = "extension_passes"
EMBEDDINGS_PRODUCED = "embeddings_produced"
EMBEDDINGS_FILTERED = "embeddings_filtered"
SORT_ELEMENTS = "sort_elements"

#: Every canonical counter, in declaration order — reporting unions this
#: with the observed names so report columns stay stable across runs.
CANONICAL_COUNTERS = (
    PAGE_FAULTS, PAGE_HITS, PAGES_EVICTED, ZC_TRANSACTIONS,
    BYTES_H2D, BYTES_D2H, BYTES_DEVICE, KERNEL_LAUNCHES,
    ELEMENT_OPS, CPU_OPS, MEMORY_BLOCKS_ALLOCATED,
    MEMORY_BLOCKS_WASTED_BYTES, EXTENSION_PASSES, EMBEDDINGS_PRODUCED,
    EMBEDDINGS_FILTERED, SORT_ELEMENTS,
)


class Counters:
    """A bag of monotonically increasing named counters."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = defaultdict(int)

    def add(self, name: str, amount: int = 1) -> None:
        """Increment ``name`` by ``amount`` (must be non-negative).

        A zero increment still marks the counter as *touched*, so it
        shows up in ``snapshot(include_zero=True)`` — benchmarks get the
        same column set whether an event fired or not.
        """
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        if amount:
            self._counts[name] += int(amount)
        elif name not in self._counts:
            self._counts[name] = 0

    def get(self, name: str) -> int:
        """Current value of ``name`` (0 if never incremented)."""
        return self._counts.get(name, 0)

    def snapshot(self, include_zero: bool = False) -> Dict[str, int]:
        """A copy of the counters.

        By default zero-valued entries are dropped (terse reports); pass
        ``include_zero=True`` for every touched counter — the stable form
        manifests and ``bench/reporting.py`` use so two runs of the same
        workload always expose identical columns.
        """
        if include_zero:
            return dict(self._counts)
        return {k: v for k, v in self._counts.items() if v}

    def reset(self) -> None:
        """Zero every counter (touched names stay visible to
        ``snapshot(include_zero=True)``)."""
        for name in self._counts:
            self._counts[name] = 0

    def restore(self, counts: Dict[str, int]) -> None:
        """Overwrite every counter from a ``snapshot(include_zero=True)``
        mapping (checkpoint resume)."""
        self._counts.clear()
        for name, value in counts.items():
            self._counts[str(name)] = int(value)

    def __iter__(self) -> Iterator[tuple[str, int]]:
        return iter(sorted(self._counts.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{k}={v}" for k, v in self)
        return f"Counters({parts})"
