"""Warp-level execution helpers.

The paper leans on three warp facts (§II-A): threads in a warp run in SIMT
lock-step (intra-warp sync is free), warps are the unit of memory-block
ownership in Optimization 1, and "hundreds of active warps" bound allocator
contention.  This module provides the warp abstractions the engines use:
task partitioning across warps, warp-level exclusive prefix scan (the
intra-warp write-conflict resolution of Challenge 1), and ballot.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from . import clock as clk
from .clock import SimClock
from .spec import CostModel, DeviceSpec


class WarpGrid:
    """Assignment of a task list to the device's active warps.

    Tasks are dealt out in contiguous chunks, mirroring a grid-stride loop.
    ``partition(n)`` yields ``(warp_id, start, stop)`` triples covering
    ``[0, n)``; warps with no work are skipped.
    """

    def __init__(self, num_warps: int, warp_size: int = 32) -> None:
        if num_warps <= 0:
            raise ValueError("num_warps must be positive")
        self.num_warps = num_warps
        self.warp_size = warp_size

    def partition(self, n_tasks: int) -> Iterator[Tuple[int, int, int]]:
        if n_tasks < 0:
            raise ValueError("n_tasks must be >= 0")
        if n_tasks == 0:
            return
        per_warp = -(-n_tasks // self.num_warps)
        for warp_id in range(min(self.num_warps, n_tasks)):
            start = warp_id * per_warp
            stop = min(start + per_warp, n_tasks)
            if start >= stop:
                return
            yield warp_id, start, stop

    def chunk_bounds(self, n_tasks: int) -> np.ndarray:
        """Chunk boundaries as an array ``[b0, b1, ..., bk]`` with
        ``b0 = 0`` and ``bk = n_tasks``."""
        bounds = [0]
        for __, __, stop in self.partition(n_tasks):
            bounds.append(stop)
        if not bounds or bounds[-1] != n_tasks:
            bounds.append(n_tasks)
        return np.asarray(bounds, dtype=np.int64)


def warp_exclusive_scan(
    values: np.ndarray,
    clock: SimClock | None = None,
    spec: DeviceSpec | None = None,
    cost: CostModel | None = None,
) -> Tuple[np.ndarray, int]:
    """Warp-level exclusive prefix scan.

    Returns ``(scan, total)``.  If a clock is supplied, charges the
    ``log2(warp_size)`` shuffle steps a hardware warp scan costs — this is
    how intra-warp write positions are resolved at "minimum cost"
    (Optimization 1 discussion).
    """
    values = np.asarray(values, dtype=np.int64)
    total = int(values.sum())
    scan = np.zeros_like(values)
    if len(values) > 1:
        scan[1:] = np.cumsum(values[:-1])
    if clock is not None and spec is not None and cost is not None and len(values):
        steps = max(1, int(np.ceil(np.log2(spec.warp_size))))
        n_warps = -(-len(values) // spec.warp_size)
        ops = n_warps * spec.warp_size * steps
        clock.advance(clk.COMPUTE, ops / cost.gpu_ops_per_second(spec))
    return scan, total


def warp_ballot(predicate: np.ndarray) -> int:
    """Ballot: pack up to 32 lane predicates into a mask (free in SIMT)."""
    predicate = np.asarray(predicate, dtype=bool)
    if len(predicate) > 32:
        raise ValueError("a ballot covers at most one warp (32 lanes)")
    mask = 0
    for lane, active in enumerate(predicate):
        if active:
            mask |= 1 << lane
    return mask
