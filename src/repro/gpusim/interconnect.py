"""Inter-GPU exchange cost model for sharded execution.

The reproduction scales out by running one simulated :class:`GpuPlatform`
per shard (see :mod:`repro.shard`).  When shards exchange data — embedding
set keys for cross-shard deduplication, pattern-table entries for
aggregation merge — the traffic is charged through an :class:`Interconnect`
bound to each platform, using the :class:`~repro.gpusim.spec.InterconnectSpec`
link model:

* ``nvlink`` — direct peer-to-peer copies at link bandwidth plus a fixed
  per-message latency, charged to the :data:`~repro.gpusim.clock.INTERCONNECT`
  bucket (G²Miner-style multi-GPU systems assume this path);
* ``pcie`` — no peer path: the sender stages through host memory (a D2H
  writeback on its own PCIe bus), the receiver pulls the staged bytes back
  up (H2D explicit copy), each side paying one staging latency per message.

Every charge lands on exactly *one* platform's clock/counters — the side
doing the work — so the per-shard op journals used by checkpoint/resume
stay self-contained (see ``docs/SHARDING.md``).
"""

from __future__ import annotations

from . import clock as clk
from .spec import NVLINK, PCIE_STAGED, DEFAULT_INTERCONNECT, InterconnectSpec

#: Counter: bytes moved over the inter-GPU fabric (both directions).
BYTES_P2P = "bytes_p2p"
#: Counter: inter-GPU messages (one per peer per exchange step).
P2P_MESSAGES = "p2p_messages"


class Interconnect:
    """Charges inter-GPU traffic to one platform's clock and counters."""

    def __init__(self, platform, spec: InterconnectSpec | None = None) -> None:
        self.platform = platform
        self.spec = spec if spec is not None else DEFAULT_INTERCONNECT

    # -- primitive transfers -------------------------------------------------
    def send(self, nbytes: int, messages: int = 1) -> None:
        """Charge pushing ``nbytes`` to peers in ``messages`` messages."""
        self._charge(nbytes, messages, to_device=False)

    def recv(self, nbytes: int, messages: int = 1) -> None:
        """Charge pulling ``nbytes`` from peers in ``messages`` messages."""
        self._charge(nbytes, messages, to_device=True)

    def _charge(self, nbytes: int, messages: int, to_device: bool) -> None:
        if nbytes < 0 or messages < 0:
            raise ValueError("nbytes/messages must be >= 0")
        if nbytes == 0 and messages == 0:
            return
        platform = self.platform
        platform.counters.add(BYTES_P2P, nbytes)
        platform.counters.add(P2P_MESSAGES, messages)
        if self.spec.kind == NVLINK:
            seconds = nbytes / self.spec.bandwidth + messages * self.spec.latency
            platform.clock.advance(clk.INTERCONNECT, seconds)
            return
        # PCIe staging: the transfer rides this platform's own host link.
        if self.spec.kind != PCIE_STAGED:  # pragma: no cover - spec validates
            raise ValueError(f"unknown interconnect kind {self.spec.kind!r}")
        if to_device:
            platform.pcie.explicit_copy(nbytes, to_device=True)
        else:
            platform.pcie.writeback(nbytes)
        platform.clock.advance(
            clk.INTERCONNECT, messages * self.spec.latency
        )

    # -- collectives ---------------------------------------------------------
    def allgather(self, nbytes_local: int, nbytes_remote: int,
                  peers: int) -> None:
        """Charge this shard's side of an all-gather.

        The shard sends its ``nbytes_local`` payload to each of ``peers``
        peers and receives ``nbytes_remote`` total from them.  With zero
        peers (single-shard runs) nothing is charged.
        """
        if peers <= 0:
            return
        self.send(nbytes_local * peers, messages=peers)
        self.recv(nbytes_remote, messages=peers)


def barrier(platforms) -> list[float]:
    """BSP barrier: advance every lagging platform to the slowest clock.

    Returns the per-platform idle seconds charged (to the
    :data:`~repro.gpusim.clock.SHARD_SYNC` bucket).  With one platform the
    barrier is free, keeping single-shard runs bit-identical to unsharded
    execution.
    """
    platforms = list(platforms)
    if len(platforms) <= 1:
        return [0.0] * len(platforms)
    target = max(p.clock.total for p in platforms)
    waits = []
    for p in platforms:
        wait = target - p.clock.total
        if wait > 0:
            p.clock.advance(clk.SHARD_SYNC, wait)
        waits.append(max(0.0, wait))
    return waits
