"""Simulated-time accounting.

The simulator never consults wall-clock time: every component charges
simulated seconds to a :class:`SimClock`, split by category so benchmarks can
report where time went (compute vs. PCIe vs. page-fault handling vs. host
preparation), mirroring the per-component analysis in the paper's §VI.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Callable, Dict, Iterator, List

#: Canonical category names used across the simulator.
COMPUTE = "compute"
DEVICE_MEM = "device_mem"
PCIE_UNIFIED = "pcie_unified"
PCIE_ZEROCOPY = "pcie_zerocopy"
PCIE_EXPLICIT = "pcie_explicit"
PAGE_FAULT = "page_fault"
KERNEL_LAUNCH = "kernel_launch"
HOST_PREP = "host_prep"
CPU_COMPUTE = "cpu_compute"
#: Inter-GPU peer traffic (sharded execution; repro.gpusim.interconnect).
INTERCONNECT = "interconnect"
#: Barrier idle time a shard spends waiting for slower peers.
SHARD_SYNC = "shard_sync"

ALL_CATEGORIES = (
    COMPUTE,
    DEVICE_MEM,
    PCIE_UNIFIED,
    PCIE_ZEROCOPY,
    PCIE_EXPLICIT,
    PAGE_FAULT,
    KERNEL_LAUNCH,
    HOST_PREP,
    CPU_COMPUTE,
    INTERCONNECT,
    SHARD_SYNC,
)


class SimClock:
    """Accumulates simulated time, bucketed by category.

    Charging a negative duration is rejected: simulated time only moves
    forward.  Unknown categories are accepted so subsystems can introduce
    finer-grained buckets without registering them first.
    """

    def __init__(self) -> None:
        self._buckets: Dict[str, float] = defaultdict(float)
        #: Callables ``(category, seconds)`` notified on every charge
        #: (see :class:`repro.gpusim.trace.TraceRecorder`).  Fan-out: any
        #: number of listeners may subscribe via :meth:`add_listener`.
        #: The deprecated single-slot ``listener`` property shim was
        #: removed; ``tests/gpusim/test_trace.py`` pins its absence.
        self._listeners: List[Callable[[str, float], None]] = []

    def add_listener(
        self, fn: Callable[[str, float], None]
    ) -> Callable[[str, float], None]:
        """Subscribe ``fn`` to every charge; returns ``fn``."""
        self._listeners.append(fn)
        return fn

    def remove_listener(self, fn: Callable[[str, float], None]) -> None:
        """Unsubscribe ``fn`` (no-op when not subscribed)."""
        try:
            self._listeners.remove(fn)
        except ValueError:
            pass

    def advance(self, category: str, seconds: float) -> None:
        """Charge ``seconds`` of simulated time to ``category``."""
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds}")
        if seconds:
            self._buckets[category] += seconds
            if self._listeners:
                for fn in self._listeners:
                    fn(category, seconds)

    @property
    def total(self) -> float:
        """Total simulated seconds across all categories.

        Exactly-rounded (``math.fsum``), so the result does not depend on
        bucket insertion order: a clock restored from a checkpoint and one
        that accrued the same buckets live report bit-identical totals —
        sharded barriers compute waits from this value, and residual-ulp
        drift there would break resume bit-parity.
        """
        return math.fsum(self._buckets.values())

    def time_in(self, category: str) -> float:
        """Simulated seconds charged to ``category`` so far."""
        return self._buckets.get(category, 0.0)

    def snapshot(self) -> Dict[str, float]:
        """A copy of all non-zero buckets."""
        return {k: v for k, v in self._buckets.items() if v}

    def reset(self) -> None:
        """Zero every bucket."""
        self._buckets.clear()

    def restore(self, buckets: Dict[str, float]) -> None:
        """Overwrite every bucket from a :meth:`snapshot` mapping.

        Used by checkpoint resume: the engine is rebuilt (charging whatever
        construction costs), then the clock is restored to the exact state
        the checkpoint recorded.  Listeners are *not* notified — restore is
        bookkeeping, not simulated activity.
        """
        self._buckets.clear()
        for category, seconds in buckets.items():
            self._buckets[str(category)] = float(seconds)

    def __iter__(self) -> Iterator[tuple[str, float]]:
        return iter(sorted(self._buckets.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{k}={v:.3e}" for k, v in self)
        return f"SimClock(total={self.total:.3e}, {parts})"


class ClockSection:
    """Context manager measuring the simulated time a block of code charges.

    Useful in tests and the benchmark harness::

        with ClockSection(clock) as section:
            engine.run()
        assert section.elapsed > 0
    """

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "ClockSection":
        self._start = self._clock.total
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = self._clock.total - self._start
