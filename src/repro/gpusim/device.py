"""Device-memory allocator.

A strict, capacity-limited bump-style allocator over the simulated device
memory.  It tracks live and peak usage per tag, and raises
:class:`~repro.errors.DeviceOutOfMemory` when capacity is exceeded — this is
the mechanism by which in-core baselines "crash on some of the datasets"
(paper Figs. 11/12/14), while GAMMA sidesteps it by keeping the graph and the
embedding table in host memory.
"""

from __future__ import annotations

from typing import Dict

from ..errors import DeviceOutOfMemory


class DeviceAllocation:
    """A live device-memory allocation; free via :meth:`DeviceMemory.free`."""

    __slots__ = ("nbytes", "tag", "_live")

    def __init__(self, nbytes: int, tag: str) -> None:
        self.nbytes = nbytes
        self.tag = tag
        self._live = True

    @property
    def live(self) -> bool:
        return self._live

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "live" if self._live else "freed"
        return f"DeviceAllocation({self.nbytes} B, tag={self.tag!r}, {state})"


class DeviceMemory:
    """Capacity-limited device-memory book-keeping."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("device capacity must be positive")
        self.capacity = int(capacity)
        self._used = 0
        self._peak = 0
        self._peak_by_tag: Dict[str, int] = {}
        self._used_by_tag: Dict[str, int] = {}

    @property
    def used(self) -> int:
        """Bytes currently allocated."""
        return self._used

    @property
    def available(self) -> int:
        """Bytes still allocatable."""
        return self.capacity - self._used

    @property
    def peak(self) -> int:
        """High-water mark of allocated bytes."""
        return self._peak

    def peak_for(self, tag: str) -> int:
        """High-water mark for one allocation tag."""
        return self._peak_by_tag.get(tag, 0)

    def allocate(self, nbytes: int, tag: str = "") -> DeviceAllocation:
        """Reserve ``nbytes``; raises :class:`DeviceOutOfMemory` on overflow."""
        if nbytes < 0:
            raise ValueError("allocation size must be >= 0")
        if nbytes > self.available:
            raise DeviceOutOfMemory(nbytes, self.available, tag)
        self._used += nbytes
        self._peak = max(self._peak, self._used)
        tag_used = self._used_by_tag.get(tag, 0) + nbytes
        self._used_by_tag[tag] = tag_used
        self._peak_by_tag[tag] = max(self._peak_by_tag.get(tag, 0), tag_used)
        return DeviceAllocation(nbytes, tag)

    def free(self, allocation: DeviceAllocation) -> None:
        """Release a live allocation (double-free raises)."""
        if not allocation.live:
            raise ValueError(f"double free of {allocation!r}")
        allocation._live = False
        self._used -= allocation.nbytes
        self._used_by_tag[allocation.tag] -= allocation.nbytes

    def try_allocate(self, nbytes: int, tag: str = "") -> DeviceAllocation | None:
        """Like :meth:`allocate` but returns ``None`` instead of raising."""
        try:
            return self.allocate(nbytes, tag)
        except DeviceOutOfMemory:
            return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeviceMemory(used={self._used}/{self.capacity}, "
            f"peak={self._peak})"
        )
