"""Unified-memory access: page faults, migration, and a device page buffer.

Unified memory treats host and device memory as one address space.  A device
access to a page resident on the host triggers a page fault and migrates a
4 KB page into a device-side buffer; later accesses to the same page hit the
buffer at device bandwidth (paper §II-B).  The buffer competes for device
memory with everything else, which is why GAMMA cannot also keep the graph
on the device (§IV).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from .. import perf
from . import clock as clk
from . import stats as st
from .regions import HostRegion, covered_units, units_for_indices

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .platform import GpuPlatform

#: Ticks beyond which the packed ``last_use * total_pages + id`` eviction
#: key could overflow int64; past it eviction falls back to ``lexsort``.
_PACKED_KEY_LIMIT = 1 << 62


class PageBuffer:
    """Device-side buffer of migrated pages with amortized LRU eviction.

    Tracks residency for a fixed page-id namespace ``[0, total_pages)``.
    Eviction frees down to capacity using least-recent access ticks; ties
    are broken by page id, keeping the simulation deterministic.  The fast
    pipeline selects victims with an O(resident) ``argpartition`` over a
    packed ``(last_use, page id)`` key instead of a full ``lexsort`` —
    the victim *set* is identical because the key order is the same.
    """

    def __init__(self, capacity_pages: int, total_pages: int) -> None:
        if capacity_pages < 0:
            raise ValueError("capacity_pages must be >= 0")
        self.capacity = int(capacity_pages)
        self.total_pages = int(total_pages)
        self._resident = np.zeros(self.total_pages, dtype=bool)
        self._last_use = np.zeros(self.total_pages, dtype=np.int64)
        self._tick = 0
        self._n_resident = 0
        self.evictions = 0

    @property
    def resident_count(self) -> int:
        return self._n_resident

    @property
    def resident_pages(self) -> np.ndarray:
        """Ids of the pages currently buffered on the device."""
        return np.flatnonzero(self._resident)

    def is_resident(self, page: int) -> bool:
        return bool(self._resident[page])

    def access(self, unique_pages: np.ndarray) -> tuple[int, int]:
        """Record an access batch; returns ``(hits, misses)``.

        The contract is a batch of *unique* page ids; a duplicated id must
        not fault twice (it would silently over-count ``resident_count``
        and inflate migration traffic), so non-unique input is deduped
        before any bookkeeping.  Missing pages are migrated in (made
        resident); if that overflows capacity, least-recently-used pages
        are evicted.  A batch larger than capacity keeps an
        arbitrary-but-deterministic subset resident.
        """
        unique_pages = np.asarray(unique_pages, dtype=np.int64)
        if len(unique_pages) > 1 and (np.diff(unique_pages) <= 0).any():
            unique_pages = np.unique(unique_pages)
        if self.capacity == 0:
            # No buffer: every access faults and the page is dropped again.
            return 0, len(unique_pages)
        self._tick += 1
        if len(unique_pages) == 0:
            return 0, 0
        resident = self._resident[unique_pages]
        hits = int(resident.sum())
        misses = len(unique_pages) - hits
        self._resident[unique_pages] = True
        self._last_use[unique_pages] = self._tick
        self._n_resident += misses
        if self._n_resident > self.capacity:
            self._evict(self._n_resident - self.capacity)
        return hits, misses

    def drop(self, pages: np.ndarray) -> None:
        """Explicitly invalidate pages (e.g. when the planner reassigns a
        page to zero-copy access)."""
        pages = np.asarray(pages, dtype=np.int64)
        if len(pages) == 0:
            return
        was_resident = self._resident[pages]
        self._resident[pages] = False
        self._n_resident -= int(was_resident.sum())

    def _evict(self, n_over: int) -> None:
        resident_ids = np.flatnonzero(self._resident)
        if n_over >= len(resident_ids):
            victims = resident_ids
        elif perf.use_reference() or self._tick >= _PACKED_KEY_LIMIT // max(
            1, self.total_pages
        ):
            # Sort by (last_use, page id) for determinism; evict the oldest.
            order = np.lexsort((resident_ids, self._last_use[resident_ids]))
            victims = resident_ids[order[:n_over]]
        else:
            # The packed key orders exactly like (last_use, page id), and
            # page ids are unique, so the n_over smallest keys select the
            # same victim *set* as the full lexsort — and only the set
            # matters: victims are cleared from a flag array, not ordered.
            keys = self._last_use[resident_ids] * np.int64(self.total_pages)
            keys += resident_ids
            victims = resident_ids[np.argpartition(keys, n_over - 1)[:n_over]]
        self._resident[victims] = False
        self._n_resident -= len(victims)
        self.evictions += len(victims)


class UnifiedRegion(HostRegion):
    """A host array accessed through unified memory.

    ``buffer_pages`` bounds the device-side page buffer; the corresponding
    device memory is allocated up front (and freed on :meth:`release`).
    """

    def __init__(
        self,
        name: str,
        array: np.ndarray,
        platform: "GpuPlatform",
        buffer_pages: int,
    ) -> None:
        super().__init__(name, array, platform)
        page = platform.spec.page_size
        total_pages = max(1, -(-array.nbytes // page))
        buffer_pages = min(buffer_pages, total_pages)
        self._buffer_alloc = platform.device.allocate(
            buffer_pages * page, f"{name}:page-buffer"
        )
        self.buffer = PageBuffer(buffer_pages, total_pages)

    def _charge_elements(self, indices: np.ndarray) -> None:
        platform = self._platform
        if len(indices) == 0:
            return
        pages = units_for_indices(
            indices,
            self._itemsize,
            platform.spec.page_size,
            total_units=self.buffer.total_pages,
        )
        hits, misses = self.buffer.access(pages)
        platform.counters.add(st.PAGE_HITS, hits)
        platform.pcie.migrate_pages(misses)
        # All requested bytes are ultimately served from the device buffer.
        nbytes = len(indices) * self._itemsize
        platform.clock.advance(clk.DEVICE_MEM, nbytes / platform.cost.device_bandwidth)
        platform.counters.add(st.BYTES_DEVICE, nbytes)

    def _charge_ranges(
        self, starts: np.ndarray, ends: np.ndarray, flat: np.ndarray | None
    ) -> None:
        platform = self._platform
        starts = np.asarray(starts, dtype=np.int64)
        ends = np.asarray(ends, dtype=np.int64)
        derived = self._charge_memo.lookup(starts, ends)
        if derived is None:
            live = ends > starts
            if not live.any():
                derived = (None, 0)
            else:
                s, e = starts[live], ends[live]
                page = platform.spec.page_size
                first = (s * self._itemsize) // page
                last = (e * self._itemsize - 1) // page
                pages = covered_units(first, last, self.buffer.total_pages)
                derived = (pages, int((e - s).sum()) * self._itemsize)
            self._charge_memo.store(starts, ends, derived)
        pages, nbytes = derived
        if pages is None:
            # No live ranges: nothing is charged and the buffer never sees
            # the batch (its access tick must not advance).
            return
        hits, misses = self.buffer.access(pages)
        platform.counters.add(st.PAGE_HITS, hits)
        platform.pcie.migrate_pages(misses)
        platform.clock.advance(clk.DEVICE_MEM, nbytes / platform.cost.device_bandwidth)
        platform.counters.add(st.BYTES_DEVICE, nbytes)

    def release(self) -> None:
        self._platform.device.free(self._buffer_alloc)
        super().release()
