"""The simulated CPU–GPU heterogeneous platform.

:class:`GpuPlatform` bundles everything one experiment needs: the device
spec and cost model, the shared clock and counters, the PCIe bus, the
device-memory allocator, host-memory budget tracking, a kernel launcher and
a CPU executor.  Engines (GAMMA and all baselines) take a platform at
construction, so comparative benchmarks run each system on an identical,
freshly reset platform.
"""

from __future__ import annotations

import numpy as np

from ..errors import HostOutOfMemory
from ..obs import spans as obs_spans
from ..resilience import faults as res_faults
from . import clock as clk
from .clock import SimClock
from .device import DeviceMemory
from .hybrid import HybridRegion
from .kernel import CpuExecutor, KernelLauncher
from .pcie import PcieBus
from .regions import DeviceResidentRegion
from .spec import DEFAULT_COST, DEFAULT_SPEC, CostModel, DeviceSpec
from .stats import Counters
from .unified import UnifiedRegion
from .zerocopy import ZeroCopyRegion


class GpuPlatform:
    """One simulated heterogeneous machine (host + device + bus)."""

    def __init__(
        self,
        spec: DeviceSpec | None = None,
        cost: CostModel | None = None,
        num_warps: int | None = None,
        cpu_threads: int | None = None,
    ) -> None:
        self.spec = spec if spec is not None else DEFAULT_SPEC
        self.cost = cost if cost is not None else DEFAULT_COST
        self.clock = SimClock()
        self.counters = Counters()
        self.pcie = PcieBus(self.spec, self.cost, self.clock, self.counters)
        self.device = DeviceMemory(self.spec.device_memory_bytes)
        self.kernel = KernelLauncher(
            self.spec, self.cost, self.clock, self.counters, num_warps
        )
        self.cpu = CpuExecutor(
            self.cost,
            self.clock,
            self.counters,
            cpu_threads if cpu_threads is not None else self.cost.cpu_threads,
        )
        self._host_used = 0
        self._host_peak = 0
        self._host_registered_once = False
        #: Telemetry sink consulted by instrumented hot paths; the no-op
        #: default keeps uninstrumented runs at a single attribute check.
        self.telemetry = obs_spans.NULL_TELEMETRY
        #: Fault-injection sink (same null-object discipline as telemetry).
        self.resilience = res_faults.NULL_RESILIENCE
        #: Resilience events (injected faults, degradations, checkpoints)
        #: surfaced in run manifests.
        self.resilience_log: list = []
        env_plan = res_faults.plan_from_env()
        if env_plan is not None:
            self.install_fault_plan(env_plan)
        # A SpanCollector installed via repro.obs.install() binds itself to
        # the first platform constructed (CLI/bench entry points rely on
        # this — the platform is created deep inside system factories).
        obs_spans.adopt_platform(self)

    # -- telemetry ------------------------------------------------------------
    def attach_telemetry(self, telemetry) -> None:
        """Route spans/metrics from this platform to ``telemetry``."""
        self.telemetry = telemetry
        self.kernel.telemetry = telemetry

    def detach_telemetry(self) -> None:
        """Restore the no-op telemetry sink."""
        self.attach_telemetry(obs_spans.NULL_TELEMETRY)

    # -- fault injection ------------------------------------------------------
    def install_fault_plan(
        self, plan: "res_faults.FaultPlan"
    ) -> "res_faults.FaultInjector":
        """Arm deterministic fault injection on this platform."""
        injector = res_faults.FaultInjector(self, plan)
        self.resilience = injector
        return injector

    def clear_fault_plan(self) -> None:
        """Restore the no-op resilience sink."""
        self.resilience = res_faults.NULL_RESILIENCE

    # -- host-memory budget ---------------------------------------------------
    @property
    def host_used(self) -> int:
        """Bytes of host memory currently registered by regions."""
        return self._host_used

    @property
    def host_peak(self) -> int:
        """High-water mark of registered host memory."""
        return self._host_peak

    def register_host_bytes(self, nbytes: int, tag: str = "", charge: bool = True) -> None:
        """Account host memory mapped for device access.

        ``charge=True`` additionally bills the pinning/registration cost
        (graph setup); growth of already-mapped unified allocations (e.g.
        embedding-table columns) passes ``charge=False`` because its
        transfer cost is billed by the write path instead.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        available = self.spec.host_memory_bytes - self._host_used
        if nbytes > available:
            raise HostOutOfMemory(nbytes, available, tag)
        self._host_used += nbytes
        self._host_peak = max(self._host_peak, self._host_used)
        if not charge:
            return
        prep = nbytes / self.cost.host_register_bandwidth
        if not self._host_registered_once:
            prep += self.cost.host_register_fixed
            self._host_registered_once = True
        self.clock.advance(clk.HOST_PREP, prep)

    def unregister_host_bytes(self, nbytes: int, tag: str = "") -> None:
        if nbytes < 0 or nbytes > self._host_used:
            raise ValueError(f"bad unregister of {nbytes} bytes (tag={tag!r})")
        self._host_used -= nbytes

    # -- region factories -------------------------------------------------------
    def unified_region(
        self, name: str, array: np.ndarray, buffer_pages: int
    ) -> UnifiedRegion:
        """Map ``array`` as unified memory with a device buffer of
        ``buffer_pages`` pages."""
        return UnifiedRegion(name, array, self, buffer_pages)

    def zerocopy_region(self, name: str, array: np.ndarray) -> ZeroCopyRegion:
        """Map ``array`` as zero-copy (pinned) memory."""
        return ZeroCopyRegion(name, array, self)

    def hybrid_region(
        self, name: str, array: np.ndarray, buffer_pages: int
    ) -> HybridRegion:
        """Map ``array`` with GAMMA's per-page hybrid access (duplicated in
        both host mappings, per §IV)."""
        return HybridRegion(name, array, self, buffer_pages)

    def device_region(self, name: str, array: np.ndarray) -> DeviceResidentRegion:
        """Stage ``array`` wholly in device memory (in-core baselines)."""
        return DeviceResidentRegion(name, array, self)

    # -- lifecycle ---------------------------------------------------------------
    def reset(self) -> None:
        """Zero the clock and counters (allocations are left untouched)."""
        self.clock.reset()
        self.counters.reset()

    @property
    def simulated_seconds(self) -> float:
        """Total simulated time elapsed on this platform."""
        return self.clock.total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GpuPlatform({self.spec.name}, t={self.clock.total:.3e}s, "
            f"device={self.device.used}/{self.device.capacity}B, "
            f"host={self._host_used}B)"
        )


def make_platform(
    num_warps: int | None = None,
    device_memory_bytes: int | None = None,
    cpu_threads: int | None = None,
    cost: CostModel | None = None,
    host_memory_bytes: int | None = None,
) -> GpuPlatform:
    """Convenience constructor used throughout tests and benchmarks."""
    spec = DEFAULT_SPEC
    if device_memory_bytes is not None or host_memory_bytes is not None:
        from dataclasses import replace

        overrides = {}
        if device_memory_bytes is not None:
            overrides["device_memory_bytes"] = device_memory_bytes
        if host_memory_bytes is not None:
            overrides["host_memory_bytes"] = host_memory_bytes
        spec = replace(spec, **overrides)
    return GpuPlatform(spec, cost, num_warps, cpu_threads)
