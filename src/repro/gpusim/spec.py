"""Hardware specification and cost model for the simulated GPU platform.

The reproduction has no physical GPU, so GAMMA runs on a deterministic
cost-model simulator (see DESIGN.md §2).  :class:`DeviceSpec` describes the
simulated device — a Tesla V100 scaled down ~1000x in memory capacity so the
paper's in-core/out-of-core crossover appears at laptop-scale graphs — and
:class:`CostModel` holds the rates used to convert counted events (element
ops, PCIe transactions, page faults) into simulated seconds.

All values are plain data; the simulator never reads wall-clock time, so runs
are bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: Scale factor applied to the paper's memory capacities (16 GB -> 16 MiB).
MEMORY_SCALE = 1024

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of the simulated device and host.

    Defaults model the paper's testbed (Tesla V100 16 GB, 380 GB host,
    PCIe 3.0 x16) with memory capacities divided by :data:`MEMORY_SCALE`.
    """

    name: str = "V100-sim"
    #: SIMT width of one warp.
    warp_size: int = 32
    #: Number of warps the scheduler keeps active ("hundreds of active
    #: warps" per the paper's Optimization 1 discussion).
    active_warps: int = 160
    #: Core clock in Hz.
    clock_hz: float = 1.38e9
    #: Device (global) memory capacity in bytes, scaled down.
    device_memory_bytes: int = 16 * GIB // MEMORY_SCALE
    #: Host memory capacity in bytes, scaled down (380 GB -> 380 MiB).
    host_memory_bytes: int = 380 * GIB // MEMORY_SCALE
    #: On-chip shared memory per thread block (48 KB per the paper §II-A).
    shared_memory_bytes: int = 48 * KIB
    #: Unified-memory page size (4 KB per §II-B).
    page_size: int = 4 * KIB
    #: Zero-copy transaction size (128 B per §II-B).
    zerocopy_line: int = 128

    def scaled(self, memory_scale: int) -> "DeviceSpec":
        """Return a copy with device/host memory re-scaled from the paper's
        16 GB / 380 GB by ``memory_scale``."""
        return replace(
            self,
            device_memory_bytes=16 * GIB // memory_scale,
            host_memory_bytes=380 * GIB // memory_scale,
        )


@dataclass(frozen=True)
class CostModel:
    """Rates converting counted simulator events into simulated seconds.

    The absolute values are calibrated so the *shapes* of the paper's
    figures hold (who wins, crossover points); see DESIGN.md §5.
    """

    #: Effective device-memory bandwidth (V100 HBM2: ~900 GB/s).
    device_bandwidth: float = 900e9
    #: Effective PCIe bandwidth for bulk/page transfers (~12 GB/s).
    pcie_bandwidth: float = 12e9
    #: Effective PCIe bandwidth for scattered zero-copy transactions.
    #: Random 128 B requests achieve less than bulk bandwidth.
    zerocopy_bandwidth: float = 6e9
    #: Fixed per-transaction latency share after overlap across warps.
    zerocopy_latency: float = 40e-9
    #: Page-fault handling overhead per faulting page, after the GPU's
    #: fault coalescing overlaps faults across warps.
    page_fault_overhead: float = 2e-6
    #: Fraction of peak issue rate that irregular GPM kernels achieve
    #: (memory-latency-bound workloads are far from peak IPC).
    gpu_ipc: float = 0.004
    #: Effective element-ops per binary-search step: each step is a
    #: dependent, random device-memory access, far costlier than an ALU op.
    search_step_ops: float = 2.0
    #: Host-side random scatter bandwidth (xtr2sort's bucket reorganization
    #: happens on the CPU; random writes achieve a fraction of memcpy).
    host_scatter_bandwidth: float = 1.8e9
    #: Fixed cost of one kernel launch.
    kernel_launch_overhead: float = 5e-6
    #: Issue-rate fraction for *serialized* per-warp steps (atomics through
    #: the memory-pool scheduler); far better than divergent traversal IPC.
    gpu_serial_ipc: float = 0.25
    #: Effective ops/s of one CPU thread on pointer-chasing GPM work.
    cpu_ops_per_thread: float = 60e6
    #: Threads used by multi-core CPU baselines (paper testbed: 32 cores).
    cpu_threads: int = 32
    #: Bandwidth at which host memory can be registered/pinned for
    #: unified/zero-copy use ("preparation of host memory usage", §VI-C).
    host_register_bandwidth: float = 8e9
    #: Fixed setup cost for mapping host memory into the device address
    #: space (context + driver work).  Dominates on tiny graphs (EA/ER),
    #: which is why GAMMA loses to in-core systems there (Fig. 11).
    host_register_fixed: float = 100e-6

    def gpu_ops_per_second(self, spec: DeviceSpec) -> float:
        """Aggregate simulated device throughput in element-ops/second."""
        lanes = spec.active_warps * spec.warp_size
        return lanes * spec.clock_hz * self.gpu_ipc

    def cpu_ops_per_second(self, threads: int | None = None) -> float:
        """Aggregate CPU throughput for ``threads`` threads (default all)."""
        if threads is None:
            threads = self.cpu_threads
        return self.cpu_ops_per_thread * max(1, threads)


#: Interconnect kinds for multi-GPU exchange (repro.shard).
NVLINK = "nvlink"
PCIE_STAGED = "pcie"
INTERCONNECT_KINDS = (NVLINK, PCIE_STAGED)


@dataclass(frozen=True)
class InterconnectSpec:
    """Inter-GPU link model for sharded execution (repro.shard).

    ``nvlink`` transfers peer-to-peer at ``bandwidth`` with a fixed
    per-message ``latency``; ``pcie`` has no peer path, so every exchange
    stages through host memory (a D2H hop on the sender plus an H2D hop on
    the receiver over each platform's own PCIe bus) with one staging
    ``latency`` per message on each side.
    """

    kind: str = NVLINK
    #: Per-direction peer-to-peer bandwidth (V100 NVLink2: ~25 GB/s/link).
    bandwidth: float = 25e9
    #: Fixed per-message latency share after overlap across warps.
    latency: float = 5e-6

    def __post_init__(self) -> None:
        if self.kind not in INTERCONNECT_KINDS:
            raise ValueError(
                f"interconnect kind must be one of {INTERCONNECT_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.bandwidth <= 0 or self.latency < 0:
            raise ValueError("interconnect bandwidth/latency out of range")


#: Default spec/cost-model instances shared by the convenience constructors.
DEFAULT_SPEC = DeviceSpec()
DEFAULT_COST = CostModel()
DEFAULT_INTERCONNECT = InterconnectSpec()
