"""GAMMA's hybrid host-memory access (paper §IV).

The data graph's CSR is duplicated in host memory — one copy mapped as
unified memory, one as zero-copy — and a per-page mode map decides which
copy serves each page.  The access-heat planner
(:mod:`repro.core.access_planner`) recomputes the mode map before every
extension: the hottest ``N_u`` pages go to unified memory (buffered on the
device), everything else goes to zero-copy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from . import clock as clk
from . import stats as st
from .regions import (
    HostRegion,
    covered_units,
    dedup_units,
    range_lengths_in_units,
)
from .unified import PageBuffer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .platform import GpuPlatform


class HybridRegion(HostRegion):
    """A host array with per-page unified/zero-copy access selection.

    ``duplication = 2`` reflects the paper's CSR duplication in both host
    mappings ("Graph duplication is not a big issue considering the host
    memory capacity", §IV).
    """

    duplication = 2

    def __init__(
        self,
        name: str,
        array: np.ndarray,
        platform: "GpuPlatform",
        buffer_pages: int,
    ) -> None:
        super().__init__(name, array, platform)
        page = platform.spec.page_size
        self.total_pages = max(1, -(-array.nbytes // page))
        buffer_pages = min(buffer_pages, self.total_pages)
        self._buffer_alloc = platform.device.allocate(
            buffer_pages * page, f"{name}:page-buffer"
        )
        self.buffer = PageBuffer(buffer_pages, self.total_pages)
        self._total_lines = max(1, -(-array.nbytes // platform.spec.zerocopy_line))
        # Default: everything through zero-copy until the planner learns heat.
        self._unified_mask = np.zeros(self.total_pages, dtype=bool)
        # Charge derivation depends on the mode map; bumping this version
        # invalidates the region's ChargeBatch memo on every replan.
        self._mode_version = 0

    @property
    def buffer_capacity_pages(self) -> int:
        """Maximum number of pages the planner may route to unified memory."""
        return self.buffer.capacity

    @property
    def unified_pages(self) -> np.ndarray:
        """Page ids currently routed through unified memory."""
        return np.flatnonzero(self._unified_mask)

    def set_unified_pages(self, pages: np.ndarray) -> None:
        """Route exactly ``pages`` through unified memory (rest zero-copy).

        Pages that leave the unified set are dropped from the device buffer:
        their buffered copies are stale capacity once the planner demotes
        them.

        The unified set may exceed the device buffer capacity (the
        unified-only baseline of Fig. 20 routes *every* page here); residency
        is still bounded by the buffer, so oversubscription shows up as LRU
        thrashing rather than an error — exactly the pathology the paper's
        hybrid strategy avoids.
        """
        pages = np.asarray(pages, dtype=np.int64)
        new_mask = np.zeros(self.total_pages, dtype=bool)
        new_mask[pages] = True
        demoted = np.flatnonzero(self._unified_mask & ~new_mask)
        self.buffer.drop(demoted)
        self._unified_mask = new_mask
        self._mode_version += 1

    def shrink_buffer(self, new_pages: int) -> int:
        """Shrink the device page buffer to ``new_pages``; returns bytes freed.

        Used by the demote-pages degradation policy: dropping the buffer
        releases device capacity so an allocation that just failed with
        :class:`~repro.errors.DeviceOutOfMemory` can succeed on retry.
        Buffered pages are discarded (cold restart of the LRU), and the
        charge memo is invalidated.
        """
        new_pages = max(0, int(new_pages))
        if new_pages >= self.buffer.capacity:
            return 0
        platform = self._platform
        page = platform.spec.page_size
        freed = (self.buffer.capacity - new_pages) * page
        platform.device.free(self._buffer_alloc)
        self._buffer_alloc = platform.device.allocate(
            new_pages * page, f"{self.name}:page-buffer"
        )
        self.buffer = PageBuffer(new_pages, self.total_pages)
        self._mode_version += 1
        return freed

    def _charge_elements(self, indices: np.ndarray) -> None:
        platform = self._platform
        if len(indices) == 0:
            return
        page_size = platform.spec.page_size
        byte_pos = np.asarray(indices, dtype=np.int64) * self._itemsize
        pages = byte_pos // page_size
        is_unified = self._unified_mask[pages]

        # Unified side: page-granular faults/hits + device-bandwidth reads.
        uni_pages = dedup_units(pages[is_unified], self.total_pages)
        if len(uni_pages):
            hits, misses = self.buffer.access(uni_pages)
            platform.counters.add(st.PAGE_HITS, hits)
            platform.pcie.migrate_pages(misses)
            nbytes = int(is_unified.sum()) * self._itemsize
            platform.clock.advance(
                clk.DEVICE_MEM, nbytes / platform.cost.device_bandwidth
            )
            platform.counters.add(st.BYTES_DEVICE, nbytes)

        # Zero-copy side: one transaction per distinct 128 B line.
        zc_bytes = byte_pos[~is_unified]
        if len(zc_bytes):
            lines = dedup_units(
                zc_bytes // platform.spec.zerocopy_line, self._total_lines
            )
            platform.pcie.zerocopy_transactions(len(lines))

    def _charge_ranges(
        self, starts: np.ndarray, ends: np.ndarray, flat: np.ndarray
    ) -> None:
        """Range reads with per-list access-mode routing.

        Each adjacency list is served by the mode of its first page (hot
        lists occupy whole hot pages, so mixed-mode lists are rare).
        Unified lists dedup through the page buffer; zero-copy lists pay one
        transaction per 128 B line per read, with no cross-read caching.
        """
        platform = self._platform
        starts = np.asarray(starts, dtype=np.int64)
        ends = np.asarray(ends, dtype=np.int64)
        derived = self._charge_memo.lookup(starts, ends, token=self._mode_version)
        if derived is None:
            derived = self._derive_ranges(starts, ends)
            self._charge_memo.store(
                starts, ends, derived, token=self._mode_version
            )
        uni, zc_nlines = derived
        if uni is not None:
            pages, nbytes = uni
            hits, misses = self.buffer.access(pages)
            platform.counters.add(st.PAGE_HITS, hits)
            platform.pcie.migrate_pages(misses)
            platform.clock.advance(
                clk.DEVICE_MEM, nbytes / platform.cost.device_bandwidth
            )
            platform.counters.add(st.BYTES_DEVICE, nbytes)
        if zc_nlines:
            platform.pcie.zerocopy_transactions(zc_nlines)

    def _derive_ranges(self, starts: np.ndarray, ends: np.ndarray):
        """Split a range batch into its unified page set / zero-copy line
        count — pure arithmetic over the mode map, independent of buffer
        state, hence memoizable across a two-pass re-read."""
        platform = self._platform
        live = ends > starts
        if not live.any():
            return None, 0
        s, e = starts[live], ends[live]
        page_size = platform.spec.page_size
        first_page = (s * self._itemsize) // page_size
        is_unified = self._unified_mask[first_page]

        uni = None
        if is_unified.any():
            su, eu = s[is_unified], e[is_unified]
            last_page = (eu * self._itemsize - 1) // page_size
            first_u = (su * self._itemsize) // page_size
            # Enumerate the page span of each unified range, then dedup.
            pages = covered_units(first_u, last_page, self.total_pages)
            uni = (pages, int((eu - su).sum()) * self._itemsize)

        zc_nlines = 0
        if (~is_unified).any():
            sz, ez = s[~is_unified], e[~is_unified]
            zc_nlines = int(
                range_lengths_in_units(
                    sz, ez, self._itemsize, platform.spec.zerocopy_line
                ).sum()
            )
        return uni, zc_nlines

    def release(self) -> None:
        self._platform.device.free(self._buffer_alloc)
        super().release()
