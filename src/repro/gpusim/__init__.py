"""Simulated CPU–GPU heterogeneous platform (see DESIGN.md §2).

The reproduction replaces the paper's Tesla V100 with a deterministic
cost-model simulator: algorithms do real work in NumPy, while all accesses
to host-resident data go through memory *regions* that count transactions,
page faults and migrations, and charge simulated time.  The module layout
mirrors the hardware description in the paper's §II:

* :mod:`.spec` — device spec + cost-model rates;
* :mod:`.clock`, :mod:`.stats` — simulated time and event counters;
* :mod:`.pcie` — the host/device bus;
* :mod:`.device` — capacity-limited device-memory allocator;
* :mod:`.regions`, :mod:`.unified`, :mod:`.zerocopy`, :mod:`.hybrid` —
  the four host-memory access modes (device-resident, unified, zero-copy,
  GAMMA's hybrid);
* :mod:`.warp`, :mod:`.kernel` — SIMT execution accounting;
* :mod:`.platform` — the bundle engines actually consume.
"""

from .clock import ClockSection, SimClock
from .device import DeviceAllocation, DeviceMemory
from .hybrid import HybridRegion
from .kernel import CpuExecutor, KernelLauncher
from .pcie import PcieBus
from .platform import GpuPlatform, make_platform
from .regions import (
    ChargeBatch,
    DeviceResidentRegion,
    HostRegion,
    covered_units,
    dedup_units,
    expand_ranges,
    range_lengths_in_units,
    units_for_indices,
)
from .spec import DEFAULT_COST, DEFAULT_SPEC, CostModel, DeviceSpec
from .trace import PhaseTimer, TraceRecorder
from .stats import Counters
from .unified import PageBuffer, UnifiedRegion
from .warp import WarpGrid, warp_ballot, warp_exclusive_scan
from .zerocopy import ZeroCopyRegion

__all__ = [
    "ClockSection",
    "SimClock",
    "DeviceAllocation",
    "DeviceMemory",
    "HybridRegion",
    "CpuExecutor",
    "KernelLauncher",
    "PcieBus",
    "GpuPlatform",
    "make_platform",
    "ChargeBatch",
    "DeviceResidentRegion",
    "HostRegion",
    "covered_units",
    "dedup_units",
    "expand_ranges",
    "range_lengths_in_units",
    "units_for_indices",
    "PhaseTimer",
    "CostModel",
    "DeviceSpec",
    "DEFAULT_COST",
    "DEFAULT_SPEC",
    "Counters",
    "TraceRecorder",
    "PageBuffer",
    "UnifiedRegion",
    "WarpGrid",
    "warp_ballot",
    "warp_exclusive_scan",
    "ZeroCopyRegion",
]
