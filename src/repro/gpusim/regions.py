"""Host-memory regions and index/page arithmetic.

A *region* wraps a NumPy array that lives in (simulated) host memory and is
mapped into the device address space.  Engines never index host arrays
directly; they go through a region's ``gather``/``read_range``/
``gather_ranges`` methods, which return the real values *and* charge the cost
model for the implied traffic.  Subclasses implement the three access modes
from the paper's §II-B: unified memory (page migration + device buffer),
zero-copy (128 B transactions, no buffer) and GAMMA's hybrid per-page mix.

The module also provides the vectorized index arithmetic shared by all
region types (expanding CSR ranges, mapping element indices to pages/lines).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Tuple

import numpy as np

from .. import perf
from . import clock as clk

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .platform import GpuPlatform


def expand_ranges(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Expand half-open integer ranges ``[starts[i], ends[i])`` into one flat
    index array, preserving order.  The workhorse of vectorized CSR
    adjacency-list expansion.

    >>> expand_ranges(np.array([0, 5]), np.array([2, 8]))
    array([0, 1, 5, 6, 7])
    """
    starts = np.asarray(starts, dtype=np.int64)
    ends = np.asarray(ends, dtype=np.int64)
    if starts.shape != ends.shape:
        raise ValueError("starts and ends must have the same shape")
    lengths = ends - starts
    if (lengths < 0).any():
        raise ValueError("ranges must have non-negative length")
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # Keep only non-empty ranges; the cumsum trick needs positive lengths.
    nonempty = lengths > 0
    s = starts[nonempty]
    lens = lengths[nonempty]
    out = np.ones(total, dtype=np.int64)
    out[0] = s[0]
    if len(s) > 1:
        boundaries = np.cumsum(lens)[:-1]
        out[boundaries] = s[1:] - (s[:-1] + lens[:-1] - 1)
    return np.cumsum(out)


def range_lengths_in_units(
    starts: np.ndarray, ends: np.ndarray, itemsize: int, unit: int
) -> np.ndarray:
    """Number of ``unit``-byte blocks each half-open element range touches."""
    starts = np.asarray(starts, dtype=np.int64)
    ends = np.asarray(ends, dtype=np.int64)
    lengths = ends - starts
    first = (starts * itemsize) // unit
    last = (ends * itemsize - 1) // unit
    counts = last - first + 1
    counts[lengths <= 0] = 0
    return counts


def units_for_indices(
    indices: np.ndarray, itemsize: int, unit: int, total_units: int | None = None
) -> np.ndarray:
    """Unique ``unit``-byte block ids touched by scattered element reads.

    ``total_units`` (the region's block-id namespace size, when the caller
    knows it) enables the sort-free bincount derivation; without it the
    result falls back to ``np.unique``.  Both paths return the same sorted
    array.
    """
    if len(indices) == 0:
        return np.empty(0, dtype=np.int64)
    blocks = (np.asarray(indices, dtype=np.int64) * itemsize) // unit
    return dedup_units(blocks, total_units)


def dedup_units(blocks: np.ndarray, total_units: int | None = None) -> np.ndarray:
    """Sorted unique block ids, avoiding the ``np.unique`` sort when the
    namespace is dense enough for a bincount occupancy pass."""
    if (
        total_units is None
        or perf.use_reference()
        or len(blocks) * 8 < total_units
    ):
        return np.unique(blocks)
    occupancy = np.bincount(blocks, minlength=total_units)
    return np.flatnonzero(occupancy)


def covered_units(
    first: np.ndarray, last: np.ndarray, total_units: int | None = None
) -> np.ndarray:
    """Sorted unique block ids covered by the inclusive ranges
    ``[first[i], last[i]]`` — the page sets of batched contiguous reads.

    The fast pipeline derives the set in one coalesced difference-array
    pass (O(ranges + namespace), no sort); the reference pipeline expands
    every range and sorts via ``np.unique``.  Identical results either way.
    """
    if len(first) == 0:
        return np.empty(0, dtype=np.int64)
    span = int((last - first + 1).sum())
    if (
        total_units is None
        or perf.use_reference()
        or span * 8 < total_units
    ):
        return np.unique(expand_ranges(first, last + 1))
    delta = np.bincount(first, minlength=total_units + 1)
    delta[:total_units] -= np.bincount(last + 1, minlength=total_units + 1)[:total_units]
    return np.flatnonzero(np.cumsum(delta[:total_units]) > 0)


class ChargeBatch:
    """Memoized charge derivation for repeated identical access batches.

    Two-pass write strategies (Pangolin's counting extension, Fig. 17/18)
    charge the *same* range batch twice back to back; the page/line
    derivation — the expensive half of charging — depends only on the
    request and the region geometry, not on buffer state, so the second
    pass can reuse the first's result.  The memo is keyed by the identity
    of the ``(starts, ends)`` array pair plus a ``token`` the region bumps
    whenever derivation inputs change (the hybrid page-mode map); callers
    must not mutate arrays between repeated charges, which no engine does.
    """

    __slots__ = ("_starts", "_ends", "_token", "_derived")

    def __init__(self) -> None:
        self._starts: np.ndarray | None = None
        self._ends: np.ndarray | None = None
        self._token = -1
        self._derived: Any = None

    def lookup(self, starts: np.ndarray, ends: np.ndarray, token: int = 0) -> Any:
        """The memoized derivation for this exact batch, or ``None``."""
        if (
            self._starts is starts
            and self._ends is ends
            and self._token == token
            and not perf.use_reference()
        ):
            return self._derived
        return None

    def store(
        self, starts: np.ndarray, ends: np.ndarray, derived: Any, token: int = 0
    ) -> Any:
        """Memoize ``derived`` for this batch; returns it for chaining."""
        self._starts = starts
        self._ends = ends
        self._token = token
        self._derived = derived
        return derived


class HostRegion:
    """Base class: a named NumPy array registered in simulated host memory.

    Construction charges the host-preparation cost (pinning/registration at
    ``host_register_bandwidth``), the overhead the paper identifies as the
    reason GAMMA trails in-core systems on tiny graphs (§VI-C).
    """

    #: How many copies of the payload this mapping keeps in host memory
    #: (GAMMA's hybrid mapping duplicates the CSR; see §IV).
    duplication = 1
    #: Whether construction bills the pinning/registration cost.  Implicit
    #: access modes pin; explicit staging (device-resident) pays its cost
    #: through the bulk copy instead.
    register_charge = True

    def __init__(self, name: str, array: np.ndarray, platform: "GpuPlatform") -> None:
        if array.ndim != 1:
            raise ValueError("regions wrap 1-D arrays; flatten first")
        self.name = name
        self._array = array
        self._platform = platform
        self._itemsize = array.dtype.itemsize
        self._charge_memo = ChargeBatch()
        platform.register_host_bytes(
            array.nbytes * self.duplication, name, charge=self.register_charge
        )

    # -- raw host-side views (no device traffic) ---------------------------
    @property
    def array(self) -> np.ndarray:
        """The underlying host array (host-side access, not charged)."""
        return self._array

    @property
    def nbytes(self) -> int:
        return self._array.nbytes * self.duplication

    @property
    def itemsize(self) -> int:
        return self._itemsize

    def __len__(self) -> int:
        return len(self._array)

    # -- charged device-side access ----------------------------------------
    def gather(self, indices: np.ndarray) -> np.ndarray:
        """Scattered element reads issued from the device."""
        indices = np.asarray(indices, dtype=np.int64)
        self._charge_elements(indices)
        return self._array[indices]

    def read_range(self, start: int, stop: int) -> np.ndarray:
        """One contiguous device-side read of ``[start, stop)``."""
        values, __ = self.gather_ranges(
            np.array([start], dtype=np.int64), np.array([stop], dtype=np.int64)
        )
        return values

    def gather_ranges(
        self, starts: np.ndarray, ends: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched contiguous reads (one per range, e.g. adjacency lists).

        Returns ``(values, lengths)`` where ``values`` is the concatenation
        of all ranges in order.
        """
        starts = np.asarray(starts, dtype=np.int64)
        ends = np.asarray(ends, dtype=np.int64)
        res = self._platform.resilience
        if res.active:
            res.io(f"region:{self.name}")
        flat = expand_ranges(starts, ends)
        self._charge_ranges(starts, ends, flat)
        lengths = ends - starts
        return self._array[flat], lengths

    def charge_ranges(self, starts: np.ndarray, ends: np.ndarray) -> None:
        """Charge batched range reads without materializing the values.

        Used when an access pattern must be *accounted* but its data is not
        needed again in Python — e.g. the counting pass of Pangolin's
        two-pass extension re-reads every adjacency list.
        """
        starts = np.asarray(starts, dtype=np.int64)
        ends = np.asarray(ends, dtype=np.int64)
        res = self._platform.resilience
        if res.active:
            res.io(f"region:{self.name}")
        self._charge_ranges(starts, ends, None)

    def release(self) -> None:
        """Unmap the region, returning its host bytes to the budget."""
        self._platform.unregister_host_bytes(self.nbytes, self.name)

    # -- subclass hooks ------------------------------------------------------
    def _charge_elements(self, indices: np.ndarray) -> None:
        """Charge the cost model for reading these element indices."""
        raise NotImplementedError

    def _charge_ranges(
        self, starts: np.ndarray, ends: np.ndarray, flat: np.ndarray | None
    ) -> None:
        """Charge batched range reads.

        The default treats the expansion as scattered elements.  Subclasses
        override this where range structure matters: zero-copy coalesces
        *within* one list read but re-fetches lines shared *across* list
        reads (there is no device-side cache to dedup them), while unified
        dedups at page-buffer granularity regardless.
        """
        if flat is None:
            flat = expand_ranges(starts, ends)
        self._charge_elements(flat)


class DeviceResidentRegion(HostRegion):
    """An array staged wholly in device memory (used by in-core baselines).

    Construction performs one explicit PCIe bulk copy and a device
    allocation that counts against capacity — large graphs make this raise
    :class:`~repro.errors.DeviceOutOfMemory`, reproducing the baselines'
    crashes.
    """

    register_charge = False

    def __init__(self, name: str, array: np.ndarray, platform: "GpuPlatform") -> None:
        super().__init__(name, array, platform)
        self._allocation = platform.device.allocate(array.nbytes, name)
        platform.pcie.explicit_copy(array.nbytes, to_device=True)

    def _charge_elements(self, indices: np.ndarray) -> None:
        nbytes = len(indices) * self._itemsize
        self._platform.clock.advance(
            clk.DEVICE_MEM, nbytes / self._platform.cost.device_bandwidth
        )

    def _charge_ranges(self, starts, ends, flat=None) -> None:
        nbytes = int((np.asarray(ends) - np.asarray(starts)).sum()) * self._itemsize
        self._platform.clock.advance(
            clk.DEVICE_MEM, nbytes / self._platform.cost.device_bandwidth
        )

    def release(self) -> None:
        self._platform.device.free(self._allocation)
        super().release()
