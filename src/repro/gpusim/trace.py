"""Execution tracing: where did the simulated time go?

A :class:`TraceRecorder` subscribes to a platform's clock and accumulates
per-category time (optionally as an ordered event log).  Its ASCII
rendering answers the first question every benchmark raises — "what is the
bottleneck?" — without a profiler:

    compute       ############################------------  58.1%   1.23 ms
    pcie_unified  ###########-----------------------------  24.0%   0.51 ms
    ...

The CLI exposes it as ``repro run ... --breakdown``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from .clock import SimClock
from .platform import GpuPlatform


class TraceRecorder:
    """Accumulates charged time by category (and optionally per event)."""

    def __init__(self, keep_events: bool = False) -> None:
        self._by_category: Dict[str, float] = defaultdict(float)
        self._keep_events = keep_events
        self.events: List[Tuple[float, str, float]] = []
        self._elapsed = 0.0

    # -- collection -----------------------------------------------------------
    def __call__(self, category: str, seconds: float) -> None:
        """Clock listener hook."""
        self._by_category[category] += seconds
        self._elapsed += seconds
        if self._keep_events:
            self.events.append((self._elapsed, category, seconds))

    def attach(self, target: "GpuPlatform | SimClock") -> "TraceRecorder":
        """Subscribe to a platform's (or clock's) charges; returns self."""
        clock = target.clock if isinstance(target, GpuPlatform) else target
        clock.listener = self
        return self

    # -- reporting --------------------------------------------------------------
    @property
    def total(self) -> float:
        return sum(self._by_category.values())

    def summary(self) -> List[Tuple[str, float, float]]:
        """``(category, seconds, share)`` rows, largest first."""
        total = self.total
        rows = sorted(
            self._by_category.items(), key=lambda kv: -kv[1]
        )
        return [
            (name, seconds, (seconds / total if total else 0.0))
            for name, seconds in rows
            if seconds > 0
        ]

    def render(self, width: int = 40) -> str:
        """ASCII breakdown bars."""
        rows = self.summary()
        if not rows:
            return "(no simulated time charged)"
        name_width = max(len(name) for name, __, __ in rows)
        lines = []
        for name, seconds, share in rows:
            filled = int(round(share * width))
            bar = "#" * filled + "-" * (width - filled)
            lines.append(
                f"{name.ljust(name_width)}  {bar}  {share * 100:5.1f}%  "
                f"{seconds * 1e3:10.3f} ms"
            )
        return "\n".join(lines)

    def reset(self) -> None:
        self._by_category.clear()
        self.events.clear()
        self._elapsed = 0.0
