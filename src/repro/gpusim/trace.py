"""Execution tracing: where did the simulated time go?

A :class:`TraceRecorder` subscribes to a platform's clock and accumulates
per-category time (optionally as an ordered event log).  Its ASCII
rendering answers the first question every benchmark raises — "what is the
bottleneck?" — without a profiler:

    compute       ############################------------  58.1%   1.23 ms
    pcie_unified  ###########-----------------------------  24.0%   0.51 ms
    ...

The CLI exposes it as ``repro run ... --breakdown``.
"""

from __future__ import annotations

import math
import time
from collections import defaultdict
from contextlib import contextmanager
from typing import Dict, Iterator, List, Tuple

from ..obs.exporters import render_bars
from .clock import SimClock
from .platform import GpuPlatform


class TraceRecorder:
    """Accumulates charged time by category (and optionally per event)."""

    def __init__(self, keep_events: bool = False) -> None:
        self._by_category: Dict[str, float] = defaultdict(float)
        self._keep_events = keep_events
        self.events: List[Tuple[float, str, float]] = []
        self._elapsed = 0.0

    # -- collection -----------------------------------------------------------
    def __call__(self, category: str, seconds: float) -> None:
        """Clock listener hook."""
        self._by_category[category] += seconds
        self._elapsed += seconds
        if self._keep_events:
            self.events.append((self._elapsed, category, seconds))

    def attach(self, target: "GpuPlatform | SimClock") -> "TraceRecorder":
        """Subscribe to a platform's (or clock's) charges; returns self.

        Fan-out: other listeners (another recorder, a span collector)
        keep receiving charges.
        """
        clock = target.clock if isinstance(target, GpuPlatform) else target
        clock.add_listener(self)
        return self

    def detach(self, target: "GpuPlatform | SimClock") -> "TraceRecorder":
        """Unsubscribe from a platform's (or clock's) charges."""
        clock = target.clock if isinstance(target, GpuPlatform) else target
        clock.remove_listener(self)
        return self

    # -- reporting --------------------------------------------------------------
    @property
    def total(self) -> float:
        # math.fsum: exactly rounded, so the total is independent of the
        # order categories were first charged in — same bit-parity rule
        # SimClock.total follows (checkpoint-restored runs repopulate the
        # dict in manifest order, not charge order).
        return math.fsum(self._by_category.values())

    def summary(self) -> List[Tuple[str, float, float]]:
        """``(category, seconds, share)`` rows, largest first."""
        total = self.total
        rows = sorted(
            self._by_category.items(), key=lambda kv: -kv[1]
        )
        return [
            (name, seconds, (seconds / total if total else 0.0))
            for name, seconds in rows
            if seconds > 0
        ]

    def as_dict(self) -> Dict[str, float]:
        """Non-zero per-category seconds as a plain dict (JSON-stable;
        the shape the perf-history store records)."""
        return {name: seconds
                for name, seconds in sorted(self._by_category.items())
                if seconds > 0}

    def render(self, width: int = 40) -> str:
        """ASCII breakdown bars (one :func:`repro.obs.render_bars` view)."""
        return render_bars(self.summary(), width,
                           empty="(no simulated time charged)")

    def reset(self) -> None:
        self._by_category.clear()
        self.events.clear()
        self._elapsed = 0.0


class PhaseTimer:
    """Wall-clock (host) time per named phase of a run.

    The simulated breakdown above answers "where would the *GPU* spend its
    time"; this answers "where does the *simulator process* spend yours" —
    the quantity ``benchmarks/bench_hotpath.py`` tracks and the CLI's
    ``--profile`` flag prints alongside the simulated breakdown.  Phases
    repeat freely; repeated names accumulate.  Phases may nest: each phase
    is charged its *self* time only (the enclosed inner phases' time is
    subtracted), so the per-phase seconds always partition the measured
    wall time and ``total`` never double-counts.
    """

    def __init__(self) -> None:
        self._order: List[str] = []
        self._seconds: Dict[str, float] = defaultdict(float)
        #: Open-phase stack: ``[name, start, inner_seconds]`` frames.
        self._stack: List[list] = []

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time the enclosed block under ``name`` (self time if nested)."""
        if name not in self._seconds:
            self._order.append(name)
            self._seconds[name] = 0.0
        frame = [name, time.perf_counter(), 0.0]
        self._stack.append(frame)
        try:
            yield
        finally:
            gross = time.perf_counter() - frame[1]
            self._stack.pop()
            self._seconds[name] += gross - frame[2]
            if self._stack:
                self._stack[-1][2] += gross

    @property
    def total(self) -> float:
        return math.fsum(self._seconds.values())

    def seconds(self, name: str) -> float:
        """Accumulated self time of ``name`` (0.0 if never entered)."""
        return self._seconds.get(name, 0.0)

    def summary(self) -> List[Tuple[str, float, float]]:
        """``(phase, seconds, share)`` rows in recording order."""
        total = self.total
        return [
            (name, self._seconds[name],
             (self._seconds[name] / total if total else 0.0))
            for name in self._order
        ]

    def as_dict(self) -> Dict[str, float]:
        """Per-phase self seconds in recording order (JSON-stable; the
        shape the perf-history store records)."""
        return {name: self._seconds[name] for name in self._order}

    def render(self, width: int = 40) -> str:
        """ASCII per-phase wall-clock bars (same layout as the simulated
        breakdown so the two print side by side)."""
        rows = self.summary()
        if not rows:
            return "(no phases recorded)"
        name_width = max(len(name) for name, __, __ in rows)
        lines = [render_bars(rows, width)]
        lines.append(
            f"{'total'.ljust(name_width)}  {' ' * width}  100.0%  "
            f"{self.total * 1e3:10.3f} ms"
        )
        return "\n".join(lines)
