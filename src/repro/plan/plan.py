"""CompiledPlan: the executable artifact the planner emits.

A plan is plain data — task kind, matching order, restriction sets,
orientation, join strategy, per-level growth strategies, access-mode
recommendation — plus provenance (pattern hash, profile hash, planner
version, predicted cost).  It serializes to stable JSON (``save`` /
``load``), hashes to a short ``plan_id``, and executes directly:
``engine.run(plan)`` works because :meth:`CompiledPlan.run` dispatches to
the algorithm drivers with the plan's choices, the same way the old
hardcoded drivers ran.

``source`` records where the choices came from:

* ``baseline`` — the pre-planner hand-tuned orders, bit-identical;
* ``auto`` — the cost model picked the cheapest candidate;
* ``hint`` — the costing could not beat the hand-tuned hint, so the plan
  *is* the hint (still validated like any candidate);
* ``file`` — loaded from a user-supplied plan JSON.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["PLAN_SCHEMA", "PLANNER_VERSION", "CompiledPlan", "pattern_hash"]

PLAN_SCHEMA = "gamma-plan/1"

#: Bump when costing/enumeration changes invalidate cached plans.
PLANNER_VERSION = 1

#: Orientation of the embedding table the plan drives.
V_ET = "v-ET"
E_ET = "e-ET"

TASKS = ("sm", "sm-binary", "fpm", "motif", "kclique")
SOURCES = ("auto", "baseline", "hint", "file")


def pattern_hash(pattern: Any) -> str:
    """Stable sha256 of a pattern's structure (edges + labels)."""
    payload = {
        "edges": [[int(u), int(v)] for u, v in pattern.edges],
        "labels": ([int(pattern.label(v))
                    for v in range(pattern.num_vertices)]
                   if pattern.labeled else None),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def task_signature(task: str, params: Dict[str, Any],
                   pattern: Any = None) -> str:
    """Cache-key component standing in for the pattern on pattern-less
    tasks (FPM / motif / k-clique are parameterized, not pattern-shaped)."""
    if pattern is not None:
        return pattern_hash(pattern)
    stable = {k: params[k] for k in sorted(params)
              if not isinstance(params[k], (list, dict))}
    blob = json.dumps({"task": task, "params": stable},
                      sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CompiledPlan:
    """One compiled execution plan; immutable, serializable, executable."""

    task: str                       # sm | sm-binary | fpm | motif | kclique
    source: str = "auto"
    orientation: str = V_ET
    join_strategy: str = "extend"   # extend | binary
    #: Pattern structure for SM tasks ({"edges", "labels", "name"}).
    pattern: Optional[Dict[str, Any]] = None
    #: Vertex matching order (SM / kclique) — query-vertex ids.
    order: Tuple[int, ...] = field(default=())
    #: Edge placement order (binary join) — pattern edges in growth order.
    edge_order: Tuple[Tuple[int, int], ...] = field(default=())
    #: Symmetry-breaking restrictions: (a, b) means match(a) < match(b).
    restrictions: Tuple[Tuple[int, int], ...] = field(default=())
    symmetry_breaking: bool = False
    #: Task parameters (k, iterations, min_support, metric, num_edges, …).
    params: Dict[str, Any] = field(default_factory=dict)
    #: Per-level growth strategies for edge-oriented tasks
    #: ([{"ordered": bool, "dedup": bool}, …], one per extension level).
    level_strategies: Tuple[Dict[str, Any], ...] = field(default=())
    #: Recommended residence access mode ("hybrid" is the engine default).
    access_mode: str = "hybrid"
    pattern_hash: str = ""
    profile_hash: str = ""
    planner_version: int = PLANNER_VERSION
    predicted_seconds: float = 0.0
    baseline_predicted_seconds: float = 0.0
    candidates_considered: int = 1
    schema: str = PLAN_SCHEMA

    # ------------------------------------------------------------------
    # Identity / serialization
    # ------------------------------------------------------------------

    def _identity_dict(self) -> Dict[str, Any]:
        """The fields that define *what executes* (not provenance)."""
        return {
            "schema": self.schema,
            "task": self.task,
            "orientation": self.orientation,
            "join_strategy": self.join_strategy,
            "pattern": self.pattern,
            "order": list(self.order),
            "edge_order": [list(e) for e in self.edge_order],
            "restrictions": [list(r) for r in self.restrictions],
            "symmetry_breaking": self.symmetry_breaking,
            "params": self.params,
            "level_strategies": [dict(s) for s in self.level_strategies],
            "access_mode": self.access_mode,
        }

    @property
    def plan_id(self) -> str:
        """Short content hash over the executable fields."""
        blob = json.dumps(self._identity_dict(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def to_json(self) -> Dict[str, Any]:
        doc = self._identity_dict()
        doc.update({
            "source": self.source,
            "pattern_hash": self.pattern_hash,
            "profile_hash": self.profile_hash,
            "planner_version": self.planner_version,
            "predicted_seconds": self.predicted_seconds,
            "baseline_predicted_seconds": self.baseline_predicted_seconds,
            "candidates_considered": self.candidates_considered,
            "plan_id": self.plan_id,
        })
        return doc

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "CompiledPlan":
        if doc.get("schema") != PLAN_SCHEMA:
            raise ValueError(
                f"unsupported plan schema {doc.get('schema')!r}; "
                f"expected {PLAN_SCHEMA}")
        return cls(
            task=doc["task"],
            source=doc.get("source", "file"),
            orientation=doc.get("orientation", V_ET),
            join_strategy=doc.get("join_strategy", "extend"),
            pattern=doc.get("pattern"),
            order=tuple(int(v) for v in doc.get("order", ())),
            edge_order=tuple(
                (int(u), int(v)) for u, v in doc.get("edge_order", ())
            ),
            restrictions=tuple(
                (int(a), int(b)) for a, b in doc.get("restrictions", ())
            ),
            symmetry_breaking=bool(doc.get("symmetry_breaking", False)),
            params=dict(doc.get("params", {})),
            level_strategies=tuple(
                dict(s) for s in doc.get("level_strategies", ())
            ),
            access_mode=doc.get("access_mode", "hybrid"),
            pattern_hash=doc.get("pattern_hash", ""),
            profile_hash=doc.get("profile_hash", ""),
            planner_version=int(doc.get("planner_version", PLANNER_VERSION)),
            predicted_seconds=float(doc.get("predicted_seconds", 0.0)),
            baseline_predicted_seconds=float(
                doc.get("baseline_predicted_seconds", 0.0)),
            candidates_considered=int(doc.get("candidates_considered", 1)),
        )

    def save(self, path: "str | pathlib.Path") -> pathlib.Path:
        target = pathlib.Path(path)
        target.write_text(
            json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n")
        return target

    @classmethod
    def load(cls, path: "str | pathlib.Path") -> "CompiledPlan":
        doc = json.loads(pathlib.Path(path).read_text())
        plan = cls.from_json(doc)
        return replace(plan, source="file")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def describe(self) -> str:
        """Multi-line human-readable rendering (``repro plan explain``)."""
        lines = [
            f"plan {self.plan_id} [{self.source}] "
            f"task={self.task} orientation={self.orientation} "
            f"join={self.join_strategy} access={self.access_mode}",
            f"  planner_version={self.planner_version} "
            f"candidates_considered={self.candidates_considered}",
        ]
        if self.pattern:
            name = self.pattern.get("name") or "<anon>"
            lines.append(
                f"  pattern {name}: edges={self.pattern.get('edges')} "
                f"labels={self.pattern.get('labels')}")
        if self.order:
            lines.append(f"  order: {list(self.order)}")
        if self.edge_order:
            lines.append(f"  edge order: {[list(e) for e in self.edge_order]}")
        if self.restrictions:
            rendered = ", ".join(f"q{a}<q{b}" for a, b in self.restrictions)
            lines.append(
                f"  restrictions ({'on' if self.symmetry_breaking else 'off'})"
                f": {rendered}")
        if self.level_strategies:
            per = [("ordered" if s.get("ordered") else "plain")
                   + ("+dedup" if s.get("dedup") else "")
                   for s in self.level_strategies]
            lines.append(f"  level strategies: {per}")
        if self.params:
            rendered = ", ".join(
                f"{k}={self.params[k]}" for k in sorted(self.params))
            lines.append(f"  params: {rendered}")
        if self.predicted_seconds:
            lines.append(
                f"  predicted {self.predicted_seconds:.6f}s"
                + (f" (baseline order {self.baseline_predicted_seconds:.6f}s)"
                   if self.baseline_predicted_seconds else ""))
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def build_pattern(self) -> Any:
        """Reconstruct the Pattern object for SM plans."""
        if self.pattern is None:
            raise ValueError(f"plan for task {self.task!r} has no pattern")
        from ..graph.patterns import Pattern
        return Pattern(
            [(int(u), int(v)) for u, v in self.pattern["edges"]],
            labels=self.pattern.get("labels"),
            name=self.pattern.get("name"),
        )

    def run(self, engine: Any) -> Any:
        """Execute this plan on ``engine`` (Gamma or ShardedGamma).

        Plans are tasks: ``engine.run(plan)`` calls this through the
        ``task.run`` protocol, so plan-driven and callable-driven runs
        share the journaling/telemetry path.
        """
        from .execute import execute_plan
        return execute_plan(engine, self)
