"""Dataset profiles: the statistics the planner costs orders against.

A :class:`DatasetProfile` is a small, hashable summary of a data graph —
vertex/edge counts, degree moments, and (for labeled graphs) per-label
vertex counts and mean degrees.  Two graphs with the same profile get the
same plan, which is exactly what makes the persistent plan cache sound:
its key is ``(pattern_hash, profile_hash)`` and the profile hash pins
every input the cost model reads.

Profiling is a host-side scan over the CSR arrays; it is never charged to
the simulated clock (the planner runs before the run starts, like query
compilation in a database).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

import numpy as np

__all__ = ["DatasetProfile", "profile_dataset"]


@dataclass(frozen=True)
class DatasetProfile:
    """Summary statistics of one data graph, stable under re-profiling."""

    num_vertices: int
    num_edges: int
    max_degree: int
    mean_degree: float
    num_labels: int
    #: vertices per label id (empty for unlabeled graphs)
    label_counts: Tuple[int, ...] = field(default=())
    #: mean degree of the vertices carrying each label id
    label_degree_means: Tuple[float, ...] = field(default=())

    # -- derived quantities the cost model reads ---------------------------

    def label_frequency(self, label: "int | None") -> float:
        """Fraction of vertices carrying ``label`` (1.0 when unlabeled)."""
        if label is None or not self.label_counts:
            return 1.0
        if not (0 <= label < len(self.label_counts)) or not self.num_vertices:
            return 0.0
        return self.label_counts[label] / self.num_vertices

    def label_mean_degree(self, label: "int | None") -> float:
        """Mean degree among vertices of ``label`` (global mean fallback)."""
        if (label is None or not self.label_degree_means
                or not 0 <= label < len(self.label_degree_means)):
            return self.mean_degree
        return self.label_degree_means[label]

    def edge_probability(self) -> float:
        """Probability a uniformly random ordered pair is adjacent."""
        if self.num_vertices <= 1:
            return 0.0
        return min(1.0, self.mean_degree / max(1, self.num_vertices - 1))

    # -- serialization / hashing ------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        return {
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "max_degree": self.max_degree,
            "mean_degree": round(self.mean_degree, 6),
            "num_labels": self.num_labels,
            "label_counts": list(self.label_counts),
            "label_degree_means": [
                round(m, 6) for m in self.label_degree_means
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DatasetProfile":
        return cls(
            num_vertices=int(data["num_vertices"]),
            num_edges=int(data["num_edges"]),
            max_degree=int(data["max_degree"]),
            mean_degree=float(data["mean_degree"]),
            num_labels=int(data["num_labels"]),
            label_counts=tuple(int(c) for c in data.get("label_counts", ())),
            label_degree_means=tuple(
                float(m) for m in data.get("label_degree_means", ())
            ),
        )

    @property
    def profile_hash(self) -> str:
        """sha256 over the canonical JSON form; the cache-key component."""
        blob = json.dumps(self.as_dict(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def profile_dataset(graph: Any) -> DatasetProfile:
    """Profile a :class:`~repro.graph.csr.CSRGraph` (host-side, uncharged).

    Degrees are rounded to six decimals inside the hash so re-profiling the
    same graph on any platform yields the same ``profile_hash``.
    """
    degrees = np.diff(graph.offsets).astype(np.int64)
    num_vertices = int(graph.num_vertices)
    num_edges = int(graph.num_edges)
    max_degree = int(degrees.max()) if degrees.size else 0
    mean_degree = float(degrees.mean()) if degrees.size else 0.0

    labels = getattr(graph, "labels", None)
    if labels is None:
        return DatasetProfile(
            num_vertices=num_vertices, num_edges=num_edges,
            max_degree=max_degree, mean_degree=mean_degree, num_labels=0,
        )

    labels = np.asarray(labels, dtype=np.int64)
    num_labels = int(labels.max()) + 1 if labels.size else 0
    counts = np.bincount(labels, minlength=num_labels).astype(np.int64)
    degree_sums = np.bincount(labels, weights=degrees.astype(np.float64),
                              minlength=num_labels)
    means = degree_sums / np.maximum(counts, 1)
    return DatasetProfile(
        num_vertices=num_vertices, num_edges=num_edges,
        max_degree=max_degree, mean_degree=mean_degree,
        num_labels=num_labels,
        label_counts=tuple(int(c) for c in counts),
        label_degree_means=tuple(float(m) for m in means),
    )
