"""Planner cost model: price candidate plans against a dataset profile.

This is a *ranking* model, not a clock: it reuses the gpusim rates
(:class:`~repro.gpusim.CostModel`) to convert estimated work — extension
candidate counts, embedding-table page traffic, sort volume — into
predicted seconds, so that candidate matching orders can be compared on
the same scale the simulator charges.  Absolute predictions are rough;
what matters is that the *ordering* of candidates tracks the ordering of
their simulated costs, which the bench gate (`benchmarks/bench_plan.py`)
checks end to end.

Cardinality estimation follows the classic independence model:

* a seed step keeps ``V x label_frequency(label)`` rows;
* an extension step scans ``rows_in x deg(source anchor)`` candidates,
  where the source anchor is the placed neighbor with the smallest
  label-conditioned mean degree (mirroring ``_vertex_read_plan``'s
  cheapest-anchor choice in the engine);
* each *additional* anchor survives with probability ``edge_probability``
  (adjacency treated as independent), a label filter survives with the
  label's frequency, and each ordering restriction (symmetry breaking or
  ascending-id growth) halves the survivors.

Edge-oriented growth (FPM / motif) is costed per level with explicit
sort volume for the dedup pass, which is how the planner discovers that
the ordered-growth strategy (no dedup needed at the pair level) wins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..gpusim import DEFAULT_COST, DEFAULT_SPEC, CostModel, DeviceSpec
from .profile import DatasetProfile

__all__ = ["PlanCostModel", "PlanEstimate", "StepEstimate"]

#: Bytes per embedding-table cell (int32 columns in the simulator tables).
_CELL_BYTES = 8

#: Quick-pattern encode cost per (row, edge) pair, mirroring
#: repro.core.aggregation._QUICK_OPS_PER_EDGE.
_AGG_OPS_PER_EDGE = 24


@dataclass(frozen=True)
class StepEstimate:
    """Predicted cost of one plan step."""

    kind: str                # seed | extend | dedup | aggregate | filter
    detail: str              # human-readable annotation ("place q3 from q1")
    rows_in: float
    candidates: float        # scanned extension candidates (0 for non-extend)
    rows_out: float
    ops: float               # device element-ops charged
    traffic_bytes: float     # PCIe page traffic (reads + writes)
    sort_bytes: float        # sort volume (dedup / aggregation sorts)
    seconds: float

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind, "detail": self.detail,
            "rows_in": round(self.rows_in, 1),
            "candidates": round(self.candidates, 1),
            "rows_out": round(self.rows_out, 1),
            "seconds": self.seconds,
        }


@dataclass(frozen=True)
class PlanEstimate:
    """Predicted cost of a whole candidate plan."""

    seconds: float
    steps: Tuple[StepEstimate, ...] = field(default=())

    @property
    def rows_trajectory(self) -> List[float]:
        return [s.rows_out for s in self.steps]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "seconds": self.seconds,
            "steps": [s.as_dict() for s in self.steps],
        }


class PlanCostModel:
    """Prices candidate orders/strategies against one dataset profile."""

    def __init__(self, profile: DatasetProfile,
                 cost: CostModel = DEFAULT_COST,
                 spec: DeviceSpec = DEFAULT_SPEC) -> None:
        self.profile = profile
        self.cost = cost
        self.spec = spec
        self._gpu_ops = cost.gpu_ops_per_second(spec)

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    def _search_steps(self) -> float:
        """Binary-search depth for one adjacency probe."""
        return math.log2(max(2, self.profile.max_degree))

    def _seconds(self, ops: float, traffic_bytes: float,
                 sort_bytes: float, launches: int = 1) -> float:
        return (launches * self.cost.kernel_launch_overhead
                + ops / self._gpu_ops
                + (traffic_bytes + sort_bytes) / self.cost.pcie_bandwidth)

    # ------------------------------------------------------------------
    # Vertex-oriented matching (subgraph matching, cliques)
    # ------------------------------------------------------------------

    def estimate_match_order(
        self, pattern: Any, order: Sequence[int],
        restrictions: Sequence[Tuple[int, int]] = (),
        symmetry_breaking: bool = False,
    ) -> PlanEstimate:
        """Predict the cost of matching ``pattern`` along ``order``.

        ``restrictions`` are (a, b) pairs meaning *match(a) < match(b)*;
        they only prune when ``symmetry_breaking`` is on, mirroring the
        engine's behavior.
        """
        prof = self.profile
        position = {qv: i for i, qv in enumerate(order)}
        p_adj = prof.edge_probability()
        steps: List[StepEstimate] = []

        first = order[0]
        first_label = pattern.label(first) if pattern.labeled else None
        rows = prof.num_vertices * prof.label_frequency(first_label)
        steps.append(StepEstimate(
            kind="seed", detail=f"seed q{first}",
            rows_in=prof.num_vertices, candidates=0.0, rows_out=rows,
            ops=prof.num_vertices,
            traffic_bytes=rows * _CELL_BYTES, sort_bytes=0.0,
            seconds=self._seconds(prof.num_vertices, rows * _CELL_BYTES, 0.0),
        ))

        for step in range(1, len(order)):
            qv = order[step]
            anchors = [position[a] for a in pattern.neighbors(qv)
                       if position.get(a, len(order)) < step]
            anchor_labels = [
                pattern.label(order[a]) if pattern.labeled else None
                for a in anchors
            ]
            # Engine picks the cheapest source list; mirror that choice.
            src_deg = min(
                (prof.label_mean_degree(lab) for lab in anchor_labels),
                default=prof.mean_degree,
            )
            candidates = rows * src_deg
            survival = p_adj ** max(0, len(anchors) - 1)
            label = pattern.label(qv) if pattern.labeled else None
            survival *= prof.label_frequency(label)
            n_restrict = 0
            if symmetry_breaking:
                n_restrict = sum(
                    1 for a, b in restrictions
                    if (b == qv and position[a] < step)
                    or (a == qv and position[b] < step)
                )
            survival *= 0.5 ** n_restrict
            rows_out = candidates * survival

            verify_ops = (candidates * self._search_steps()
                          * self.cost.search_step_ops
                          * max(1, len(anchors)))
            traffic = (rows * step * _CELL_BYTES
                       + rows_out * (step + 1) * _CELL_BYTES)
            steps.append(StepEstimate(
                kind="extend",
                detail=(f"place q{qv} from q{order[anchors[0]]}"
                        if anchors else f"place q{qv} (unanchored)"),
                rows_in=rows, candidates=candidates, rows_out=rows_out,
                ops=verify_ops, traffic_bytes=traffic, sort_bytes=0.0,
                seconds=self._seconds(verify_ops, traffic, 0.0),
            ))
            rows = rows_out

        return PlanEstimate(
            seconds=sum(s.seconds for s in steps), steps=tuple(steps),
        )

    # ------------------------------------------------------------------
    # Edge-oriented growth (FPM, motif counting)
    # ------------------------------------------------------------------

    def estimate_edge_plan(
        self, iterations: int,
        strategies: Optional[Sequence[Dict[str, Any]]] = None,
        aggregate: bool = True,
    ) -> PlanEstimate:
        """Predict FPM/motif cost for per-level growth ``strategies``.

        ``strategies[level-1]`` applies when growing *to* ``level + 1``
        edges: ``{"ordered": bool, "dedup": bool}``.  Ordered growth only
        admits extension edges with larger ids, so each edge *pair* is
        generated once and needs no dedup; at deeper levels ascending
        growth misses bridge-closing edges, so dedup stays mandatory.
        """
        prof = self.profile
        steps: List[StepEstimate] = []
        rows = float(prof.num_edges)
        # Mean number of incident edges around one embedding's vertex set.
        incident = 2.0 * prof.mean_degree

        steps.append(StepEstimate(
            kind="seed", detail="seed edges",
            rows_in=float(prof.num_edges), candidates=0.0, rows_out=rows,
            ops=rows, traffic_bytes=rows * _CELL_BYTES, sort_bytes=0.0,
            seconds=self._seconds(rows, rows * _CELL_BYTES, 0.0),
        ))

        for level in range(1, iterations + 1):
            width = level
            if aggregate:
                agg_ops = rows * width * _AGG_OPS_PER_EDGE
                agg_sort = rows * _CELL_BYTES * max(1.0, math.log2(max(2, rows)) / 8)
                traffic = rows * width * _CELL_BYTES
                steps.append(StepEstimate(
                    kind="aggregate", detail=f"level {level} quick-pattern",
                    rows_in=rows, candidates=0.0, rows_out=rows,
                    ops=agg_ops, traffic_bytes=traffic, sort_bytes=agg_sort,
                    seconds=self._seconds(agg_ops, traffic, agg_sort),
                ))
            if level >= iterations:
                break
            strategy = {}
            if strategies is not None and level - 1 < len(strategies):
                strategy = dict(strategies[level - 1])
            ordered = bool(strategy.get("ordered", False))
            dedup = bool(strategy.get("dedup", not ordered))

            candidates = rows * incident * width
            # Ordered growth keeps ascending continuations only (~half).
            grown = candidates * (0.5 if ordered else 1.0)
            ext_ops = candidates * self.cost.search_step_ops
            traffic = (rows * width * _CELL_BYTES
                       + grown * (width + 1) * _CELL_BYTES)
            steps.append(StepEstimate(
                kind="extend",
                detail=(f"grow to {level + 1} edges"
                        + (" (ordered)" if ordered else "")),
                rows_in=rows, candidates=candidates, rows_out=grown,
                ops=ext_ops, traffic_bytes=traffic, sort_bytes=0.0,
                seconds=self._seconds(ext_ops, traffic, 0.0),
            ))
            rows = grown

            if dedup:
                # Each (width+1)-edge set appears once per constituent edge
                # under unordered growth; dedup keeps one representative.
                survivors = rows / (width + 1)
                sort_bytes = rows * (width + 1) * _CELL_BYTES * 2
                sort_ops = rows * math.log2(max(2, rows))
                steps.append(StepEstimate(
                    kind="dedup", detail=f"dedup {level + 1}-edge sets",
                    rows_in=rows, candidates=0.0, rows_out=survivors,
                    ops=sort_ops, traffic_bytes=sort_bytes,
                    sort_bytes=sort_bytes,
                    seconds=self._seconds(sort_ops, sort_bytes, sort_bytes),
                ))
                rows = survivors

        return PlanEstimate(
            seconds=sum(s.seconds for s in steps), steps=tuple(steps),
        )
