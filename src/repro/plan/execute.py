"""Plan execution: dispatch a CompiledPlan to the algorithm drivers.

``execute_plan(engine, plan)`` is what :meth:`CompiledPlan.run` calls, so
``engine.run(plan)`` works for both :class:`~repro.core.framework.Gamma`
and :class:`~repro.shard.ShardedGamma` — the plan *is* the task.  Imports
are deferred to keep ``repro.plan`` importable without pulling the whole
algorithm stack (the algorithms import ``repro.plan`` themselves).
"""

from __future__ import annotations

from typing import Any

from .plan import CompiledPlan

__all__ = ["execute_plan"]


def execute_plan(engine: Any, plan: CompiledPlan) -> Any:
    """Run ``plan`` on ``engine``; returns the driver's result object."""
    if plan.task == "sm":
        from ..algorithms.subgraph_matching import match_pattern
        return match_pattern(
            engine, plan.build_pattern(),
            symmetry_breaking=plan.symmetry_breaking, plan=plan)
    if plan.task == "sm-binary":
        from ..algorithms.subgraph_matching import match_pattern_binary
        return match_pattern_binary(engine, plan.build_pattern(), plan=plan)
    if plan.task == "fpm":
        from ..algorithms.fpm import frequent_pattern_mining
        return frequent_pattern_mining(
            engine,
            iterations=int(plan.params["iterations"]),
            min_support=int(plan.params["min_support"]),
            support_metric=plan.params.get("support_metric", "instances"),
            plan=plan)
    if plan.task == "motif":
        from ..algorithms.motif import motif_count
        return motif_count(
            engine, num_edges=int(plan.params["num_edges"]), plan=plan)
    if plan.task == "kclique":
        from ..algorithms.kclique import count_kcliques
        return count_kcliques(engine, k=int(plan.params["k"]), plan=plan)
    raise ValueError(f"unknown plan task {plan.task!r}")
