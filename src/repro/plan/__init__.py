"""Pattern-aware query planning: compiled, cached execution plans.

The planner closes the gap the hand-written drivers left open: every
algorithm in :mod:`repro.algorithms` used to hardcode its matching order,
orientation and join strategy, one-size-fits-all across datasets.  This
package derives those choices per *(pattern, dataset)* instead:

* :mod:`repro.plan.profile` — a :class:`DatasetProfile` summarizing the
  data graph (degree profile, label histogram) with a deterministic hash;
* :mod:`repro.plan.cost` — a :class:`PlanCostModel` that prices candidate
  matching orders and join strategies against the profile using the
  gpusim cost-model rates (extension cardinalities, page traffic, sort
  volume);
* :mod:`repro.plan.planner` — candidate enumeration with
  symmetry-breaking restriction mapping; the hand-tuned baseline order is
  always a candidate (the *hint*), so a planner-chosen order can only
  beat or match it;
* :mod:`repro.plan.plan` — the serializable :class:`CompiledPlan` the
  engines execute (``engine.run(plan)`` works: a plan has ``run``);
* :mod:`repro.plan.cache` — a persistent SQLite plan cache keyed by
  ``(pattern-hash, profile-hash)`` with planner-version staleness checks
  and an in-process LRU in front.

Planning is host-side and uncharged: it happens before a run and never
contributes simulated time.  ``plan="baseline"`` (the library default)
reproduces the pre-planner orders bit-for-bit.
"""

from .cache import PlanCache
from .cost import PlanCostModel, PlanEstimate, StepEstimate
from .execute import execute_plan
from .plan import PLAN_SCHEMA, PLANNER_VERSION, CompiledPlan
from .planner import (
    Planner,
    baseline_plan,
    compile_plan,
    enumerate_orders,
    resolve_plan,
)
from .profile import DatasetProfile, profile_dataset

__all__ = [
    "PLAN_SCHEMA",
    "PLANNER_VERSION",
    "CompiledPlan",
    "DatasetProfile",
    "PlanCache",
    "PlanCostModel",
    "PlanEstimate",
    "Planner",
    "StepEstimate",
    "baseline_plan",
    "compile_plan",
    "enumerate_orders",
    "execute_plan",
    "profile_dataset",
    "resolve_plan",
]
