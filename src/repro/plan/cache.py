"""Persistent plan cache: SQLite blob store with an in-process LRU.

Cache key is ``(pattern_hash, profile_hash)`` — the pattern (or task
signature for pattern-less tasks) plus the dataset profile are the only
inputs the cost model reads, so a hit is guaranteed to be the plan the
planner would have produced.  Staleness is checked three ways on every
read: the stored ``planner_version`` must match the current
:data:`~repro.plan.plan.PLANNER_VERSION`, the stored ``profile_hash``
must match the requesting profile, and the payload must hash to its
recorded sha256 (guards torn writes / manual edits).  Stale rows are
treated as misses and overwritten.

The in-process LRU (a bounded ``OrderedDict``) sits in front so repeated
runs in one process never touch SQLite; ``hits``/``misses`` counters
feed the bench harness's warm-cache gate.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import sqlite3
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional

from .plan import PLANNER_VERSION, CompiledPlan

__all__ = ["PlanCache"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS plans (
    cache_key       TEXT PRIMARY KEY,
    planner_version INTEGER NOT NULL,
    profile_hash    TEXT NOT NULL,
    payload         BLOB NOT NULL,
    payload_sha     TEXT NOT NULL,
    created_utc     TEXT NOT NULL
);
"""

#: Default bound on the in-process LRU layer.
_LRU_CAPACITY = 64


class PlanCache:
    """Hash-keyed plan store: LRU in front of a SQLite blob table.

    Fork-safe by construction: the SQLite connection is opened lazily and
    keyed on ``os.getpid()``, so a child process (shard worker, Pool fork)
    that inherits a cache never reuses the parent's handle — it opens its
    own on first touch.  Pickling drops the connection and the in-process
    LRU (both are per-process state); the unpickled cache reconnects to
    the same database file on demand.
    """

    def __init__(self, path: "str | pathlib.Path",
                 lru_capacity: int = _LRU_CAPACITY) -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn: Optional[sqlite3.Connection] = None
        self._conn_pid: Optional[int] = None
        self._lru: "OrderedDict[str, CompiledPlan]" = OrderedDict()
        self._lru_capacity = max(1, lru_capacity)
        self.hits = 0
        self.misses = 0
        self._db.execute("SELECT 1")  # fail fast on an unopenable path

    # -- process boundary ----------------------------------------------

    @property
    def _db(self) -> sqlite3.Connection:
        """This process's connection (reopened after a fork)."""
        pid = os.getpid()
        if self._conn is None or self._conn_pid != pid:
            # A connection inherited across fork() must not be used *or
            # closed* — closing could checkpoint the parent's journal.
            # Drop the reference and open a fresh handle for this pid.
            self._conn = sqlite3.connect(str(self.path))
            self._conn_pid = pid
            self._conn.executescript(_SCHEMA)
            self._conn.commit()
        return self._conn

    def __getstate__(self) -> Dict[str, Any]:
        state = self.__dict__.copy()
        state["_conn"] = None
        state["_conn_pid"] = None
        state["_lru"] = OrderedDict()
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)

    # ------------------------------------------------------------------

    @staticmethod
    def cache_key(pattern_hash: str, profile_hash: str) -> str:
        return f"{pattern_hash}:{profile_hash}"

    def _lru_get(self, key: str) -> Optional[CompiledPlan]:
        plan = self._lru.get(key)
        if plan is not None:
            self._lru.move_to_end(key)
        return plan

    def _lru_put(self, key: str, plan: CompiledPlan) -> None:
        self._lru[key] = plan
        self._lru.move_to_end(key)
        while len(self._lru) > self._lru_capacity:
            self._lru.popitem(last=False)

    # ------------------------------------------------------------------

    def get(self, pattern_hash: str,
            profile_hash: str) -> Optional[CompiledPlan]:
        """Fresh cached plan, or ``None`` (stale rows count as misses)."""
        key = self.cache_key(pattern_hash, profile_hash)
        plan = self._lru_get(key)
        if plan is not None:
            self.hits += 1
            return plan
        row = self._db.execute(
            "SELECT planner_version, profile_hash, payload, payload_sha "
            "FROM plans WHERE cache_key = ?", (key,)).fetchone()
        if row is None:
            self.misses += 1
            return None
        version, stored_profile, payload, payload_sha = row
        stale = (
            int(version) != PLANNER_VERSION
            or stored_profile != profile_hash
            or hashlib.sha256(payload).hexdigest() != payload_sha
        )
        if stale:
            self.misses += 1
            return None
        try:
            plan = CompiledPlan.from_json(json.loads(payload.decode("utf-8")))
        except (ValueError, KeyError, json.JSONDecodeError):
            self.misses += 1
            return None
        self._lru_put(key, plan)
        self.hits += 1
        return plan

    def put(self, pattern_hash: str, profile_hash: str,
            plan: CompiledPlan) -> None:
        key = self.cache_key(pattern_hash, profile_hash)
        payload = json.dumps(plan.to_json(), sort_keys=True,
                             separators=(",", ":")).encode("utf-8")
        self._db.execute(
            "INSERT INTO plans (cache_key, planner_version, profile_hash,"
            " payload, payload_sha, created_utc)"
            " VALUES (?, ?, ?, ?, ?, ?)"
            " ON CONFLICT(cache_key) DO UPDATE SET"
            " planner_version=excluded.planner_version,"
            " profile_hash=excluded.profile_hash,"
            " payload=excluded.payload,"
            " payload_sha=excluded.payload_sha,"
            " created_utc=excluded.created_utc",
            (key, PLANNER_VERSION, profile_hash, payload,
             hashlib.sha256(payload).hexdigest(),
             time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())))
        self._db.commit()
        self._lru_put(key, plan)

    def get_or_plan(self, pattern_hash: str, profile_hash: str,
                    build: Callable[[], CompiledPlan]) -> CompiledPlan:
        """Cached plan if fresh, else ``build()`` and store the result."""
        plan = self.get(pattern_hash, profile_hash)
        if plan is not None:
            return plan
        plan = build()
        self.put(pattern_hash, profile_hash, plan)
        return plan

    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        count = self._db.execute("SELECT COUNT(*) FROM plans").fetchone()[0]
        return {
            "hits": self.hits, "misses": self.misses,
            "persisted": int(count), "lru": len(self._lru),
        }

    def close(self) -> None:
        if self._conn is not None and self._conn_pid == os.getpid():
            self._conn.close()
        self._conn = None
        self._conn_pid = None

    def __enter__(self) -> "PlanCache":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
