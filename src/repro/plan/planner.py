"""Candidate enumeration and plan selection.

``compile_plan`` is the front door: given a task, a pattern (for SM) or
parameters (for FPM/motif/k-clique), and a dataset profile, it either
reproduces the hand-tuned baseline (``mode="baseline"``, bit-identical to
the pre-planner drivers) or searches candidates with the cost model
(``mode="auto"``).  The hand-tuned order is always among the candidates —
the *hint* — so auto can only beat or match it; strict ties go to the
hint, which keeps auto == baseline on patterns where the profile offers
no signal.

``resolve_plan`` is the engine-facing helper: it accepts the user-level
plan spec (``None`` / ``"baseline"`` / ``"auto"`` / a path / a
:class:`CompiledPlan`) plus an optional :class:`~repro.plan.cache.PlanCache`
and returns a concrete plan, validating that a supplied plan matches the
requested pattern.
"""

from __future__ import annotations

import pathlib
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .cost import PlanCostModel
from .plan import (
    PLANNER_VERSION,
    CompiledPlan,
    E_ET,
    V_ET,
    pattern_hash,
    task_signature,
)
from .profile import DatasetProfile, profile_dataset

__all__ = [
    "Planner",
    "baseline_plan",
    "compile_plan",
    "enumerate_orders",
    "resolve_plan",
]

#: Cap on enumerated candidate orders; beyond this the searcher keeps the
#: cheapest-seen set (the hint is always included regardless).
MAX_CANDIDATE_ORDERS = 4096


def enumerate_orders(pattern: Any,
                     cap: int = MAX_CANDIDATE_ORDERS) -> List[Tuple[int, ...]]:
    """All connected matching orders of ``pattern``, up to ``cap``.

    Every prefix of a returned order induces a connected subgraph, the
    invariant the extension engine needs (each new vertex has at least one
    placed anchor).  Enumeration order is deterministic: DFS over sorted
    vertex ids.
    """
    n = pattern.num_vertices
    orders: List[Tuple[int, ...]] = []

    def grow(placed: List[int], frontier: set) -> None:
        if len(orders) >= cap:
            return
        if len(placed) == n:
            orders.append(tuple(placed))
            return
        for v in sorted(frontier):
            nxt = (frontier | set(pattern.neighbors(v))) - set(placed) - {v}
            grow(placed + [v], nxt)

    for start in range(n):
        grow([start], set(pattern.neighbors(start)))
    return orders


def _pattern_dict(pattern: Any) -> Dict[str, Any]:
    return {
        "edges": [[int(u), int(v)] for u, v in pattern.edges],
        "labels": ([int(pattern.label(v))
                    for v in range(pattern.num_vertices)]
                   if pattern.labeled else None),
        "name": getattr(pattern, "name", None),
    }


def _dedup_strategies(levels: int) -> Tuple[Dict[str, Any], ...]:
    return tuple({"ordered": False, "dedup": True} for __ in range(levels))


def baseline_plan(task: str, pattern: Any = None,
                  profile: Optional[DatasetProfile] = None,
                  **params: Any) -> CompiledPlan:
    """The pre-planner behavior as a plan: hand-tuned orders, no search."""
    common = {
        "source": "baseline",
        "profile_hash": profile.profile_hash if profile is not None else "",
        "candidates_considered": 1,
    }
    if task == "sm":
        return CompiledPlan(
            task="sm", orientation=V_ET, join_strategy="extend",
            pattern=_pattern_dict(pattern),
            order=tuple(pattern.matching_order()),
            restrictions=tuple(pattern.symmetry_breaking_constraints()),
            symmetry_breaking=bool(params.get("symmetry_breaking", False)),
            params={}, pattern_hash=pattern_hash(pattern), **common)
    if task == "sm-binary":
        return CompiledPlan(
            task="sm-binary", orientation=E_ET, join_strategy="binary",
            pattern=_pattern_dict(pattern),
            edge_order=tuple(
                (int(u), int(v)) for u, v in pattern.edge_order()),
            params={}, pattern_hash=pattern_hash(pattern), **common)
    if task == "fpm":
        levels = max(0, int(params["iterations"]) - 1)
        plan_params = {
            "iterations": int(params["iterations"]),
            "min_support": int(params["min_support"]),
            "support_metric": params.get("support_metric", "instances"),
        }
        return CompiledPlan(
            task="fpm", orientation=E_ET, join_strategy="extend",
            params=plan_params, level_strategies=_dedup_strategies(levels),
            pattern_hash=task_signature("fpm", plan_params), **common)
    if task == "motif":
        levels = max(0, int(params["num_edges"]) - 1)
        plan_params = {"num_edges": int(params["num_edges"])}
        return CompiledPlan(
            task="motif", orientation=E_ET, join_strategy="extend",
            params=plan_params, level_strategies=_dedup_strategies(levels),
            pattern_hash=task_signature("motif", plan_params), **common)
    if task == "kclique":
        plan_params = {"k": int(params["k"])}
        return CompiledPlan(
            task="kclique", orientation=V_ET, join_strategy="extend",
            order=tuple(range(int(params["k"]))),
            params=plan_params,
            pattern_hash=task_signature("kclique", plan_params), **common)
    raise ValueError(f"unknown plan task {task!r}")


class Planner:
    """Cost-based plan search over one dataset profile."""

    def __init__(self, profile: DatasetProfile,
                 cost_model: Optional[PlanCostModel] = None) -> None:
        self.profile = profile
        self.cost_model = cost_model or PlanCostModel(profile)

    # ------------------------------------------------------------------

    def plan_subgraph_match(self, pattern: Any, *,
                            symmetry_breaking: bool = False) -> CompiledPlan:
        """Pick the cheapest connected order; ties go to the hand hint."""
        hint = tuple(pattern.matching_order())
        restrictions = tuple(pattern.symmetry_breaking_constraints())
        candidates = enumerate_orders(pattern)
        if hint not in candidates:
            candidates.append(hint)

        best_order, best_est = hint, None
        hint_est = None
        for order in candidates:
            est = self.cost_model.estimate_match_order(
                pattern, order, restrictions,
                symmetry_breaking=symmetry_breaking)
            if order == hint:
                hint_est = est
            if best_est is None or est.seconds < best_est.seconds:
                best_order, best_est = order, est
        assert hint_est is not None and best_est is not None
        # Strict tie (or noise-level difference): keep the hint so the
        # planner never churns orders without a predicted win.
        if best_est.seconds >= hint_est.seconds * (1.0 - 1e-9):
            best_order, best_est = hint, hint_est

        return CompiledPlan(
            task="sm", orientation=V_ET, join_strategy="extend",
            source="auto" if best_order != hint else "hint",
            pattern=_pattern_dict(pattern),
            order=best_order, restrictions=restrictions,
            symmetry_breaking=symmetry_breaking,
            pattern_hash=pattern_hash(pattern),
            profile_hash=self.profile.profile_hash,
            predicted_seconds=best_est.seconds,
            baseline_predicted_seconds=hint_est.seconds,
            candidates_considered=len(candidates))

    def plan_binary_match(self, pattern: Any) -> CompiledPlan:
        """Binary-join plans keep the hand edge order (the e-ET growth
        order is already min-edge-first); the plan pins the orientation the
        host-side row alignment consumes."""
        plan = baseline_plan("sm-binary", pattern, self.profile)
        return plan

    def plan_edge_task(self, task: str, **params: Any) -> CompiledPlan:
        """FPM / motif: choose per-level growth strategies by cost.

        Level 1 (growing edge pairs) admits *ordered* growth — only
        extension edges with ids above the row's minimum edge — which
        generates each pair exactly once and needs no dedup.  Deeper
        levels must keep plain growth + dedup: ascending-id growth misses
        sets whose bridge edge has the largest id.  The cost model prices
        both and picks per level; in practice ordered always wins where
        it is legal because it removes an entire sort pass.
        """
        iterations = int(params["iterations"]) if task == "fpm" \
            else int(params["num_edges"])
        levels = max(0, iterations - 1)
        baseline = baseline_plan(task, profile=self.profile, **params)
        if levels == 0:
            return baseline

        choices: List[Dict[str, Any]] = []
        for level in range(1, levels + 1):
            if level == 1:
                ordered = {"ordered": True, "dedup": False}
                plain = {"ordered": False, "dedup": True}
                ordered_est = self.cost_model.estimate_edge_plan(
                    iterations, choices + [ordered]
                    + list(_dedup_strategies(levels - level)))
                plain_est = self.cost_model.estimate_edge_plan(
                    iterations, choices + [plain]
                    + list(_dedup_strategies(levels - level)))
                choices.append(
                    ordered if ordered_est.seconds < plain_est.seconds
                    else plain)
            else:
                choices.append({"ordered": False, "dedup": True})

        est = self.cost_model.estimate_edge_plan(iterations, choices)
        base_est = self.cost_model.estimate_edge_plan(
            iterations, list(baseline.level_strategies))
        if est.seconds >= base_est.seconds:
            return baseline
        import dataclasses
        return dataclasses.replace(
            baseline, source="auto", level_strategies=tuple(choices),
            predicted_seconds=est.seconds,
            baseline_predicted_seconds=base_est.seconds,
            candidates_considered=2 ** min(levels, 1) + 1)

    def plan_kclique(self, k: int) -> CompiledPlan:
        """Ascending-id clique growth is canonical (every order is
        isomorphic on a complete pattern); keep the baseline as a hint."""
        import dataclasses
        plan = baseline_plan("kclique", profile=self.profile, k=k)
        est = self.cost_model.estimate_match_order(
            _clique_pattern(k), tuple(range(k)))
        return dataclasses.replace(
            plan, source="hint", predicted_seconds=est.seconds,
            baseline_predicted_seconds=est.seconds)


def _clique_pattern(k: int) -> Any:
    from ..graph.patterns import clique
    return clique(k)


def compile_plan(task: str, *, pattern: Any = None,
                 profile: Optional[DatasetProfile] = None,
                 mode: str = "auto",
                 cost_model: Optional[PlanCostModel] = None,
                 **params: Any) -> CompiledPlan:
    """Compile one plan for ``task`` in ``mode`` (``auto``/``baseline``)."""
    if mode == "baseline" or profile is None:
        return baseline_plan(task, pattern, profile, **params)
    planner = Planner(profile, cost_model)
    if task == "sm":
        return planner.plan_subgraph_match(
            pattern, symmetry_breaking=bool(
                params.get("symmetry_breaking", False)))
    if task == "sm-binary":
        return planner.plan_binary_match(pattern)
    if task in ("fpm", "motif"):
        return planner.plan_edge_task(task, **params)
    if task == "kclique":
        return planner.plan_kclique(int(params["k"]))
    raise ValueError(f"unknown plan task {task!r}")


def resolve_plan(engine: Any, task: str, *, pattern: Any = None,
                 plan: Any = None, cache: Any = None,
                 profile: Optional[DatasetProfile] = None,
                 **params: Any) -> CompiledPlan:
    """Turn a user-level plan spec into a concrete :class:`CompiledPlan`.

    ``plan`` may be ``None`` (library default: baseline), ``"baseline"``,
    ``"auto"``, a path to a plan JSON, or an already-compiled plan.  When
    a cache is supplied, auto plans are looked up / stored under
    ``(pattern_hash, profile_hash)``.
    """
    if isinstance(plan, CompiledPlan):
        _check_plan_matches(plan, task, pattern)
        return plan
    if isinstance(plan, (str, pathlib.Path)) and plan not in (
            "auto", "baseline"):
        loaded = CompiledPlan.load(plan)
        _check_plan_matches(loaded, task, pattern)
        return loaded

    mode = "baseline" if plan in (None, "baseline") else "auto"
    if mode == "baseline":
        return baseline_plan(task, pattern, profile, **params)

    if profile is None:
        profile = profile_dataset(engine.graph)
    key_hash = (pattern_hash(pattern) if pattern is not None
                else task_signature(task, {
                    k: v for k, v in params.items()
                    if isinstance(v, (int, float, str, bool))}))
    # Symmetry breaking changes restriction pruning, hence the plan.
    if params.get("symmetry_breaking"):
        key_hash = key_hash + ":sb"

    def build() -> CompiledPlan:
        return compile_plan(task, pattern=pattern, profile=profile,
                            mode="auto", **params)

    if cache is not None:
        return cache.get_or_plan(key_hash, profile.profile_hash, build)
    return build()


def _check_plan_matches(plan: CompiledPlan, task: str, pattern: Any) -> None:
    if plan.task != task:
        raise ValueError(
            f"plan targets task {plan.task!r}, requested {task!r}")
    if pattern is not None and plan.pattern_hash:
        expected = pattern_hash(pattern)
        if plan.pattern_hash != expected:
            raise ValueError(
                "plan was compiled for a different pattern "
                f"(plan hash {plan.pattern_hash[:12]}…, "
                f"requested {expected[:12]}…)")
