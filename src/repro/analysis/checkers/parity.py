"""pipeline-parity: every fast path keeps a reference twin and a test.

The perf doctrine (PR 1, ``repro.perf``) allows a batched "fast" pipeline
only while a bit-for-bit "reference" twin stays selectable via
``REPRO_PIPELINE=reference`` and an equivalence test pins the two together.
This checker enforces both halves statically:

* ``parity-twin`` — a ``use_reference()``/``pipeline_mode()`` gate whose
  other arm is missing: no ``else``, no terminating branch with fall-through
  code.  Such a gate switches *part* of a computation, which is exactly how
  the two pipelines drift apart.
* ``parity-test`` — a gated function whose name (and enclosing class name)
  never appears in the equivalence-test corpus (test files exercising
  ``perf.pipeline(...)``/``REPRO_PIPELINE`` or named ``*equivalence*`` /
  ``*contract*``).  A fast path nobody diffs against its twin is untested
  by definition.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..diagnostics import Diagnostic
from ..framework import (
    Checker,
    LintContext,
    SourceModule,
    _package_relpath,
    register,
)
from ._gates import Gate, iter_gates

_TERMINATORS = (ast.Return, ast.Raise, ast.Continue, ast.Break)


def _terminates(statements: list) -> bool:
    return bool(statements) and isinstance(statements[-1], _TERMINATORS)


def _has_fallthrough(module: SourceModule, stmt: ast.stmt) -> bool:
    """Whether statements follow ``stmt`` in its enclosing block."""
    parent = module.parent(stmt)
    if parent is None:
        return False
    for field in ("body", "orelse", "finalbody"):
        block = getattr(parent, field, None)
        if isinstance(block, list) and stmt in block:
            return block.index(stmt) < len(block) - 1
    return False


def _twin_ok(module: SourceModule, gate: Gate) -> bool:
    """Both pipelines have an arm: explicit, or terminator + fall-through."""
    if gate.is_expression:
        return True
    if gate.reference_arm and gate.fast_arm:
        return True
    present = gate.reference_arm or gate.fast_arm
    return _terminates(present) and _has_fallthrough(module, gate.node)


@register
class PipelineParityChecker(Checker):
    name = "pipeline-parity"
    codes = ("parity-twin", "parity-test")
    description = (
        "pipeline gates need both fast and reference arms, and every gated "
        "function must appear in an equivalence test"
    )

    def check(self, module: SourceModule, context: LintContext) -> Iterator[Diagnostic]:
        relpath = _package_relpath(module.path)
        if relpath in ("repro/perf.py",) or relpath.startswith("repro/analysis/"):
            return  # the switch itself / this linter are not gated code
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            gates = [
                g for g in iter_gates(func)
                if module.enclosing_function(g.node) is func
            ]
            if not gates:
                continue
            for gate in gates:
                if not _twin_ok(module, gate):
                    missing = "reference" if not gate.reference_arm else "fast"
                    yield self.diagnostic(
                        module, gate.node, "parity-twin",
                        f"pipeline gate in `{func.name}` has no {missing} "
                        "arm: give the branch an else (or a terminating "
                        "body with fall-through code) so both pipelines "
                        "stay complete",
                    )
            if context.tests_corpus:
                names = {func.name}
                cls = module.enclosing_class(func)
                if cls is not None:
                    names.add(cls.name)
                if not any(name in context.tests_corpus for name in names):
                    where = " or ".join(sorted(f"`{n}`" for n in names))
                    yield self.diagnostic(
                        module, func, "parity-test",
                        f"pipeline-gated function {where} appears in no "
                        "equivalence test (searched "
                        f"{len(context.corpus_files)} corpus files); add a "
                        "fast-vs-reference test that names it",
                    )
