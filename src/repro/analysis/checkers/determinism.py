"""determinism: bit-identical manifests tolerate no ambient ordering.

The differential harness (tests/oracle.py, the shard determinism suite)
pins byte-identical manifests and crash/resume bit-parity.  Three ambient
nondeterminism sources statically visible in Python survive every
single-run test and break only across processes, hash seeds, or resumes:

* **arbitrary iteration order** (code ``det-order``): looping over a
  ``set``/``frozenset``, ``os.listdir``/``glob`` results, or set-algebra
  products — anywhere the loop's effects can feed accounting,
  aggregation, exchange or manifest content — without an intervening
  ``sorted(...)``.  Order-insensitive consumers (``len``, ``min``,
  ``max``, ``any``, ``sum`` of ints, membership tests) are fine and not
  flagged; *iteration* is the hazard.  The dataflow engine tracks the
  ``unordered-collection`` kind through assignments, returns and calls,
  so a set returned three functions away is still caught at the loop.
* **order-sensitive float reduction** (code ``det-float``): builtin
  ``sum(...)`` over a ``float-accumulator`` mapping's values (clock
  buckets, per-phase seconds).  Float addition does not associate;
  insertion order differs between a live run and a checkpoint-restored
  run.  Route these through ``math.fsum`` (exactly-rounded, hence
  order-independent) like ``SimClock.total`` does.
* **ambient seeds and wall clocks in engine scope** (code ``det-seed``):
  module-level ``random.*`` calls (unseeded global stream) or
  ``time.time``/``time.perf_counter`` inside the simulated-accounting
  scopes.  Simulated time comes from the cost model; host time and
  unseeded randomness there silently decouple the twin pipelines.

Scope: ``det-order`` everywhere in the package; ``det-float`` in the
accounting scopes (:data:`FLOAT_SCOPES`); ``det-seed`` in the engine
scopes.  Wall-clock profilers (PhaseTimer) waive ``det-seed`` with a
reason — the *host* clock is their subject matter.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..diagnostics import Diagnostic
from ..flow import kinds as K
from ..framework import (
    Checker,
    LintContext,
    SourceModule,
    _package_relpath,
    in_engine_scope,
    register,
)
from ..flow.symbols import _dotted

#: Where float reductions feed simulated accounting or its reporting.
FLOAT_SCOPES = (
    "repro/gpusim/", "repro/obs/", "repro/shard/", "repro/resilience/",
    "repro/core/", "repro/cli.py",
)

#: Names whose float sums are accounting-critical even when the dataflow
#: engine cannot prove the ``float-accumulator`` kind (values that came
#: out of a parsed manifest, say).  Matched against the summed
#: expression's source text.
FLOAT_HINT_NAMES = ("bucket", "seconds", "sim_", "_by_category", "elapsed")

#: ``random`` module functions drawing from the unseeded global stream.
GLOBAL_RANDOM = frozenset({
    "random", "randint", "randrange", "shuffle", "choice", "choices",
    "sample", "uniform", "gauss", "betavariate", "seed",
})

#: Host-clock reads that must not feed simulated accounting.
HOST_CLOCKS = frozenset({
    "time.time", "time.perf_counter", "time.monotonic",
    "time.process_time", "time.time_ns", "time.perf_counter_ns",
    "time.monotonic_ns",
})


def in_float_scope(path: str) -> bool:
    return _package_relpath(path).startswith(FLOAT_SCOPES)


@register
class DeterminismChecker(Checker):
    name = "determinism"
    codes = ("det-order", "det-float", "det-seed")
    description = (
        "no arbitrary-order iteration (sets, listdir/glob) feeding "
        "accounting/aggregation/manifests, no order-sensitive float sums "
        "in clock paths (use math.fsum), no ambient seeds/host clocks in "
        "engine scope"
    )

    def check(self, module: SourceModule, context: LintContext) -> Iterator[Diagnostic]:
        flow = context.flow
        if flow is None or not _package_relpath(module.path):
            return
        yield from self._check_order(module, flow)
        if in_float_scope(module.path):
            yield from self._check_float_sums(module, flow)
        if in_engine_scope(module.path):
            yield from self._check_seeds(module)

    # -- det-order ----------------------------------------------------------

    def _check_order(self, module: SourceModule, flow) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            iter_expr = None
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iter_expr = node.iter
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                # Only the outermost generator's order escapes into the
                # built container; inner ones are flagged via their own
                # comprehension nodes when reached by ast.walk.
                iter_expr = node.generators[0].iter
            if iter_expr is None:
                continue
            if self._order_insensitive_context(module, node):
                continue
            if K.UNORDERED in flow.kinds(iter_expr):
                yield self.diagnostic(
                    module, iter_expr, "det-order",
                    "iterating an unordered collection (set/listdir/glob) "
                    "here makes downstream accounting, aggregation or "
                    "manifest content order-dependent; wrap the source in "
                    "sorted(...)",
                )

    @staticmethod
    def _order_insensitive_context(module: SourceModule, node: ast.AST) -> bool:
        """Comprehension/loop results consumed order-insensitively.

        ``sorted({...for...})``, ``len([... for ...])``, ``set(...)``
        and friends neutralize the iteration order before it can leak.
        A SetComp is itself unordered output — its *own* iteration order
        never matters (the set forgets it); it is flagged only where
        eventually iterated.
        """
        if isinstance(node, ast.SetComp):
            return True
        parent = module.parent(node)
        if isinstance(parent, ast.Call) and isinstance(parent.func, ast.Name):
            name = parent.func.id
            if (name in K.ORDER_INSENSITIVE_CONSUMERS
                    or name in K.ORDER_SANITIZERS
                    or name in ("set", "frozenset", "dict")):
                return True
        if isinstance(parent, ast.Call) and isinstance(parent.func, ast.Attribute):
            if parent.func.attr == "fsum":
                return True
        return False

    # -- det-float ----------------------------------------------------------

    def _check_float_sums(self, module: SourceModule, flow) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "sum"
                    and node.args):
                continue
            arg = node.args[0]
            kinds = flow.kinds(arg)
            hinted = K.FLOAT_ACC in kinds or self._float_hinted(arg)
            if hinted:
                yield self.diagnostic(
                    module, node, "det-float",
                    "builtin sum() over float accumulator values is "
                    "insertion-order dependent (float addition does not "
                    "associate) and breaks checkpoint/resume bit-parity; "
                    "use math.fsum(...) — exactly rounded, order-free",
                )

    @staticmethod
    def _float_hinted(arg: ast.AST) -> bool:
        """``sum(x.values())`` where x's name smells like float buckets."""
        if not (isinstance(arg, ast.Call)
                and isinstance(arg.func, ast.Attribute)
                and arg.func.attr == "values"):
            return False
        base = _dotted(arg.func.value).lower()
        return any(hint in base for hint in FLOAT_HINT_NAMES)

    # -- det-seed -----------------------------------------------------------

    def _check_seeds(self, module: SourceModule) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if not dotted:
                continue
            if dotted in HOST_CLOCKS:
                yield self.diagnostic(
                    module, node, "det-seed",
                    f"`{dotted}()` reads the host clock inside engine "
                    "scope; simulated accounting must come from the cost "
                    "model (SimClock), not wall time",
                )
            else:
                head, _, rest = dotted.partition(".")
                if head == "random" and rest in GLOBAL_RANDOM:
                    yield self.diagnostic(
                        module, node, "det-seed",
                        f"`{dotted}()` draws from the process-global "
                        "random stream; engine randomness must come from "
                        "an explicitly seeded generator the run manifest "
                        "records",
                    )
