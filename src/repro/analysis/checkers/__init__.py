"""The six repo-specific checkers; importing this package registers them.

Adding a checker: create a module here, subclass
:class:`repro.analysis.framework.Checker`, decorate with ``@register``, and
import the module below (docs/LINTING.md walks through it).
"""

from . import charge, npdtype, obsspan, parity, planorder, warprace

__all__ = ["charge", "npdtype", "obsspan", "parity", "planorder", "warprace"]
