"""The eight repo-specific checkers; importing this package registers them.

Adding a checker: create a module here, subclass
:class:`repro.analysis.framework.Checker`, decorate with ``@register``, and
import the module below (docs/LINTING.md walks through it).  Checkers
needing interprocedural facts (kinds, call graph) read them from
``context.flow`` (:mod:`repro.analysis.flow`).
"""

from . import (
    charge,
    determinism,
    forksafety,
    npdtype,
    obsspan,
    parity,
    planorder,
    warprace,
)

__all__ = [
    "charge",
    "determinism",
    "forksafety",
    "npdtype",
    "obsspan",
    "parity",
    "planorder",
    "warprace",
]
