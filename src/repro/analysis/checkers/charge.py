"""charge-accounting: device-visible graph reads must be charged.

The simulated clocks (paper §IV) only move when adjacency traffic routes
through the charging APIs — a region's ``gather``/``gather_ranges``/
``read_range``/``charge_ranges`` or a residence accessor (``adjacency_of``,
``labels_of``, ...).  An engine or algorithm module that indexes
``CSRGraph.offsets``/``.neighbors``/``.edge_ids`` (or a region's backing
array) directly gets the right *answer* while silently undercounting the
simulated time, which corrupts every figure downstream.

This checker flags, inside the engine scope (``repro/core/``,
``repro/algorithms/``, ``repro/baselines/``):

* attribute reads of the CSR payload arrays (``offsets``, ``neighbors``,
  ``edge_ids``, ``edge_src``, ``edge_dst``, ``labels``) and of region
  internals (``array``, ``_array``) — except when the attribute is
  immediately called (``pattern.neighbors(v)`` is a method, not the array);
* calls to the uncharged host-side view methods ``neighbors_of``,
  ``incident_edges_of`` and ``edge_endpoints``.

Intentional host-side reads (e.g. deriving a read multiset that is then
charged explicitly) carry a line waiver with the reason:
``# gammalint: allow[charge] -- <why the traffic is still charged>``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..diagnostics import Diagnostic
from ..framework import Checker, LintContext, SourceModule, in_engine_scope, register

#: CSR payload / region-internal attributes whose raw reads bypass charging.
ARRAY_ATTRS = frozenset({
    "offsets", "neighbors", "edge_ids", "edge_src", "edge_dst", "labels",
    "array", "_array",
})

#: Uncharged host-side view methods of CSRGraph.
VIEW_METHODS = frozenset({"neighbors_of", "incident_edges_of", "edge_endpoints"})


@register
class ChargeAccountingChecker(Checker):
    name = "charge-accounting"
    codes = ("charge",)
    description = (
        "raw CSR/region reads in engine modules must route through the "
        "charging APIs (gather/gather_ranges/charge_ranges or a residence "
        "accessor)"
    )

    def check(self, module: SourceModule, context: LintContext) -> Iterator[Diagnostic]:
        if not in_engine_scope(module.path):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            parent = module.parent(node)
            is_call_target = isinstance(parent, ast.Call) and parent.func is node
            if node.attr in VIEW_METHODS and is_call_target:
                yield self.diagnostic(
                    module, node, "charge",
                    f"`.{node.attr}()` is an uncharged host-side view; use "
                    "the residence accessor (adjacency_of/incident_edges_of/"
                    "endpoints_of) or charge the read explicitly",
                )
            elif (
                node.attr in ARRAY_ATTRS
                and not is_call_target
                and isinstance(node.ctx, ast.Load)
            ):
                yield self.diagnostic(
                    module, node, "charge",
                    f"raw read of `.{node.attr}` bypasses the charging "
                    "APIs; go through a region (gather/gather_ranges/"
                    "charge_ranges) or a residence accessor so the "
                    "simulated clock sees the traffic",
                )
