"""plan-order: matching-order decisions belong to the query planner.

PR 6 moved order/orientation/strategy selection into ``repro.plan``: the
algorithm drivers request a plan (``resolve_plan``) and execute whatever
it says, and the hand-tuned orders survive only as the planner's baseline
table.  A driver calling ``pattern.matching_order()`` (or its siblings)
directly re-hardcodes a one-size-fits-all choice and silently bypasses
the cost model, the plan cache, and the ``--plan baseline`` parity
escape hatch.

One rule:

* ``planorder`` — a call to ``.matching_order()`` / ``.edge_order()`` /
  ``.symmetry_breaking_constraints()`` inside the engine scopes
  (``repro/core/``, ``repro/algorithms/``, ``repro/baselines/``).  The
  planner package itself (``repro/plan/``) is outside those scopes and
  is the one place allowed to consult the hand-tuned orders.  Legitimate
  non-planning uses (e.g. a *verifier* that checks full rows against the
  pattern and needs some canonical vertex enumeration) carry a waiver.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..diagnostics import Diagnostic
from ..framework import Checker, LintContext, SourceModule, in_engine_scope, register

#: Pattern methods that *decide* a matching order / restriction set.
_ORDER_METHODS = frozenset({
    "matching_order",
    "edge_order",
    "symmetry_breaking_constraints",
})


@register
class PlanOrderChecker(Checker):
    name = "plan-order"
    codes = ("planorder",)
    description = (
        "matching orders come from repro.plan; engine scopes must not call "
        "matching_order()/edge_order()/symmetry_breaking_constraints()"
    )

    def check(self, module: SourceModule,
              context: LintContext) -> Iterator[Diagnostic]:
        if not in_engine_scope(module.path):
            return
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _ORDER_METHODS
            ):
                continue
            yield self.diagnostic(
                module, node, "planorder",
                f"direct `.{node.func.attr}()` call hardcodes a matching "
                "order; request a CompiledPlan via repro.plan.resolve_plan "
                "instead (the hand-tuned order lives on as the planner's "
                "baseline table)",
            )
