"""numpy-dtype: dtype discipline, overflow guards, banned sorts.

Three rules, all scoped to the wall-clock hot modules (``repro/core/``,
``repro/gpusim/``, ``repro/graph/csr.py``):

* ``dtype`` — ``np.arange``/``np.zeros``/``np.empty``/``np.ones``/
  ``np.full`` without an explicit ``dtype``.  NumPy's platform-dependent
  defaults are how int32-on-Windows bugs and accidental float64 promotion
  sneak into index arithmetic; hot modules spell the dtype out.
* ``overflow`` — packed-key arithmetic (a multiply by an ``np.int64(...)``
  cast, or a left shift by >= 16 bits) in a function with no visible
  overflow guard.  A guard is an ``if``/``assert``/``while`` test naming a
  limit-like identifier (``*LIMIT*``, ``*MAX*``, ``*BOUND*``, ``iinfo``,
  ``overflow``).  Packing ``(row, value)`` into one int64 silently wraps
  past 2**63 — the guard (or a reasoned waiver) proves someone did the
  arithmetic.
* ``banned-sort`` — ``np.unique``/``np.lexsort`` outside the reference arm
  of a pipeline-gated function.  The fast pipeline exists precisely to
  avoid those sorts; reaching for them in a fast arm forfeits the speedup
  while keeping the fast path's complexity.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..diagnostics import Diagnostic
from ..framework import Checker, LintContext, SourceModule, in_hot_scope, register
from ._gates import is_gated, iter_gates, statement_span

#: Constructors whose dtype must be explicit (keyword, or positional where
#: the signature places dtype second/third: zeros/empty/ones(shape, dtype),
#: full(shape, fill, dtype)).  ``*_like`` variants inherit and are exempt.
_DTYPE_CALLS = {"arange": None, "zeros": 2, "empty": 2, "ones": 2, "full": 3}

_BANNED_SORTS = frozenset({"unique", "lexsort"})

_GUARD_NAME = re.compile(r"(?i)(limit|max|bound|overflow|iinfo)")

_SHIFT_THRESHOLD = 16


def _np_call(node: ast.AST) -> str | None:
    """Attribute name for an ``np.<name>(...)`` call, else ``None``."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == "np"
    ):
        return node.func.attr
    return None


def _is_packing(node: ast.AST) -> bool:
    """Whether ``node`` is a packed-key arithmetic expression."""
    if not isinstance(node, ast.BinOp):
        return False
    if isinstance(node.op, ast.Mult):
        return any(
            _np_call(operand) == "int64" for operand in (node.left, node.right)
        )
    if isinstance(node.op, ast.LShift):
        # A literal << literal (e.g. ``1 << 62`` defining a limit) is
        # constant-folded in arbitrary-precision Python ints — no array
        # arithmetic, no overflow.
        return (
            not isinstance(node.left, ast.Constant)
            and isinstance(node.right, ast.Constant)
            and isinstance(node.right.value, int)
            and node.right.value >= _SHIFT_THRESHOLD
        )
    return False


def _has_guard(func: ast.AST) -> bool:
    """A limit-like identifier in any if/assert/while test of ``func``."""
    tests = []
    for node in ast.walk(func):
        if isinstance(node, (ast.If, ast.While)):
            tests.append(node.test)
        elif isinstance(node, ast.Assert):
            tests.append(node.test)
        elif isinstance(node, ast.IfExp):
            tests.append(node.test)
    for test in tests:
        for sub in ast.walk(test):
            name = None
            if isinstance(sub, ast.Name):
                name = sub.id
            elif isinstance(sub, ast.Attribute):
                name = sub.attr
            if name is not None and _GUARD_NAME.search(name):
                return True
    return False


@register
class NumpyDtypeChecker(Checker):
    name = "numpy-dtype"
    codes = ("dtype", "overflow", "banned-sort")
    description = (
        "hot modules need explicit dtypes, overflow guards around packed "
        "keys, and no np.unique/np.lexsort in fast-pipeline arms"
    )

    def check(self, module: SourceModule, context: LintContext) -> Iterator[Diagnostic]:
        if not in_hot_scope(module.path):
            return
        yield from self._check_dtypes(module)
        yield from self._check_packing(module)
        yield from self._check_banned_sorts(module)

    def _check_dtypes(self, module: SourceModule) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            name = _np_call(node)
            if name not in _DTYPE_CALLS:
                continue
            positional_slot = _DTYPE_CALLS[name]
            has_dtype = any(kw.arg == "dtype" for kw in node.keywords) or (
                positional_slot is not None and len(node.args) >= positional_slot
            )
            if not has_dtype:
                yield self.diagnostic(
                    module, node, "dtype",
                    f"`np.{name}` without an explicit dtype in a hot "
                    "module; spell it out (platform-default dtypes are "
                    "how index-arithmetic bugs start)",
                )

    def _check_packing(self, module: SourceModule) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not _is_packing(node):
                continue
            func = module.enclosing_function(node)
            if func is not None and _has_guard(func):
                continue
            yield self.diagnostic(
                module, node, "overflow",
                "packed-key int64 arithmetic with no overflow guard in "
                "the enclosing function; bound the operands (compare "
                "against a *_LIMIT / np.iinfo value) or waive with the "
                "reason the packing cannot wrap",
            )

    def _check_banned_sorts(self, module: SourceModule) -> Iterator[Diagnostic]:
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not is_gated(func):
                continue
            reference_spans = [
                statement_span(gate.reference_arm)
                for gate in iter_gates(func)
                if gate.reference_arm
            ]
            for node in ast.walk(func):
                name = _np_call(node)
                if name not in _BANNED_SORTS:
                    continue
                line = node.lineno
                if any(first <= line <= last for first, last in reference_spans):
                    continue
                yield self.diagnostic(
                    module, node, "banned-sort",
                    f"`np.{name}` in the fast arm of pipeline-gated "
                    f"`{func.name}`; the fast pipeline must stay "
                    "sort-free (move it to the reference arm or use the "
                    "bincount/flatnonzero derivations)",
                )
