"""warp-race: shared simulator state needs conflict resolution in warp loops.

A ``for ... in grid.partition(n)`` loop models per-warp execution: its body
runs "concurrently" across warps.  Python executes it serially, so writing
shared simulator state (the clock, counters, kernel launcher, pool tallies)
per iteration *works* — but it models hundreds of warps updating one
location without the intra-warp conflict resolution the paper's
Optimization 1 requires (warp-level exclusive scan / ballot), and the next
refactor that reorders the loop changes the simulated outcome.

The rule: inside a ``partition()`` loop body, flag

* ``...clock.advance(...)``, ``...counters.add(...)``,
  ``...kernel.launch(...)``, ``...cpu.work(...)`` calls, and
* augmented assignments to attributes (``pool.blocks_served += ...``),

unless the loop body resolves conflicts by calling
``warp_exclusive_scan``/``warp_ballot`` somewhere, or the line carries a
``# gammalint: allow[warp-race] -- <reason>`` waiver.  The fix is almost
always: accumulate per-warp quantities into an array inside the loop, then
charge once after it (see ``DynamicAllocStrategy.account``).

The interprocedural rule (code ``warp-race-transitive``) extends this
through the call graph: a call inside a ``partition()`` loop body whose
callee *transitively* writes shared simulator state — ``helper()`` three
frames above a ``clock.advance`` — is the same race wearing a function
call as a disguise.  The diagnostic names the witness call chain.
Callees that resolve conflicts themselves (``warp_exclusive_scan`` /
``warp_ballot`` anywhere in their body) are safe subtrees.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..diagnostics import Diagnostic
from ..flow.engine import shared_call_description
from ..framework import Checker, LintContext, SourceModule, register

#: attribute-method calls on shared simulator objects: {owner: {method}}.
_SHARED_CALLS = {
    "clock": {"advance"},
    "counters": {"add"},
    "kernel": {"launch"},
    "cpu": {"work"},
    "pcie": {"migrate_pages", "explicit_copy", "zerocopy_transactions"},
}

_RESOLUTION_CALLS = frozenset({"warp_exclusive_scan", "warp_ballot"})


def _is_partition_loop(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.For)
        and isinstance(node.iter, ast.Call)
        and (
            (isinstance(node.iter.func, ast.Attribute)
             and node.iter.func.attr == "partition")
            or (isinstance(node.iter.func, ast.Name)
                and node.iter.func.id == "partition")
        )
    )


def _owner_chain(node: ast.AST) -> list:
    """Attribute names along ``a.b.c`` (innermost first)."""
    names = []
    while isinstance(node, ast.Attribute):
        names.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        names.append(node.id)
    return names


def _shared_call(node: ast.AST) -> str | None:
    """A dotted description if ``node`` calls a shared-state mutator."""
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
        return None
    chain = _owner_chain(node.func)
    method, owners = chain[0], chain[1:]
    for owner, methods in _SHARED_CALLS.items():
        if method in methods and owner in owners:
            return f"{owner}.{method}"
    return None


def _has_resolution(body: list) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                func = node.func
                name = func.id if isinstance(func, ast.Name) else (
                    func.attr if isinstance(func, ast.Attribute) else None
                )
                if name in _RESOLUTION_CALLS:
                    return True
    return False


@register
class WarpRaceChecker(Checker):
    name = "warp-race"
    codes = ("warp-race", "warp-race-transitive")
    description = (
        "per-warp partition() loops must not write shared simulator state "
        "without warp_exclusive_scan/ballot conflict resolution — not "
        "lexically, and not transitively through called helpers"
    )

    def check(self, module: SourceModule, context: LintContext) -> Iterator[Diagnostic]:
        for loop in ast.walk(module.tree):
            if not _is_partition_loop(loop):
                continue
            if _has_resolution(loop.body):
                continue
            for stmt in loop.body:
                for node in ast.walk(stmt):
                    shared = _shared_call(node)
                    if shared is not None:
                        yield self.diagnostic(
                            module, node, "warp-race",
                            f"`{shared}(...)` inside a per-warp partition() "
                            "loop races across warps; accumulate per-warp "
                            "values and charge once after the loop, or "
                            "resolve with warp_exclusive_scan/warp_ballot",
                        )
                    elif isinstance(node, ast.AugAssign) and isinstance(
                        node.target, ast.Attribute
                    ):
                        yield self.diagnostic(
                            module, node, "warp-race",
                            f"augmented write to `.{node.target.attr}` "
                            "inside a per-warp partition() loop is an "
                            "unresolved cross-warp write conflict; "
                            "accumulate per-warp and combine after the "
                            "loop (warp_exclusive_scan/warp_ballot)",
                        )
                    elif isinstance(node, ast.Call):
                        yield from self._transitive(module, context, node)

    def _transitive(self, module: SourceModule, context: LintContext,
                    node: ast.Call) -> Iterator[Diagnostic]:
        """Resolved calls whose callees reach shared-state writes."""
        flow = context.flow
        if flow is None:
            return
        # The lexical rule already covers direct shared calls; only
        # project-resolved callees are worth chasing.
        if shared_call_description(node) is not None:
            return
        target = flow.graph.resolve_site(node)
        if target is None:
            return
        witnesses = flow.transitive_shared_writes(target.qualname) or []
        if not witnesses:
            return
        path, desc = witnesses[0]
        chain = " -> ".join(q.rpartition(":")[2] or q for q in path)
        yield self.diagnostic(
            module, node, "warp-race-transitive",
            f"call inside a per-warp partition() loop reaches shared "
            f"simulator state transitively ({chain}: `{desc}`); hoist the "
            "charge out of the loop or resolve with warp_exclusive_scan/"
            "warp_ballot in the callee",
        )
