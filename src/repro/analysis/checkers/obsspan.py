"""obs-span: engine phase boundaries must run under a telemetry span.

The telemetry layer (:mod:`repro.obs`) partitions a run's counters and
simulated time across a span tree; the invariant "span self-deltas sum to
the global totals" only holds if every phase-shaped entry point actually
opens a span.  A new extension/aggregation/filtering entry point that
skips the ``with ...span(...)`` wrapper silently attributes its charges to
the parent span, and the trace misleads the next person profiling it.

The rule, inside ``repro/core/`` and ``repro/obs/``: a public function
or method whose name marks it as a phase boundary —

* prefixed ``extend_``, ``seed_``, ``aggregate_``, ``filter_``,
  ``dedup_``, or
* named ``sort_and_count`` / ``out_of_core_sort``

— must contain a ``with`` statement whose context manager is a ``.span()``
call (``platform.telemetry.span(...)``, ``tel.span(...)``, ...) somewhere
in its body, or delegate to a private ``_..._impl`` twin that the public
wrapper instruments.  Helpers with a leading underscore are exempt: the
convention is *public entry span + private uninstrumented impl*.

A boundary that is deliberately uninstrumented (e.g. a trivial forwarding
shim whose target opens the span) carries a waiver with the reason:
``# gammalint: allow[obs-span] -- <where the span is opened instead>``.

obs-profile note: ``repro/obs/profile/`` is exempt wholesale.  The
profiling subpackage *analyzes* recorded span trees offline — its
functions (``aggregate_paths``, ``aggregate_*`` siblings, ...) collide
with the phase-boundary prefixes by vocabulary, not by role, and opening
spans inside the analyzer would recursively instrument the instrument.
``tests/analysis/fixtures/obsprofile.py`` pins the exemption.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..diagnostics import Diagnostic
from ..framework import Checker, LintContext, SourceModule, _package_relpath, register

#: The engine core plus the telemetry layer itself: baselines/algorithms
#: charge through the core, and the CPU baselines intentionally have no
#: span-tree story of their own.
OBS_SCOPES = ("repro/core/", "repro/obs/")

#: obs-profile exemption: the profiling subpackage analyzes span trees
#: offline; its ``aggregate_*``-shaped names are analysis vocabulary, not
#: engine phase boundaries (see module docstring).
PROFILE_EXEMPT = ("repro/obs/profile/",)

#: Name prefixes that mark a function as a phase boundary.
ENTRY_PREFIXES = ("extend_", "seed_", "aggregate_", "filter_", "dedup_")

#: Exact-name phase boundaries that the prefixes miss.
ENTRY_NAMES = frozenset({"sort_and_count", "out_of_core_sort"})


def _is_entry_point(name: str) -> bool:
    if name.startswith("_"):
        return False
    return name.startswith(ENTRY_PREFIXES) or name in ENTRY_NAMES


def _opens_span(func: ast.AST) -> bool:
    """True if any ``with`` item in ``func`` is a ``.span(...)`` call."""
    for node in ast.walk(func):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            expr = item.context_expr
            if (
                isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr == "span"
            ):
                return True
    return False


@register
class ObsSpanChecker(Checker):
    name = "obs-span"
    codes = ("obs-span",)
    description = (
        "engine phase boundaries (extend_*/seed_*/aggregate_*/filter_*/"
        "dedup_*/sort entry points in repro/core/ and repro/obs/, minus "
        "the offline repro/obs/profile/ analyzers) must open a telemetry "
        "span so counter and time deltas stay attributable"
    )

    def check(self, module: SourceModule, context: LintContext) -> Iterator[Diagnostic]:
        relpath = _package_relpath(module.path)
        if not relpath.startswith(OBS_SCOPES):
            return
        if relpath.startswith(PROFILE_EXEMPT):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _is_entry_point(node.name):
                continue
            if _opens_span(node):
                continue
            yield self.diagnostic(
                module, node, "obs-span",
                f"phase boundary `{node.name}` opens no telemetry span; "
                "wrap the body in `with <platform>.telemetry.span(...)` "
                "(or move it to a private `_" + node.name + "_impl` called "
                "from an instrumented public wrapper)",
            )
