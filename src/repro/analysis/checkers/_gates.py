"""Shared analysis of ``pipeline_mode()`` / ``use_reference()`` gates.

Both the pipeline-parity checker and the numpy-dtype checker need to know
which ``if`` statements switch between the fast and reference pipelines and
which arm is which.  A *gate* is an ``if`` (or ``elif``, or conditional
expression) whose test calls :func:`repro.perf.use_reference` or compares
:func:`repro.perf.pipeline_mode` against a pipeline constant.

Arm orientation: the branch taken when the *reference* pipeline is selected
is the "reference arm".  ``if use_reference():`` puts it in the body;
``if not use_reference():`` swaps the arms; ``pipeline_mode() == FAST``
(or ``== "fast"``) likewise swaps them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

GATE_CALLS = frozenset({"use_reference", "pipeline_mode"})

_FAST_TOKENS = frozenset({"fast", "FAST"})
_REFERENCE_TOKENS = frozenset({"reference", "REFERENCE"})


def _called_name(node: ast.AST) -> str | None:
    """The callee name of a Call node (``f()`` or ``mod.f()``)."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _mode_token(node: ast.AST) -> str | None:
    """A pipeline constant mentioned in a comparison operand."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _gate_polarity(test: ast.AST) -> bool | None:
    """``True`` if the branch body is the reference arm, ``False`` if it is
    the fast arm, ``None`` if ``test`` is not a gate at all.

    Handles negation (``not use_reference()``) and equality comparisons of
    ``pipeline_mode()`` against the pipeline constants; a gate call nested
    in ``and``/``or`` keeps its own polarity (the body runs only when the
    whole test holds, which for our gates means the reference condition
    contributed positively).
    """
    for node in ast.walk(test):
        name = _called_name(node)
        if name not in GATE_CALLS:
            continue
        polarity = name == "use_reference" or None
        # pipeline_mode() compared against a constant decides polarity.
        parent_cmp = _find_compare(test, node)
        if parent_cmp is not None:
            token = None
            for operand in [parent_cmp.left, *parent_cmp.comparators]:
                token = _mode_token(operand) if _mode_token(operand) in (
                    _FAST_TOKENS | _REFERENCE_TOKENS
                ) else token
            if token is not None:
                is_eq = isinstance(parent_cmp.ops[0], ast.Eq)
                wants_reference = token in _REFERENCE_TOKENS
                polarity = is_eq == wants_reference
        if polarity is None:
            # Bare pipeline_mode() in a test without a recognized
            # comparison: treat as a gate with body = reference arm.
            polarity = True
        return polarity != _negated(test, node)
    return None


def _find_compare(root: ast.AST, target: ast.AST) -> ast.Compare | None:
    for node in ast.walk(root):
        if isinstance(node, ast.Compare):
            for sub in ast.walk(node):
                if sub is target:
                    return node
    return None


def _negated(root: ast.AST, target: ast.AST) -> bool:
    """Whether ``target`` sits under an odd number of ``not`` operators."""
    count = 0

    def visit(node: ast.AST, nots: int) -> int | None:
        if node is target:
            return nots
        extra = 1 if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not) else 0
        for child in ast.iter_child_nodes(node):
            found = visit(child, nots + extra)
            if found is not None:
                return found
        return None

    found = visit(root, count)
    return bool(found) and found % 2 == 1


@dataclass
class Gate:
    """One pipeline gate inside a function."""

    node: ast.stmt  # the ast.If (or ast.IfExp's enclosing statement)
    #: Statements of the reference arm ([] when the arm is missing).
    reference_arm: list
    #: Statements of the fast arm.
    fast_arm: list
    #: Whether the construct can even express both arms (IfExp always can).
    is_expression: bool = False


def iter_gates(func: ast.AST) -> Iterator[Gate]:
    """Yield every pipeline gate lexically inside ``func``."""
    for node in ast.walk(func):
        if isinstance(node, ast.If):
            polarity = _gate_polarity(node.test)
            if polarity is None:
                continue
            body, orelse = list(node.body), list(node.orelse)
            if polarity:
                yield Gate(node, reference_arm=body, fast_arm=orelse)
            else:
                yield Gate(node, reference_arm=orelse, fast_arm=body)
        elif isinstance(node, ast.IfExp):
            polarity = _gate_polarity(node.test)
            if polarity is None:
                continue
            body, orelse = [node.body], [node.orelse]
            ref, fast = (body, orelse) if polarity else (orelse, body)
            yield Gate(node, reference_arm=ref, fast_arm=fast,
                       is_expression=True)


def is_gated(func: ast.AST) -> bool:
    """Whether ``func`` contains at least one pipeline gate."""
    return next(iter_gates(func), None) is not None


def statement_span(statements: list) -> tuple[int, int]:
    """Inclusive (first, last) line numbers covered by ``statements``."""
    if not statements:
        return (0, -1)
    first = min(s.lineno for s in statements)
    last = max(getattr(s, "end_lineno", s.lineno) for s in statements)
    return first, last
