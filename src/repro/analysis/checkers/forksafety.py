"""fork-safety: fork-hostile state must not cross a process boundary.

The multiprocessing roadmap (true wall-clock shard parallelism,
multi-tenant serving) moves engine state across process boundaries via
pickling and fork.  Two classes of bug slip through every unit test run
in one process:

* **a fork-hostile value reaches a process-boundary sink** (code
  ``fork-boundary``): a SQLite connection, open file handle, telemetry
  collector, platform/clock object, or live RNG flowing — possibly
  through several calls, attribute loads, or a bound method capturing
  ``self`` — into ``ProcessPoolExecutor.submit``, ``Process(target=...)``,
  a pool ``map``/``apply``, or ``pickle.dump(s)``.  The dataflow engine
  tracks value *kinds* interprocedurally, so a collector captured three
  calls away from the submit site is still caught.
* **a class stores unpicklable state without declaring its boundary
  behavior** (code ``fork-state``): an instance attribute holding a
  ``sqlite-conn``/``file-handle``/``process-pool`` kind in a class with
  no ``__getstate__``/``__setstate__``/``__reduce__`` makes every object
  that transitively owns one un-shippable.  The fix is the
  connection-per-process pattern: drop the handle in ``__getstate__``
  and reopen lazily (keyed on ``os.getpid()``) after the boundary.

Scope: the whole package.  Sinks are data (:data:`BOUNDARY_SINKS`); the
future shard-worker API is pre-registered so the multiprocessing refactor
starts guarded.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..diagnostics import Diagnostic
from ..flow import kinds as K
from ..flow.symbols import _dotted, module_name_for
from ..framework import Checker, LintContext, SourceModule, register

#: Callable names (post import-resolution) whose arguments cross a
#: process boundary.  Values say which argument positions matter
#: (``None`` = every argument, including keywords).
BOUNDARY_SINKS: dict[str, "tuple[int, ...] | None"] = {
    "pickle.dump": (0,),
    "pickle.dumps": (0,),
    "multiprocessing.Process": None,
    "multiprocessing.process.Process": None,
    # The shard process executor's single request-shipping call: every
    # command the coordinator sends a worker crosses a pickle boundary
    # here (see repro/shard/worker.py).
    "repro.shard.worker.submit": None,
}

#: Method names that are boundary sinks when the receiver is (or may be)
#: a process pool/executor.
POOL_SINK_METHODS = frozenset({
    "submit", "map", "imap", "imap_unordered", "starmap", "apply",
    "apply_async", "map_async", "starmap_async",
})


def _kind_list(kinds: "frozenset[str]") -> str:
    return ", ".join(sorted(kinds))


@register
class ForkSafetyChecker(Checker):
    name = "fork-safety"
    codes = ("fork-boundary", "fork-state")
    description = (
        "fork-hostile values (sqlite connections, file handles, telemetry "
        "collectors, platform state, RNGs) must not flow into process-"
        "boundary sinks, and classes owning unpicklable state must define "
        "__getstate__/__reduce__"
    )

    def check(self, module: SourceModule, context: LintContext) -> Iterator[Diagnostic]:
        flow = context.flow
        if flow is None or not module.path:
            return
        mod = flow.table.modules.get(module_name_for(module.path))
        if mod is None:
            return
        yield from self._check_sinks(module, flow, mod)
        yield from self._check_classes(module, flow, mod)

    # -- rule 1: hostile kinds into boundary sinks --------------------------

    def _check_sinks(self, module: SourceModule, flow, mod) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            sink = self._sink_positions(node, flow, mod)
            if sink is _NOT_A_SINK:
                continue
            args = list(enumerate(node.args))
            if sink is not None:
                args = [(i, a) for i, a in args if i in sink]
            exprs = [a for _, a in args] + [kw.value for kw in node.keywords]
            for expr in exprs:
                hostile = flow.kinds(expr) & K.FORK_HOSTILE
                if hostile:
                    yield self.diagnostic(
                        module, expr, "fork-boundary",
                        f"value of kind [{_kind_list(hostile)}] crosses a "
                        f"process boundary at `{_describe(node)}`; ship "
                        "plain data instead (reopen handles per-process, "
                        "merge telemetry after the join)",
                    )

    def _sink_positions(self, node: ast.Call, flow, mod):
        """Argument positions that cross a boundary, or ``_NOT_A_SINK``."""
        dotted = _dotted(node.func)
        if dotted:
            head, _, rest = dotted.partition(".")
            target = mod.imports.get(head)
            external = (target + ("." + rest if rest else "")) if target else dotted
            if external in BOUNDARY_SINKS:
                return BOUNDARY_SINKS[external]
            if dotted in BOUNDARY_SINKS:
                return BOUNDARY_SINKS[dotted]
        if isinstance(node.func, ast.Attribute):
            method = node.func.attr
            if method in POOL_SINK_METHODS:
                receiver = flow.kinds(node.func.value)
                if K.PROCESS_POOL in receiver:
                    return None  # every argument crosses
        return _NOT_A_SINK

    # -- rule 2: unpicklable state without a pickle protocol ----------------

    def _check_classes(self, module: SourceModule, flow, mod) -> Iterator[Diagnostic]:
        for cls in mod.classes.values():
            method_names = set(cls.methods)
            if method_names & {"__getstate__", "__reduce__", "__reduce_ex__"}:
                continue
            attrs = flow.class_attr_kinds(cls)
            flagged: dict[str, frozenset] = {}
            for attr, kinds in sorted(attrs.items()):
                unpicklable = kinds & K.UNPICKLABLE
                if unpicklable:
                    flagged[attr] = unpicklable
            if not flagged:
                continue
            # Anchor the diagnostic on the first store of the worst attr
            # inside __init__ when possible, else on the class line.
            anchor = self._store_site(cls, next(iter(flagged))) or cls.node
            detail = "; ".join(
                f"self.{attr} holds [{_kind_list(kinds)}]"
                for attr, kinds in flagged.items()
            )
            yield self.diagnostic(
                module, anchor, "fork-state",
                f"class `{cls.name}` stores unpicklable state ({detail}) "
                "but defines no __getstate__/__setstate__ or __reduce__; "
                "instances cannot cross a process boundary — use the "
                "connection-per-process pattern (drop the handle in "
                "__getstate__, reopen lazily keyed on os.getpid())",
            )

    @staticmethod
    def _store_site(cls, attr: str):
        init = cls.methods.get("__init__")
        search = [init.node] if init is not None else [
            m.node for m in cls.methods.values()]
        for root in search:
            for node in ast.walk(root):
                if (isinstance(node, (ast.Assign, ast.AugAssign))
                        and _targets_self_attr(node, attr)):
                    return node
        return None


class _NotASink:
    pass


_NOT_A_SINK = _NotASink()


def _targets_self_attr(stmt: ast.AST, attr: str) -> bool:
    targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]  # type: ignore[attr-defined]
    for target in targets:
        if (isinstance(target, ast.Attribute) and target.attr == attr
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            return True
    return False


def _describe(node: ast.Call) -> str:
    dotted = _dotted(node.func)
    if dotted:
        return dotted + "(...)"
    if isinstance(node.func, ast.Attribute):
        return "." + node.func.attr + "(...)"
    return "<call>"
