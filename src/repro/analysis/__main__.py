"""``python -m repro.analysis [paths...]`` — run gammalint.

Exit status 0 when the tree is clean, 1 when any diagnostic survives the
waivers, 2 on usage errors, 3 when ``--max-seconds`` is exceeded (the CI
lint job budgets the full run so the linter itself cannot rot into the
slowest gate).

``--changed [REF]`` narrows *reporting* to files touched since REF
(default ``HEAD``) while still building the project-wide symbol table and
call graph from every file under ``paths`` — interprocedural findings
stay exact, only the output is filtered.  ``--check-waivers`` adds
stale-waiver detection (module-level waivers whose code no longer fires).
"""

from __future__ import annotations

import argparse
import pathlib
import subprocess
import sys
import time
from typing import Sequence

from .framework import (
    all_checkers,
    format_human,
    format_json,
    format_sarif,
    lint_paths,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="gammalint: AST invariant checks for the GAMMA repro",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated diagnostic codes to report (default: all)",
    )
    parser.add_argument(
        "--tests-dir", default=None, metavar="DIR",
        help="equivalence-test corpus for the pipeline-parity checker "
        "(default: ./tests when it exists)",
    )
    parser.add_argument(
        "--changed", nargs="?", const="HEAD", default=None, metavar="REF",
        help="only report findings in files changed since REF (default "
        "HEAD: staged+unstaged+untracked); the call graph still spans "
        "all paths, so cross-file findings in changed files stay exact",
    )
    parser.add_argument(
        "--check-waivers", action="store_true",
        help="also flag stale waivers: module-level allow[] entries whose "
        "code no longer fires anywhere in the module",
    )
    parser.add_argument(
        "--max-seconds", type=float, default=None, metavar="S",
        help="fail (exit 3) if the whole run takes longer than S seconds; "
        "elapsed time is always printed to stderr when set",
    )
    parser.add_argument(
        "--list-checkers", action="store_true",
        help="print the registered checkers and their codes, then exit",
    )
    return parser


def _changed_files(ref: str) -> "set[str] | None":
    """Absolute paths of ``*.py`` files changed since ``ref``.

    Union of ``git diff REF`` (staged + unstaged since the ref) and
    untracked files.  Returns ``None`` — meaning "no filtering" — when
    git is unavailable or the ref does not resolve, so ``--changed``
    degrades to a full run rather than silently linting nothing.
    """
    try:
        diff = subprocess.run(
            ["git", "diff", "--name-only", "--diff-filter=d", ref],
            capture_output=True, text=True, check=True)
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            capture_output=True, text=True, check=True)
    except (OSError, subprocess.CalledProcessError) as exc:
        print(f"warning: --changed {ref}: {exc}; linting everything",
              file=sys.stderr)
        return None
    names = diff.stdout.splitlines() + untracked.stdout.splitlines()
    return {
        str(pathlib.Path(name).resolve())
        for name in names if name.endswith(".py")
    }


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_checkers:
        for checker in all_checkers():
            codes = ", ".join(checker.codes)
            print(f"{checker.name} [{codes}]\n    {checker.description}")
        return 0
    started = time.perf_counter()
    paths = [pathlib.Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path: {', '.join(map(str, missing))}",
              file=sys.stderr)
        return 2
    if args.tests_dir is not None:
        tests_dir = pathlib.Path(args.tests_dir)
    else:
        default = pathlib.Path("tests")
        tests_dir = default if default.is_dir() else None
    select = None
    if args.select:
        select = [c.strip() for c in args.select.split(",") if c.strip()]
    only_files = None
    if args.changed is not None:
        only_files = _changed_files(args.changed)
        if only_files is not None and not only_files:
            print("gammalint: no python files changed", file=sys.stderr)
    diagnostics = lint_paths(
        paths, tests_dir=tests_dir, select=select,
        check_waivers=args.check_waivers, only_files=only_files)
    if args.format == "json":
        print(format_json(diagnostics))
    elif args.format == "sarif":
        print(format_sarif(diagnostics))
    elif diagnostics:
        print(format_human(diagnostics))
    else:
        print("gammalint: clean")
    status = 1 if diagnostics else 0
    if args.max_seconds is not None:
        elapsed = time.perf_counter() - started
        print(f"gammalint: {elapsed:.2f}s (budget {args.max_seconds:.0f}s)",
              file=sys.stderr)
        if elapsed > args.max_seconds:
            print(f"gammalint: TOO SLOW — {elapsed:.2f}s exceeds the "
                  f"{args.max_seconds:.0f}s budget", file=sys.stderr)
            return 3
    return status


if __name__ == "__main__":
    sys.exit(main())
