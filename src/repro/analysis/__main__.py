"""``python -m repro.analysis [paths...]`` — run gammalint.

Exit status 0 when the tree is clean, 1 when any diagnostic survives the
waivers, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Sequence

from .framework import all_checkers, format_human, format_json, lint_paths


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="gammalint: AST invariant checks for the GAMMA repro",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated diagnostic codes to report (default: all)",
    )
    parser.add_argument(
        "--tests-dir", default=None, metavar="DIR",
        help="equivalence-test corpus for the pipeline-parity checker "
        "(default: ./tests when it exists)",
    )
    parser.add_argument(
        "--list-checkers", action="store_true",
        help="print the registered checkers and their codes, then exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_checkers:
        for checker in all_checkers():
            codes = ", ".join(checker.codes)
            print(f"{checker.name} [{codes}]\n    {checker.description}")
        return 0
    paths = [pathlib.Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path: {', '.join(map(str, missing))}",
              file=sys.stderr)
        return 2
    if args.tests_dir is not None:
        tests_dir = pathlib.Path(args.tests_dir)
    else:
        default = pathlib.Path("tests")
        tests_dir = default if default.is_dir() else None
    select = None
    if args.select:
        select = [c.strip() for c in args.select.split(",") if c.strip()]
    diagnostics = lint_paths(paths, tests_dir=tests_dir, select=select)
    if args.format == "json":
        print(format_json(diagnostics))
    elif diagnostics:
        print(format_human(diagnostics))
    else:
        print("gammalint: clean")
    return 1 if diagnostics else 0


if __name__ == "__main__":
    sys.exit(main())
