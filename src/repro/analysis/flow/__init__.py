"""Interprocedural dataflow for gammalint: symbols, calls, value kinds.

The line-local checkers in :mod:`repro.analysis.checkers` see one AST at
a time; the checkers that guard *process* boundaries (fork safety,
determinism, transitive warp races) need to know what a value **is** and
where it **goes** across functions.  This package provides that:

* :mod:`~repro.analysis.flow.symbols` — project-wide symbol table
  (modules, classes, methods, imports, aliases);
* :mod:`~repro.analysis.flow.callgraph` — call-site resolution
  (``self.method``, module attributes, locally typed receivers, a
  unique-name fallback) with measured resolution stats;
* :mod:`~repro.analysis.flow.kinds` — the value-kind lattice
  (``sqlite-conn``, ``file-handle``, ``unordered-collection``, ...);
* :mod:`~repro.analysis.flow.engine` — the forward dataflow fixpoint
  producing per-expression kind sets, per-class attribute kinds and
  function summaries.

The framework builds one :class:`FlowProject` per lint run and hands it
to every checker via ``LintContext.flow``; see docs/LINTING.md for the
checker-author guide and the engine's known resolution limits.
"""

from .callgraph import CallGraph, CallSite
from .engine import FlowProject, FunctionSummary, build_project
from .kinds import (
    ALL_KINDS,
    FLOAT_ACC,
    FILE_HANDLE,
    FORK_HOSTILE,
    PLATFORM_STATE,
    PROCESS_POOL,
    RNG,
    SQLITE_CONN,
    TELEMETRY,
    UNORDERED,
    UNPICKLABLE,
    KindSet,
)
from .symbols import ClassInfo, FunctionInfo, ModuleInfo, SymbolTable

__all__ = [
    "ALL_KINDS",
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FLOAT_ACC",
    "FILE_HANDLE",
    "FORK_HOSTILE",
    "FlowProject",
    "FunctionInfo",
    "FunctionSummary",
    "KindSet",
    "ModuleInfo",
    "PLATFORM_STATE",
    "PROCESS_POOL",
    "RNG",
    "SQLITE_CONN",
    "SymbolTable",
    "TELEMETRY",
    "UNORDERED",
    "UNPICKLABLE",
    "build_project",
]
