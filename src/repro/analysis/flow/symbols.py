"""Project-wide symbol table for the dataflow engine.

One :class:`SymbolTable` indexes every module handed to a lint run:
module-level functions, classes and their methods, import bindings
(``import numpy as np`` / ``from .plan import CompiledPlan``) and
module-level aliases (``partition = shard_policy.partition``).  Qualified
names follow the ``pkg.mod:Class.method`` convention so a name is globally
unique and still splits cleanly into its module and in-module parts.

The table is purely syntactic — no imports are executed.  Module dotted
names derive from each file's ``repro/...`` path suffix, matching the
scope rules in :mod:`repro.analysis.framework`, so fixture files that
*pretend* to live in the package resolve exactly like real ones.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


def module_name_for(path: str) -> str:
    """Dotted module name for ``path`` (``repro/...`` suffix preferred)."""
    posix = pathlib.PurePath(path).as_posix()
    idx = posix.rfind("repro/")
    rel = posix[idx:] if idx >= 0 else posix.rsplit("/", 1)[-1]
    rel = rel[:-3] if rel.endswith(".py") else rel
    parts = [p for p in rel.split("/") if p]
    if parts and parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str            #: ``pkg.mod:name`` or ``pkg.mod:Class.name``
    module: "ModuleInfo"
    node: ast.AST            #: FunctionDef | AsyncFunctionDef
    cls: "ClassInfo | None" = None

    @property
    def name(self) -> str:
        return self.node.name  # type: ignore[attr-defined]

    @property
    def is_method(self) -> bool:
        return self.cls is not None

    def param_names(self) -> List[str]:
        args = self.node.args  # type: ignore[attr-defined]
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names


@dataclass
class ClassInfo:
    """One class definition with its methods and (resolved) project bases."""

    qualname: str
    module: "ModuleInfo"
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: Base-class expressions as dotted strings (resolved lazily).
    base_names: List[str] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.node.name

    def method(self, name: str, table: "SymbolTable") -> Optional[FunctionInfo]:
        """Look ``name`` up on this class, then project base classes."""
        seen: set[str] = set()
        stack: List[ClassInfo] = [self]
        while stack:
            cls = stack.pop(0)
            if cls.qualname in seen:
                continue
            seen.add(cls.qualname)
            if name in cls.methods:
                return cls.methods[name]
            for base in cls.base_names:
                resolved = cls.module.resolve_name(base, table)
                if isinstance(resolved, ClassInfo):
                    stack.append(resolved)
        return None


@dataclass
class ModuleInfo:
    """One parsed module: its definitions and import bindings."""

    name: str                #: dotted (``repro.plan.cache``)
    path: str
    node: ast.Module
    is_package: bool = False  #: True for ``__init__.py`` files
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: local name -> dotted target: ``np`` -> ``numpy``,
    #: ``CompiledPlan`` -> ``repro.plan.plan.CompiledPlan``.
    imports: Dict[str, str] = field(default_factory=dict)
    #: module-level ``alias = <dotted name>`` assignments.
    aliases: Dict[str, str] = field(default_factory=dict)

    def resolve_name(self, dotted: str, table: "SymbolTable"):
        """Resolve a dotted name used in this module to a table entry.

        Returns a :class:`FunctionInfo`, :class:`ClassInfo`,
        :class:`ModuleInfo`, an external dotted string (resolved through
        imports but not project-defined), or ``None`` when the head name
        is unknown.
        """
        head, _, rest = dotted.partition(".")
        target: str | None = None
        if head in self.classes:
            base: object = self.classes[head]
        elif head in self.functions:
            base = self.functions[head]
        elif head in self.imports:
            target = self.imports[head]
            base = None
        elif head in self.aliases:
            return self.resolve_name(
                self.aliases[head] + (("." + rest) if rest else ""), table)
        else:
            return None
        if target is not None:
            full = target + (("." + rest) if rest else "")
            entry = table.lookup(full)
            return entry if entry is not None else full
        # head resolved to a local definition; descend into classes.
        while rest and isinstance(base, ClassInfo):
            head, _, rest = rest.partition(".")
            base = base.methods.get(head)
        return base if not rest else None


class SymbolTable:
    """Every module of one lint run, indexed for resolution."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        #: bare function/method name -> every FunctionInfo bearing it.
        self.by_name: Dict[str, List[FunctionInfo]] = {}

    # -- construction -------------------------------------------------------

    def add_module(self, path: str, tree: ast.Module) -> ModuleInfo:
        mod = ModuleInfo(
            name=module_name_for(path), path=path, node=tree,
            is_package=pathlib.PurePath(path).name == "__init__.py",
        )
        self._collect_imports(mod)
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(mod, stmt, cls=None)
            elif isinstance(stmt, ast.ClassDef):
                self._add_class(mod, stmt)
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
                dotted = _dotted(value)
                if isinstance(target, ast.Name) and dotted:
                    mod.aliases[target.id] = dotted
        self.modules[mod.name] = mod
        return mod

    def _collect_imports(self, mod: ModuleInfo) -> None:
        package = mod.name.rsplit(".", 1)[0] if "." in mod.name else ""
        for stmt in ast.walk(mod.node):
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    local = alias.asname or alias.name.partition(".")[0]
                    target = alias.name if alias.asname else alias.name.partition(".")[0]
                    mod.imports[local] = target
            elif isinstance(stmt, ast.ImportFrom):
                base = stmt.module or ""
                if stmt.level:
                    # Relative import: climb from the module's package
                    # (a package __init__ is one level closer to itself).
                    parts = mod.name.split(".")
                    keep = len(parts) - stmt.level + (1 if mod.is_package else 0)
                    parts = parts[:max(keep, 0)]
                    base = ".".join(parts + ([stmt.module] if stmt.module else []))
                elif not base:
                    base = package
                for alias in stmt.names:
                    local = alias.asname or alias.name
                    mod.imports[local] = f"{base}.{alias.name}" if base else alias.name

    def _add_function(self, mod: ModuleInfo, node: ast.AST,
                      cls: Optional[ClassInfo]) -> FunctionInfo:
        name = node.name  # type: ignore[attr-defined]
        if cls is None:
            qual = f"{mod.name}:{name}"
        else:
            qual = f"{mod.name}:{cls.name}.{name}"
        info = FunctionInfo(qualname=qual, module=mod, node=node, cls=cls)
        if cls is None:
            mod.functions[name] = info
        else:
            cls.methods[name] = info
        self.by_name.setdefault(name, []).append(info)
        return info

    def _add_class(self, mod: ModuleInfo, node: ast.ClassDef) -> None:
        cls = ClassInfo(
            qualname=f"{mod.name}:{node.name}", module=mod, node=node,
            base_names=[d for b in node.bases if (d := _dotted(b))],
        )
        mod.classes[node.name] = cls
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(mod, stmt, cls=cls)

    # -- lookup -------------------------------------------------------------

    def lookup(self, dotted: str):
        """Resolve an absolute dotted name to a module/class/function.

        Accepts plain dots (``repro.plan.cache.PlanCache.get``); tries the
        longest module prefix first.
        """
        if ":" in dotted:
            modpart, _, sym = dotted.partition(":")
            mod = self.modules.get(modpart)
            if mod is None:
                return None
            head, _, rest = sym.partition(".")
            entry = mod.classes.get(head) or mod.functions.get(head)
            if rest and isinstance(entry, ClassInfo):
                return entry.methods.get(rest)
            return entry
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            mod = self.modules.get(".".join(parts[:cut]))
            if mod is None:
                continue
            rest = parts[cut:]
            if not rest:
                return mod
            entry: object = mod.classes.get(rest[0]) or mod.functions.get(rest[0])
            if entry is None and rest[0] in mod.imports:
                chased = mod.imports[rest[0]] + (
                    "." + ".".join(rest[1:]) if len(rest) > 1 else "")
                return self.lookup(chased)
            for name in rest[1:]:
                if isinstance(entry, ClassInfo):
                    entry = entry.methods.get(name)
                else:
                    return None
            return entry
        return None

    def functions(self) -> Iterator[FunctionInfo]:
        for mod in self.modules.values():
            yield from mod.functions.values()
            for cls in mod.classes.values():
                yield from cls.methods.values()


def _dotted(node: ast.AST) -> str:
    """``a.b.c`` as a string when ``node`` is a pure attribute chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""
