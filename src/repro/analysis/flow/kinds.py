"""The value-kind lattice: what a value *is* for safety purposes.

gammalint's interprocedural checkers do not track types — they track
*kinds*: coarse safety-relevant facts like "this value is (or contains) a
SQLite connection" or "iterating this value visits elements in an
arbitrary order".  A value's abstract state is a frozen set of kind
strings; the lattice is the powerset with union as join, so merging two
branches simply unions what either branch may have produced.

Kinds enter the dataflow at *sources* (constructor calls, set literals,
``os.listdir``), propagate through assignments, attributes, returns and
resolved project calls (:mod:`repro.analysis.flow.engine`), and leave at
*sanitizers* (``sorted`` strips ``unordered-collection``; a class defining
``__getstate__`` launders its pickle-hostile state).  Checkers then ask
for the kinds of the expression at a sink site.

Registering a new kind is data, not code: add the constant, list its
sources in :data:`CALL_KINDS` / :data:`CLASS_KINDS`, and (if a checker
should act on it) add it to that checker's sink table.  docs/LINTING.md
walks through the full recipe.
"""

from __future__ import annotations

from typing import FrozenSet

KindSet = FrozenSet[str]

EMPTY: KindSet = frozenset()

# ---------------------------------------------------------------------------
# The kind vocabulary
# ---------------------------------------------------------------------------

#: An open ``sqlite3`` connection (fork- and pickle-hostile).
SQLITE_CONN = "sqlite-conn"
#: An open OS-level file object (pickle-hostile; offsets diverge on fork).
FILE_HANDLE = "file-handle"
#: A seeded random generator whose stream forks would duplicate.
RNG = "rng"
#: A telemetry collector/registry (process-local span state).
TELEMETRY = "telemetry-collector"
#: Simulator platform state: clocks, kernels, pools — shared by reference.
PLATFORM_STATE = "shared-platform-state"
#: A collection whose iteration order is arbitrary (set, listdir, glob).
UNORDERED = "unordered-collection"
#: A float-valued accumulator mapping (clock buckets, phase seconds):
#: summing its values with builtin ``sum`` is insertion-order dependent.
FLOAT_ACC = "float-accumulator"
#: A process pool / executor handle (its submit methods are fork sinks).
PROCESS_POOL = "process-pool"

ALL_KINDS = (
    SQLITE_CONN, FILE_HANDLE, RNG, TELEMETRY, PLATFORM_STATE,
    UNORDERED, FLOAT_ACC, PROCESS_POOL,
)

#: Kinds the pickle machinery cannot serialize at all — storing one on an
#: instance without ``__getstate__``/``__reduce__`` makes the whole object
#: un-shippable across a process boundary.
UNPICKLABLE = frozenset({SQLITE_CONN, FILE_HANDLE, PROCESS_POOL})

#: Kinds that must not silently cross a process boundary: the unpicklable
#: ones plus state that *technically* pickles but forks into divergent
#: copies (collectors keep collecting locally, platform clocks drift,
#: RNG streams duplicate).
FORK_HOSTILE = UNPICKLABLE | frozenset({TELEMETRY, PLATFORM_STATE, RNG})

# ---------------------------------------------------------------------------
# Sources: dotted callee name -> kinds the call's result carries.
# Callee names are matched after import resolution ("np.random.default_rng"
# resolves to "numpy.random.default_rng" when numpy was imported as np).
# ---------------------------------------------------------------------------

CALL_KINDS: dict[str, KindSet] = {
    "sqlite3.connect": frozenset({SQLITE_CONN}),
    "open": frozenset({FILE_HANDLE}),
    "io.open": frozenset({FILE_HANDLE}),
    "os.fdopen": frozenset({FILE_HANDLE}),
    "gzip.open": frozenset({FILE_HANDLE}),
    "tempfile.TemporaryFile": frozenset({FILE_HANDLE}),
    "tempfile.NamedTemporaryFile": frozenset({FILE_HANDLE}),
    "random.Random": frozenset({RNG}),
    "random.SystemRandom": frozenset({RNG}),
    "numpy.random.default_rng": frozenset({RNG}),
    "numpy.random.RandomState": frozenset({RNG}),
    "set": frozenset({UNORDERED}),
    "frozenset": frozenset({UNORDERED}),
    "os.listdir": frozenset({UNORDERED}),
    "os.scandir": frozenset({UNORDERED}),
    "glob.glob": frozenset({UNORDERED}),
    "glob.iglob": frozenset({UNORDERED}),
    "collections.defaultdict": EMPTY,  # refined below via the float arg
    "concurrent.futures.ProcessPoolExecutor": frozenset({PROCESS_POOL}),
    "multiprocessing.Pool": frozenset({PROCESS_POOL}),
    "multiprocessing.pool.Pool": frozenset({PROCESS_POOL}),
}

#: Method names (receiver-agnostic) whose *result* is unordered no matter
#: what we know about the receiver: pathlib traversal never promises an
#: order, and set algebra stays a set.
UNORDERED_METHODS = frozenset({"iterdir", "glob", "rglob", "scandir"})

#: Set-algebra methods: unordered in, unordered out (receiver-sensitive).
SET_ALGEBRA_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference", "copy",
})

#: Project classes that *are* a kind, matched by bare class name so the
#: mapping survives import-path refactors.  (A class whose __init__ stores
#: a kinded value on self also picks the kind up automatically through the
#: class-summary fixpoint; this table covers the roots.)
CLASS_KINDS: dict[str, KindSet] = {
    "SpanCollector": frozenset({TELEMETRY}),
    "MetricsRegistry": frozenset({TELEMETRY}),
    "SimClock": frozenset({PLATFORM_STATE}),
    "GpuPlatform": frozenset({PLATFORM_STATE}),
    "Gamma": frozenset({PLATFORM_STATE}),
    "ShardedGamma": frozenset({PLATFORM_STATE}),
    "Interconnect": frozenset({PLATFORM_STATE}),
}

#: Calls that *consume* their argument order-insensitively — reading an
#: unordered collection through them is deterministic, so the result
#: carries no kinds.  Builtin ``sum`` is included only for the
#: ``unordered-collection`` rule (integer sums commute exactly); summing a
#: ``float-accumulator``'s values is still order-sensitive and is caught
#: separately by the determinism checker's ``det-float`` rule.
ORDER_INSENSITIVE_CONSUMERS = frozenset({
    "len", "min", "max", "any", "all", "math.fsum", "sum",
})

#: Calls that return their argument with ``unordered-collection`` removed.
ORDER_SANITIZERS = frozenset({"sorted"})

#: Calls that preserve their argument's kinds unchanged (containers keep
#: arbitrary order when built from an unordered source).
KIND_PRESERVING = frozenset({"list", "tuple", "iter", "reversed", "enumerate"})


def join(*sets: KindSet) -> KindSet:
    """Lattice join: the union of every kind either operand may carry."""
    out: set[str] = set()
    for kinds in sets:
        out |= kinds
    return frozenset(out)
