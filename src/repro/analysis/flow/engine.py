"""Forward dataflow over value kinds, with function summaries.

:class:`FlowProject` is what checkers see: build it once per lint run
(:func:`build_project`) and ask

* ``project.kinds(expr_node)`` — the kind set of any analyzed expression;
* ``project.class_kinds(cls_qualname)`` — what instances of a class carry
  (declared kinds plus everything any method stores on ``self``);
* ``project.transitive_shared_writes(qualname)`` — shared simulator-state
  writes reachable through the call graph, with a witness path;
* ``project.graph`` / ``project.table`` — call-graph and symbol queries.

The analysis is a per-function forward pass: expressions evaluate to
kind sets (:mod:`repro.analysis.flow.kinds`), assignments bind them,
attribute stores feed per-class attribute maps, returns feed function
summaries, and resolved project calls substitute the callee's summary.
Function summaries and class attribute maps reach a fixpoint in a few
whole-project passes (kind sets only grow, the vocabulary is finite, so
termination is structural).  Loop bodies are analyzed twice so kinds
bound late in an iteration reach uses earlier in the next one.

Known resolution limits (documented in docs/LINTING.md): containers of
kinded values lose element precision (a list of connections is itself
``sqlite-conn``-kinded; index 0 vs 1 is not distinguished), receivers
typed only at runtime resolve through the unique-method-name fallback or
not at all, and ``**kwargs`` forwarding drops kinds.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from . import kinds as K
from .callgraph import CallGraph
from .symbols import ClassInfo, FunctionInfo, ModuleInfo, SymbolTable, _dotted

#: Shared-simulator-state mutators (mirrors the warp-race checker's table).
SHARED_CALLS = {
    "clock": {"advance"},
    "counters": {"add"},
    "kernel": {"launch"},
    "cpu": {"work"},
    "pcie": {"migrate_pages", "explicit_copy", "zerocopy_transactions"},
}

RESOLUTION_CALLS = frozenset({"warp_exclusive_scan", "warp_ballot"})

#: Fixpoint bound: kind sets only grow and the vocabulary is small, so
#: summaries stabilize in 2-3 passes; 5 is a safety margin.
_MAX_PASSES = 5


@dataclass
class FunctionSummary:
    """What a function does, as seen from its callers."""

    returns: K.KindSet = K.EMPTY
    #: ``(description, lineno)`` of direct shared-state writes.
    shared_writes: List[Tuple[str, int]] = field(default_factory=list)
    #: body calls warp_exclusive_scan/warp_ballot (resolves its writes).
    has_resolution: bool = False


class FlowProject:
    """Symbol table + call graph + kind facts for one lint run."""

    def __init__(self, table: SymbolTable, graph: CallGraph) -> None:
        self.table = table
        self.graph = graph
        self.summaries: Dict[str, FunctionSummary] = {}
        self._class_attrs: Dict[str, Dict[str, K.KindSet]] = {}
        self._node_kinds: Dict[int, K.KindSet] = {}
        self._transitive_cache: Dict[str, "list | None"] = {}
        self._run_fixpoint()

    # -- checker-facing queries ---------------------------------------------

    def kinds(self, node: ast.AST) -> K.KindSet:
        """Kind set of an analyzed expression node (empty if unknown)."""
        return self._node_kinds.get(id(node), K.EMPTY)

    def class_kinds(self, cls: ClassInfo) -> K.KindSet:
        """Kinds an instance of ``cls`` carries (declared + stored)."""
        declared = K.CLASS_KINDS.get(cls.name, K.EMPTY)
        stored = K.join(*self._class_attrs.get(cls.qualname, {}).values()) \
            if self._class_attrs.get(cls.qualname) else K.EMPTY
        return K.join(declared, stored)

    def class_attr_kinds(self, cls: ClassInfo) -> Dict[str, K.KindSet]:
        return dict(self._class_attrs.get(cls.qualname, {}))

    def summary(self, qualname: str) -> FunctionSummary:
        return self.summaries.get(qualname, FunctionSummary())

    def transitive_shared_writes(
        self, qualname: str, _depth: int = 6
    ) -> "list[Tuple[List[str], str]] | None":
        """Shared writes reachable from ``qualname``: ``(path, desc)``.

        The path starts at ``qualname``'s callee chain and ends at the
        function performing the write.  Functions that call a warp
        conflict-resolution primitive are treated as safe subtrees.
        """
        cached = self._transitive_cache.get(qualname)
        if cached is not None or qualname in self._transitive_cache:
            return cached
        out = self._transitive(qualname, _depth, frozenset())
        self._transitive_cache[qualname] = out
        return out

    def _transitive(self, qualname: str, depth: int, seen: frozenset):
        if depth <= 0 or qualname in seen:
            return []
        summary = self.summaries.get(qualname)
        if summary is None or summary.has_resolution:
            return []
        found = [([qualname], desc) for desc, _ in summary.shared_writes]
        for callee in sorted(self.graph.callees(qualname)):
            for path, desc in self._transitive(
                    callee, depth - 1, seen | {qualname}):
                found.append(([qualname] + path, desc))
        return found

    # -- fixpoint driver ----------------------------------------------------

    def _run_fixpoint(self) -> None:
        functions = list(self.table.functions())
        # Seed structural summaries (shared writes / resolution calls are
        # flow-insensitive facts; one scan suffices).
        for func in functions:
            self.summaries[func.qualname] = FunctionSummary(
                shared_writes=_direct_shared_writes(func.node),
                has_resolution=_has_resolution(func.node),
            )
        for _ in range(_MAX_PASSES):
            changed = False
            self._node_kinds.clear()
            for func in functions:
                analyzer = _FunctionAnalyzer(self, func)
                returns = analyzer.run()
                summary = self.summaries[func.qualname]
                if returns != summary.returns:
                    summary.returns = K.join(summary.returns, returns)
                    changed = True
            if not changed:
                break

    def _store_class_attr(self, cls: ClassInfo, attr: str,
                          kinds: K.KindSet) -> None:
        attrs = self._class_attrs.setdefault(cls.qualname, {})
        attrs[attr] = K.join(attrs.get(attr, K.EMPTY), kinds)


# ---------------------------------------------------------------------------
# Per-function forward pass
# ---------------------------------------------------------------------------


class _FunctionAnalyzer:
    """Evaluates one function body, annotating expression kind sets."""

    def __init__(self, project: FlowProject, func: FunctionInfo) -> None:
        self.project = project
        self.func = func
        self.mod: ModuleInfo = func.module
        self.env: Dict[str, K.KindSet] = {}
        self.returns: K.KindSet = K.EMPTY

    def run(self) -> K.KindSet:
        node = self.func.node
        for stmt in node.body:  # type: ignore[attr-defined]
            self.exec_stmt(stmt)
        return self.returns

    # -- statements ---------------------------------------------------------

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            kinds = self.eval(stmt.value)
            for target in stmt.targets:
                self.bind(target, kinds)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self.bind(stmt.target, self.eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            kinds = self.eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = K.join(
                    self.env.get(stmt.target.id, K.EMPTY), kinds)
            else:
                self.bind(stmt.target, kinds, augment=True)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.returns = K.join(self.returns, self.eval(stmt.value))
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_kinds = self.eval(stmt.iter)
            self.bind(stmt.target, _element_kinds(iter_kinds))
            for _ in range(2):  # loop-carried bindings need a second pass
                for inner in stmt.body:
                    self.exec_stmt(inner)
            for inner in stmt.orelse:
                self.exec_stmt(inner)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            for _ in range(2):
                for inner in stmt.body:
                    self.exec_stmt(inner)
            for inner in stmt.orelse:
                self.exec_stmt(inner)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test)
            for inner in stmt.body + stmt.orelse:
                self.exec_stmt(inner)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                kinds = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self.bind(item.optional_vars, kinds)
            for inner in stmt.body:
                self.exec_stmt(inner)
        elif isinstance(stmt, ast.Try):
            for inner in stmt.body:
                self.exec_stmt(inner)
            for handler in stmt.handlers:
                for inner in handler.body:
                    self.exec_stmt(inner)
            for inner in stmt.orelse + stmt.finalbody:
                self.exec_stmt(inner)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested function: analyze with the closure environment so
            # captured kinds (e.g. a collector) stay visible.
            saved = dict(self.env)
            for inner in stmt.body:
                self.exec_stmt(inner)
            self.env = saved
        elif isinstance(stmt, (ast.Delete, ast.Pass, ast.Break, ast.Continue,
                               ast.Import, ast.ImportFrom, ast.Global,
                               ast.Nonlocal, ast.ClassDef, ast.Raise,
                               ast.Assert)):
            if isinstance(stmt, ast.Assert):
                self.eval(stmt.test)
            elif isinstance(stmt, ast.Raise) and stmt.exc is not None:
                self.eval(stmt.exc)

    def bind(self, target: ast.AST, kinds: K.KindSet,
             augment: bool = False) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = kinds if not augment else K.join(
                self.env.get(target.id, K.EMPTY), kinds)
        elif isinstance(target, (ast.Tuple, ast.List)):
            element = _element_kinds(kinds)
            for sub in target.elts:
                self.bind(sub, element)
        elif isinstance(target, ast.Starred):
            self.bind(target.value, kinds)
        elif (isinstance(target, ast.Attribute)
              and isinstance(target.value, ast.Name)
              and target.value.id == "self"
              and self.func.is_method):
            self.project._store_class_attr(self.func.cls, target.attr, kinds)

    # -- expressions --------------------------------------------------------

    def eval(self, node: ast.AST) -> K.KindSet:
        kinds = self._eval(node)
        if kinds:
            self.project._node_kinds[id(node)] = kinds
        return kinds

    def _eval(self, node: ast.AST) -> K.KindSet:
        if isinstance(node, ast.Name):
            return self.env.get(node.id, self._module_level_kinds(node.id))
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Set):
            for elt in node.elts:
                self.eval(elt)
            return frozenset({K.UNORDERED})
        if isinstance(node, ast.SetComp):
            self._eval_comprehension(node)
            return frozenset({K.UNORDERED})
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            return self._eval_comprehension(node)
        if isinstance(node, ast.DictComp):
            return self._eval_comprehension(node)
        if isinstance(node, (ast.List, ast.Tuple)):
            return K.join(*(self.eval(e) for e in node.elts)) \
                if node.elts else K.EMPTY
        if isinstance(node, ast.Dict):
            kinds = K.join(*(self.eval(v) for v in node.values
                             if v is not None)) if node.values else K.EMPTY
            if any(isinstance(v, ast.Constant) and isinstance(v.value, float)
                   for v in node.values if v is not None):
                kinds = K.join(kinds, frozenset({K.FLOAT_ACC}))
            return kinds
        if isinstance(node, ast.BinOp):
            return K.join(self.eval(node.left), self.eval(node.right))
        if isinstance(node, ast.BoolOp):
            return K.join(*(self.eval(v) for v in node.values))
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return K.join(self.eval(node.body), self.eval(node.orelse))
        if isinstance(node, ast.Subscript):
            self.eval(node.slice)
            return _element_kinds(self.eval(node.value))
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, ast.Await):
            return self.eval(node.value)
        if isinstance(node, ast.NamedExpr):
            kinds = self.eval(node.value)
            self.bind(node.target, kinds)
            return kinds
        if isinstance(node, (ast.Compare, ast.UnaryOp, ast.Lambda,
                             ast.Constant, ast.JoinedStr, ast.FormattedValue,
                             ast.Slice)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.eval(child)
            return K.EMPTY
        return K.EMPTY

    def _eval_comprehension(self, node: ast.AST) -> K.KindSet:
        element = K.EMPTY
        for comp in node.generators:  # type: ignore[attr-defined]
            iter_kinds = self.eval(comp.iter)
            self.bind(comp.target, _element_kinds(iter_kinds))
            element = K.join(element, iter_kinds & frozenset({K.UNORDERED}))
            for cond in comp.ifs:
                self.eval(cond)
        if isinstance(node, ast.DictComp):
            self.eval(node.key)
            value = self.eval(node.value)
            return K.join(element - frozenset({K.UNORDERED}), value)
        body = self.eval(node.elt)  # type: ignore[attr-defined]
        # A list/generator built by iterating an unordered source is
        # itself in arbitrary order.
        return K.join(element, body)

    def _module_level_kinds(self, name: str) -> K.KindSet:
        """Kinds of a module-level alias (``_RNG = random.Random(0)``)."""
        alias = self.mod.aliases.get(name)
        if alias is None:
            return K.EMPTY
        return K.CALL_KINDS.get(self._externalize(alias), K.EMPTY)

    def _externalize(self, dotted: str) -> str:
        """Swap the head of ``dotted`` for its imported target."""
        head, _, rest = dotted.partition(".")
        target = self.mod.imports.get(head)
        if target is None:
            return dotted
        return target + ("." + rest if rest else "")

    def _eval_call(self, node: ast.Call) -> K.KindSet:
        for kw in node.keywords:
            self.eval(kw.value)
        arg_kinds = [self.eval(a) for a in node.args]
        dotted = _dotted(node.func)
        external = self._externalize(dotted) if dotted else ""
        bare = dotted.rpartition(".")[2] if dotted else ""
        # defaultdict(float) — the canonical float-accumulator source.
        if (external.rpartition(".")[2] == "defaultdict" and node.args
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id == "float"):
            return frozenset({K.FLOAT_ACC})
        if dotted in K.ORDER_SANITIZERS or bare in K.ORDER_SANITIZERS:
            first = arg_kinds[0] if arg_kinds else K.EMPTY
            return first - frozenset({K.UNORDERED})
        if dotted in K.KIND_PRESERVING and arg_kinds:
            return arg_kinds[0]
        if (dotted in K.ORDER_INSENSITIVE_CONSUMERS
                or external in K.ORDER_INSENSITIVE_CONSUMERS):
            return K.EMPTY
        source = K.CALL_KINDS.get(external) or K.CALL_KINDS.get(dotted)
        if source:
            return source
        # Project call: class constructor or function summary.
        entry = self.mod.resolve_name(dotted, self.project.table) \
            if dotted else None
        if isinstance(entry, ClassInfo):
            return self.project.class_kinds(entry)
        target = self.project.graph.resolve_site(node)
        if target is not None:
            if target.name == "__init__" and target.cls is not None:
                return self.project.class_kinds(target.cls)
            return self.project.summary(target.qualname).returns
        # Method call on a kinded receiver.
        if isinstance(node.func, ast.Attribute):
            receiver = self.eval(node.func.value)
            method = node.func.attr
            if method in K.UNORDERED_METHODS:
                return frozenset({K.UNORDERED})
            if method in K.SET_ALGEBRA_METHODS and K.UNORDERED in receiver:
                return frozenset({K.UNORDERED})
            if method in ("values", "items") and K.FLOAT_ACC in receiver:
                return frozenset({K.FLOAT_ACC})
            # An opaque method on a fork-hostile object likely hands back
            # a dependent resource (a cursor, a span handle).
            hostile = receiver & K.FORK_HOSTILE
            if hostile and method not in ("close", "join"):
                return hostile
        return K.EMPTY

    def _eval_attribute(self, node: ast.Attribute) -> K.KindSet:
        base = node.value
        # self.attr — per-class attribute map (plus declared class kinds
        # for bound methods, handled below).
        if (isinstance(base, ast.Name) and base.id == "self"
                and self.func.is_method):
            attrs = self.project.class_attr_kinds(self.func.cls)
            found = attrs.get(node.attr)
            if found is not None:
                return found
            if self.func.cls.method(node.attr, self.project.table) is not None:
                # Bound method: carries everything the instance carries.
                return self.project.class_kinds(self.func.cls)
            return K.EMPTY
        receiver = self.eval(base)
        if receiver:
            # Attribute of a typed receiver: prefer its attr map.
            cls = self._receiver_class(base)
            if cls is not None:
                attrs = self.project.class_attr_kinds(cls)
                if node.attr in attrs:
                    return attrs[node.attr]
                if cls.method(node.attr, self.project.table) is not None:
                    return self.project.class_kinds(cls)
            return receiver & (K.FORK_HOSTILE | frozenset({K.FLOAT_ACC}))
        return K.EMPTY

    def _receiver_class(self, base: ast.AST) -> Optional[ClassInfo]:
        dotted = _dotted(base)
        if not dotted:
            return None
        entry = self.mod.resolve_name(dotted, self.project.table)
        return entry if isinstance(entry, ClassInfo) else None


# ---------------------------------------------------------------------------
# Structural summaries (shared writes) + project construction
# ---------------------------------------------------------------------------


def _owner_chain(node: ast.AST) -> List[str]:
    names: List[str] = []
    while isinstance(node, ast.Attribute):
        names.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        names.append(node.id)
    return names


def shared_call_description(node: ast.AST) -> Optional[str]:
    """``owner.method`` when ``node`` calls a shared-state mutator."""
    if not (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)):
        return None
    chain = _owner_chain(node.func)
    method, owners = chain[0], chain[1:]
    for owner, methods in SHARED_CALLS.items():
        if method in methods and owner in owners:
            return f"{owner}.{method}"
    return None


def _direct_shared_writes(func_node: ast.AST) -> List[Tuple[str, int]]:
    out: List[Tuple[str, int]] = []
    for node in ast.walk(func_node):
        desc = shared_call_description(node)
        if desc is not None:
            out.append((desc, getattr(node, "lineno", 0)))
    return out


def _has_resolution(func_node: ast.AST) -> bool:
    for node in ast.walk(func_node):
        if isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None)
            if name in RESOLUTION_CALLS:
                return True
    return False


def _element_kinds(kinds: K.KindSet) -> K.KindSet:
    """Kinds of one element pulled out of a container of ``kinds``."""
    return kinds - frozenset({K.UNORDERED, K.FLOAT_ACC})


def build_project(modules: Iterable) -> FlowProject:
    """Symbol table → call graph → kind fixpoint over parsed modules.

    ``modules`` yields objects with ``path`` and ``tree`` attributes
    (:class:`repro.analysis.framework.SourceModule` fits).
    """
    table = SymbolTable()
    for module in modules:
        table.add_module(module.path, module.tree)
    graph = CallGraph(table)
    return FlowProject(table, graph)
