"""Call-graph construction over the project symbol table.

Every ``ast.Call`` inside a project function is a *site*; the resolver
tries to pin it to a :class:`~repro.analysis.flow.symbols.FunctionInfo`:

* bare names — local module functions, classes (→ ``__init__``), imports
  (``from .plan import resolve_plan``), module-level aliases;
* ``self.method()`` / ``cls.method()`` — the enclosing class and its
  project base classes;
* ``module.func()`` chains through imported project modules;
* method calls on receivers whose class is locally evident — a parameter
  annotation, a ``var = ClassName(...)`` assignment in the same function,
  or a ``self.attr`` the class's ``__init__`` assigned from a constructor;
* a unique-name fallback: a method name defined exactly once in the whole
  project resolves to that definition even when the receiver is opaque
  (class-hierarchy-analysis style — comes last, flagged ``approximate``).

A site is *intra-project* (the denominator of the resolution-rate metric
asserted in ``tests/analysis/test_flow.py``) when its terminal name is
defined somewhere in the project and the receiver is the project's —
bare names, ``self``/``cls``, project modules and locally typed
receivers — or when the terminal name is project-unique.  External calls
(``np.argsort``, ``.append``) are neither candidates nor failures.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .symbols import ClassInfo, FunctionInfo, ModuleInfo, SymbolTable, _dotted


@dataclass
class CallSite:
    """One resolved-or-not call expression inside a project function."""

    caller: FunctionInfo
    node: ast.Call
    target: Optional[FunctionInfo]
    #: terminal name matches a project definition reachable from here.
    candidate: bool
    #: resolved through the unique-name fallback (receiver was opaque).
    approximate: bool = False
    #: the project class a constructor call instantiates (set even when
    #: the class has no explicit ``__init__`` to point ``target`` at).
    target_class: Optional[ClassInfo] = None

    @property
    def resolved(self) -> bool:
        return self.target is not None or self.target_class is not None


@dataclass
class _LocalTypes:
    """Receiver-class facts gathered from one function body."""

    by_var: Dict[str, ClassInfo] = field(default_factory=dict)
    by_self_attr: Dict[str, ClassInfo] = field(default_factory=dict)
    #: names/attrs known to hold builtin containers (dict/list/set
    #: literals, defaultdict, ...): method calls on them are external.
    builtin_vars: set = field(default_factory=set)
    builtin_self_attrs: set = field(default_factory=set)


#: Method names shared with builtin containers / files / regex / sqlite —
#: never resolved through the unique-name fallback, because an opaque
#: receiver bearing one is far more likely a dict than a project object.
_AMBIENT_METHOD_NAMES = frozenset({
    "get", "pop", "popitem", "update", "copy", "clear", "setdefault",
    "keys", "values", "items", "append", "extend", "insert", "remove",
    "sort", "reverse", "count", "index", "add", "discard", "union",
    "intersection", "difference", "read", "write", "close", "flush",
    "seek", "join", "split", "strip", "startswith", "endswith", "format",
    "encode", "decode", "search", "match", "findall", "sub", "group",
    "execute", "executescript", "fetchone", "fetchall", "commit",
    "cursor",
})

#: Builtin-container constructors for receiver-type bookkeeping.
_BUILTIN_FACTORIES = frozenset({
    "dict", "list", "set", "frozenset", "tuple",
    "collections.defaultdict", "collections.OrderedDict",
    "collections.Counter", "collections.deque",
})


class CallGraph:
    """All call sites plus caller→callee edges and resolution stats."""

    def __init__(self, table: SymbolTable) -> None:
        self.table = table
        self.sites: List[CallSite] = []
        self.edges: Dict[str, set] = {}
        #: per-class attribute types harvested from ``__init__`` bodies.
        self._attr_types: Dict[str, Dict[str, ClassInfo]] = {}
        self._builtin_attrs: Dict[str, set] = {}
        for func in table.functions():
            if func.is_method and func.name == "__init__":
                typed, builtin = self._harvest_self_attrs(func)
                self._attr_types[func.cls.qualname] = typed
                self._builtin_attrs[func.cls.qualname] = builtin
        for func in table.functions():
            self._visit_function(func)

    # -- public queries -----------------------------------------------------

    def callees(self, qualname: str) -> set:
        return self.edges.get(qualname, set())

    def sites_in(self, func: FunctionInfo) -> List[CallSite]:
        return [s for s in self.sites if s.caller is func]

    def resolve_site(self, node: ast.Call) -> Optional[FunctionInfo]:
        return self._by_node.get(id(node))

    def resolution_stats(self) -> Tuple[int, int]:
        """``(resolved, candidates)`` over intra-project call sites."""
        candidates = [s for s in self.sites if s.candidate]
        resolved = [s for s in candidates if s.resolved]
        return len(resolved), len(candidates)

    def resolution_rate(self) -> float:
        resolved, candidates = self.resolution_stats()
        return resolved / candidates if candidates else 1.0

    # -- construction -------------------------------------------------------

    @property
    def _by_node(self) -> Dict[int, FunctionInfo]:
        cache = getattr(self, "_by_node_cache", None)
        if cache is None:
            cache = {
                id(s.node): s.target for s in self.sites if s.target is not None
            }
            self._by_node_cache = cache
        return cache

    def _harvest_self_attrs(self, init: FunctionInfo):
        typed: Dict[str, ClassInfo] = {}
        builtin: set = set()
        mod = init.module
        for stmt in ast.walk(init.node):
            if isinstance(stmt, ast.AnnAssign):
                targets, value = [stmt.target], stmt.value
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                targets, value = stmt.targets, stmt.value
            else:
                continue
            target = targets[0]
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                continue
            cls = self._constructed_class(value, mod) if value else None
            if cls is not None:
                typed[target.attr] = cls
            elif value is not None and _is_builtin_container(value):
                builtin.add(target.attr)
        return typed, builtin

    def _constructed_class(self, expr: ast.AST, mod: ModuleInfo) -> Optional[ClassInfo]:
        """The project class ``expr`` constructs, when syntactically evident."""
        if isinstance(expr, ast.Call):
            dotted = _dotted(expr.func)
            if dotted:
                entry = mod.resolve_name(dotted, self.table)
                if isinstance(entry, ClassInfo):
                    return entry
        return None

    def _local_types(self, func: FunctionInfo) -> _LocalTypes:
        types = _LocalTypes()
        mod = func.module
        args = func.node.args  # type: ignore[attr-defined]
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.annotation is not None:
                dotted = _annotation_name(arg.annotation)
                if dotted:
                    entry = mod.resolve_name(dotted, self.table)
                    if isinstance(entry, ClassInfo):
                        types.by_var[arg.arg] = entry
        for stmt in ast.walk(func.node):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                cls = self._constructed_class(stmt.value, mod)
                if cls is None:
                    if (_is_builtin_container(stmt.value)
                            and isinstance(target, ast.Name)):
                        types.builtin_vars.add(target.id)
                        types.by_var.pop(target.id, None)
                    continue
                if isinstance(target, ast.Name):
                    types.by_var[target.id] = cls
                    types.builtin_vars.discard(target.id)
                elif (isinstance(target, ast.Attribute)
                      and isinstance(target.value, ast.Name)
                      and target.value.id == "self"):
                    types.by_self_attr[target.attr] = cls
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                dotted = _annotation_name(stmt.annotation)
                if dotted:
                    entry = mod.resolve_name(dotted, self.table)
                    if isinstance(entry, ClassInfo):
                        types.by_var[stmt.target.id] = entry
        if func.is_method:
            types.by_self_attr.update(
                self._attr_types.get(func.cls.qualname, {}))
            types.builtin_self_attrs |= self._builtin_attrs.get(
                func.cls.qualname, set())
        return types

    def _visit_function(self, func: FunctionInfo) -> None:
        types = self._local_types(func)
        edges = self.edges.setdefault(func.qualname, set())
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Call):
                continue
            target, candidate, approx = self._resolve(node, func, types)
            target_class = None
            if isinstance(target, ClassInfo):
                # Constructor call: resolved to the class; the edge goes
                # to its __init__ when one is defined (dataclasses and
                # bare exception subclasses have none to point at).
                target_class = target
                target = target.method("__init__", self.table)
                candidate = True
            self.sites.append(CallSite(
                caller=func, node=node, target=target,
                candidate=candidate or target is not None
                or target_class is not None,
                approximate=approx, target_class=target_class,
            ))
            if target is not None:
                edges.add(target.qualname)

    def _resolve(self, node: ast.Call, func: FunctionInfo,
                 types: _LocalTypes):
        """``(target, is_candidate, approximate)`` for one call site."""
        mod = func.module
        f = node.func
        # Bare name: locals shadowing is rare in this codebase; resolve
        # through the module namespace.
        if isinstance(f, ast.Name):
            entry = mod.resolve_name(f.id, self.table)
            if isinstance(entry, (FunctionInfo, ClassInfo)):
                return entry, True, False
            return None, bool(self.table.by_name.get(f.id)) and f.id in (
                set(mod.functions) | set(mod.classes)), False
        if not isinstance(f, ast.Attribute):
            return None, False, False
        method = f.attr
        base = f.value
        # Method call on a known builtin container — external, not a site.
        if isinstance(base, ast.Name) and base.id in types.builtin_vars:
            return None, False, False
        if (isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
                and base.attr in types.builtin_self_attrs):
            return None, False, False
        # self.method() / cls.method() — enclosing class and bases.
        if isinstance(base, ast.Name) and base.id in ("self", "cls") and func.is_method:
            found = func.cls.method(method, self.table)
            if found is not None:
                return found, True, False
            # self.attr() where attr is a stored callable of known class —
            # not a method: fall through to attr-type resolution below.
            attr_cls = types.by_self_attr.get(method)
            if attr_cls is not None:
                init = attr_cls.method("__init__", self.table)
                if init is not None:
                    return init, True, False
            return None, True, False
        # self.attr.method() — receiver typed via __init__ harvesting.
        if (isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
                and base.attr in types.by_self_attr):
            found = types.by_self_attr[base.attr].method(method, self.table)
            return found, True, False
        # var.method() — receiver typed locally.
        if isinstance(base, ast.Name) and base.id in types.by_var:
            found = types.by_var[base.id].method(method, self.table)
            return found, True, False
        # super().method()
        if (isinstance(base, ast.Call) and isinstance(base.func, ast.Name)
                and base.func.id == "super" and func.is_method):
            for base_name in func.cls.base_names:
                entry = mod.resolve_name(base_name, self.table)
                if isinstance(entry, ClassInfo):
                    found = entry.method(method, self.table)
                    if found is not None:
                        return found, True, False
            return None, True, False
        # module.func() chains (possibly through aliases).
        dotted = _dotted(f)
        if dotted:
            entry = mod.resolve_name(dotted, self.table)
            if isinstance(entry, (FunctionInfo, ClassInfo)):
                return entry, True, False
            head = dotted.partition(".")[0]
            head_entry = mod.resolve_name(head, self.table)
            if isinstance(head_entry, ModuleInfo):
                # Project module, but the attribute is not defined there —
                # still an intra-project site, just unresolved.
                return None, True, False
        # Unique-name fallback: opaque receiver, project-unique method.
        # Names shared with builtin containers never resolve this way — an
        # opaque `.get(...)` is a dict lookup, not Config.get.
        if method in _AMBIENT_METHOD_NAMES:
            return None, False, False
        owners = self.table.by_name.get(method, [])
        if len(owners) == 1 and owners[0].is_method:
            return owners[0], True, True
        return None, False, False


def _is_builtin_container(expr: ast.AST) -> bool:
    """``expr`` evidently builds a builtin container (dict/list/set/...)."""
    if isinstance(expr, (ast.Dict, ast.List, ast.Set, ast.Tuple,
                         ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        return _dotted(expr.func) in _BUILTIN_FACTORIES
    return False


def _annotation_name(node: ast.AST) -> str:
    """Dotted class name of an annotation (unwraps quotes and Optional)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip()
        for sep in ("|",):
            if sep in text:
                text = text.split(sep)[0].strip()
        return text if text.replace(".", "").replace("_", "").isalnum() else ""
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _annotation_name(node.left)
    if isinstance(node, ast.Subscript):  # Optional[X] / list[X] — head only
        return ""
    return _dotted(node)
