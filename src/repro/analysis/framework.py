"""gammalint's chassis: source modules, checker registry, runner, output.

The linter is deliberately self-contained (stdlib ``ast`` + ``re`` only) so
it can run in CI before any optional tooling is installed.  Checkers are
small classes registered with :func:`register`; each gets a parsed
:class:`SourceModule` plus the repo-wide :class:`LintContext` and yields
:class:`~repro.analysis.diagnostics.Diagnostic` records.  Waivers are
applied centrally here, so no checker needs waiver logic of its own.
"""

from __future__ import annotations

import ast
import json
import pathlib
import re
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence, Type

from .diagnostics import Diagnostic
from .flow import FlowProject, build_project
from .waivers import META_CODES, WaiverSet

# ---------------------------------------------------------------------------
# Repo layout scopes.  Paths are matched on their ``repro/...`` suffix so the
# linter works from any checkout root (and on fixture files that *pretend*
# to live in the package — see tests/analysis).
# ---------------------------------------------------------------------------

#: Modules that drive the simulator: every device-visible graph read here
#: must route through the charging APIs.
ENGINE_SCOPES = ("repro/core/", "repro/algorithms/", "repro/baselines/")

#: Wall-clock hot modules: dtype discipline and overflow guards required.
HOT_SCOPES = ("repro/core/", "repro/gpusim/", "repro/graph/csr.py")


def _package_relpath(path: str) -> str:
    """The ``repro/...`` suffix of ``path`` (empty if outside the package)."""
    posix = pathlib.PurePath(path).as_posix()
    marker = "repro/"
    idx = posix.rfind(marker)
    return posix[idx:] if idx >= 0 else ""


def in_engine_scope(path: str) -> bool:
    return _package_relpath(path).startswith(ENGINE_SCOPES)


def in_hot_scope(path: str) -> bool:
    return _package_relpath(path).startswith(HOT_SCOPES)


# ---------------------------------------------------------------------------
# Parsed inputs
# ---------------------------------------------------------------------------


class SourceModule:
    """One parsed source file: text, AST (with parent links), waivers."""

    def __init__(self, path: str, text: str) -> None:
        self.path = path
        self.text = text
        self.tree = ast.parse(text, filename=path)
        self.waivers = WaiverSet(path, text)
        self._parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                self._parents[child] = node

    @classmethod
    def from_path(cls, path: pathlib.Path, root: pathlib.Path | None = None) -> "SourceModule":
        display = str(path)
        if root is not None:
            try:
                display = str(path.relative_to(root))
            except ValueError:
                pass
        return cls(display, path.read_text())

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def enclosing_function(self, node: ast.AST) -> ast.FunctionDef | None:
        """Innermost function/method containing ``node`` (or ``None``)."""
        current = self.parent(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = self.parent(current)
        return None

    def enclosing_class(self, node: ast.AST) -> ast.ClassDef | None:
        current = self.parent(node)
        while current is not None:
            if isinstance(current, ast.ClassDef):
                return current
            current = self.parent(current)
        return None


@dataclass
class LintContext:
    """Repo-wide facts shared by all checkers."""

    #: Concatenated text of the pipeline-equivalence test corpus — the
    #: files the pipeline-parity checker cross-references gated names
    #: against.  Empty string means "no corpus available; skip that rule".
    tests_corpus: str = ""
    #: Names of the corpus files (for diagnostics only).
    corpus_files: tuple = ()
    #: The interprocedural dataflow project built over every module of
    #: this lint run (symbol table, call graph, value kinds).  The runner
    #: always populates it; ``field`` keeps dataclass defaults happy for
    #: direct construction in tests.
    flow: "FlowProject | None" = field(default=None, compare=False)
    #: Report module-level waivers none of whose codes suppressed
    #: anything this run (``--check-waivers``).
    check_waivers: bool = False


#: Test files belong to the equivalence corpus when their *name* says so or
#: their text exercises the pipeline switch.
_CORPUS_NAME = re.compile(r"equivalence|contract|pipeline")
_CORPUS_TEXT = re.compile(r"perf\.pipeline\(|REPRO_PIPELINE|set_pipeline\(")


def build_context(tests_dir: pathlib.Path | None) -> LintContext:
    """Scan ``tests_dir`` for the pipeline-equivalence corpus."""
    if tests_dir is None or not tests_dir.is_dir():
        return LintContext()
    chunks, names = [], []
    for path in sorted(tests_dir.rglob("*.py")):
        text = path.read_text()
        if _CORPUS_NAME.search(path.name) or _CORPUS_TEXT.search(text):
            chunks.append(text)
            names.append(path.name)
    return LintContext(tests_corpus="\n".join(chunks), corpus_files=tuple(names))


# ---------------------------------------------------------------------------
# Checker registry
# ---------------------------------------------------------------------------


class Checker:
    """Base class: subclass, set the class attributes, implement check()."""

    #: Stable registry key (kebab-case).
    name: str = ""
    #: Diagnostic codes this checker can emit (the waiver vocabulary).
    codes: tuple = ()
    #: One-line description shown by ``--list-checkers``.
    description: str = ""

    def check(self, module: SourceModule, context: LintContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diagnostic(self, module: SourceModule, node: ast.AST, code: str,
                   message: str) -> Diagnostic:
        return Diagnostic(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=code,
            message=message,
            checker=self.name,
        )


_REGISTRY: dict[str, Type[Checker]] = {}


def register(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator adding a checker to the global registry."""
    if not cls.name or not cls.codes:
        raise ValueError(f"checker {cls.__name__} must define name and codes")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate checker name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def all_checkers() -> list[Checker]:
    """Fresh instances of every registered checker, stable order."""
    from . import checkers as _checkers  # noqa: F401  (side-effect import)
    return [_REGISTRY[name]() for name in sorted(_REGISTRY)]


def known_codes() -> frozenset:
    """Every waivable diagnostic code plus the waiver meta-codes."""
    codes = set(META_CODES)
    for checker in all_checkers():
        codes.update(checker.codes)
    return frozenset(codes)


# ---------------------------------------------------------------------------
# Running
# ---------------------------------------------------------------------------


def lint_module(module: SourceModule, context: LintContext,
                checkers: Sequence[Checker] | None = None,
                select: Iterable[str] | None = None) -> list[Diagnostic]:
    """All surviving diagnostics for one module (waivers applied)."""
    if context.flow is None:
        context.flow = build_project([module])
    checkers = list(checkers) if checkers is not None else all_checkers()
    selected = frozenset(select) if select else None
    out: list[Diagnostic] = []
    for checker in checkers:
        for diag in checker.check(module, context):
            if selected is not None and diag.code not in selected:
                continue
            if module.waivers.suppresses(diag.code, diag.line):
                continue
            out.append(diag)
    if selected is None:
        out.extend(module.waivers.problems(
            known_codes(), check_stale=context.check_waivers))
    return sorted(out)


def lint_source(text: str, path: str = "<string>",
                tests_corpus: str = "",
                select: Iterable[str] | None = None,
                check_waivers: bool = False) -> list[Diagnostic]:
    """Lint an in-memory snippet as if it lived at ``path``.

    The fixture harness drives this; ``path`` decides checker scopes.
    The flow project is built from the single snippet, so interprocedural
    checkers see exactly its module-local call graph.
    """
    module = SourceModule(path, text)
    context = LintContext(tests_corpus=tests_corpus,
                          check_waivers=check_waivers)
    return lint_module(module, context, select=select)


def iter_python_files(paths: Sequence[pathlib.Path]) -> Iterator[pathlib.Path]:
    for path in paths:
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if any(part.startswith(".") for part in sub.parts):
                    continue
                yield sub
        elif path.suffix == ".py":
            yield path


def lint_paths(paths: Sequence[pathlib.Path],
               tests_dir: pathlib.Path | None = None,
               select: Iterable[str] | None = None,
               root: pathlib.Path | None = None,
               check_waivers: bool = False,
               only_files: "set[str] | None" = None) -> list[Diagnostic]:
    """Lint every Python file under ``paths``; returns sorted diagnostics.

    Two phases: every file is parsed first so the interprocedural flow
    project (symbol table, call graph, kinds) spans the whole run, then
    checkers execute per module.  ``only_files`` restricts which modules
    are *checked* (``--changed``) while the flow project still covers the
    full path set — cross-file resolution must not depend on what
    happens to be in the diff.
    """
    context = build_context(tests_dir)
    context.check_waivers = check_waivers
    checkers = all_checkers()
    out: list[Diagnostic] = []
    modules: list[SourceModule] = []
    for file_path in iter_python_files(paths):
        try:
            modules.append(SourceModule.from_path(file_path, root=root))
        except SyntaxError as exc:
            out.append(Diagnostic(
                path=str(file_path), line=exc.lineno or 1, col=1,
                code="syntax-error", message=str(exc.msg), checker="framework",
            ))
    context.flow = build_project(modules)
    for module in modules:
        if only_files is not None and _resolved(module.path) not in only_files:
            continue
        out.extend(lint_module(module, context, checkers, select=select))
    return sorted(out)


def _resolved(path: str) -> str:
    return str(pathlib.Path(path).resolve())


# ---------------------------------------------------------------------------
# Output
# ---------------------------------------------------------------------------


def format_human(diagnostics: Sequence[Diagnostic]) -> str:
    """One ``path:line:col: [code] message`` line each, plus a count."""
    lines = [d.format() for d in diagnostics]
    noun = "diagnostic" if len(diagnostics) == 1 else "diagnostics"
    lines.append(f"gammalint: {len(diagnostics)} {noun}")
    return "\n".join(lines)


def format_json(diagnostics: Sequence[Diagnostic]) -> str:
    """Machine-readable report: ``{diagnostics: [...], count: N}``."""
    return json.dumps(
        {
            "diagnostics": [d.to_json() for d in diagnostics],
            "count": len(diagnostics),
        },
        indent=2,
    )


def format_sarif(diagnostics: Sequence[Diagnostic]) -> str:
    """SARIF 2.1.0 report — what GitHub code scanning ingests.

    One run, one rule per distinct diagnostic code, one result per
    finding; CI uploads this so findings surface as PR annotations.
    """
    rules: dict[str, dict] = {}
    by_checker: dict[str, str] = {}
    for checker in all_checkers():
        for code in checker.codes:
            by_checker[code] = checker.description
    results = []
    for diag in diagnostics:
        if diag.code not in rules:
            rules[diag.code] = {
                "id": diag.code,
                "shortDescription": {
                    "text": by_checker.get(diag.code, diag.code),
                },
            }
        results.append({
            "ruleId": diag.code,
            "level": "error",
            "message": {"text": diag.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": pathlib.PurePath(diag.path).as_posix(),
                    },
                    "region": {
                        "startLine": diag.line,
                        "startColumn": max(diag.col, 1),
                    },
                },
            }],
        })
    return json.dumps(
        {
            "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
            "version": "2.1.0",
            "runs": [{
                "tool": {
                    "driver": {
                        "name": "gammalint",
                        "rules": [rules[c] for c in sorted(rules)],
                    },
                },
                "results": results,
            }],
        },
        indent=2,
    )
