"""Diagnostic records produced by gammalint checkers.

A diagnostic pins one invariant violation to a ``path:line:col`` location.
Codes are short stable slugs (``charge``, ``parity-twin``, ``dtype``, ...)
that double as the waiver vocabulary: a line comment
``# gammalint: allow[<code>] -- <reason>`` suppresses exactly that code on
that line (see :mod:`repro.analysis.waivers`).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding, ordered by location for stable output."""

    path: str
    line: int
    col: int
    code: str
    message: str = field(compare=False)
    checker: str = field(default="", compare=False)

    def format(self) -> str:
        """Human-readable one-liner (``path:line:col: code message``)."""
        return f"{self.path}:{self.line}:{self.col}: [{self.code}] {self.message}"

    def to_json(self) -> dict:
        """JSON-serializable mapping (the ``--format json`` record)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "checker": self.checker,
        }
