"""Waiver comments: the escape hatch every checker honors.

Two forms, both requiring a reason after ``--`` (a waiver that does not say
*why* the invariant is safe to bypass is itself a diagnostic):

* line waiver — suppresses the listed codes on that source line::

      starts = graph.offsets[v]  # gammalint: allow[charge] -- charged below

* module waiver — first ~30 lines of a file, suppresses the listed codes
  everywhere in it (for modules that *implement* the invariant, e.g. the
  residence layer is the charging boundary itself)::

      # gammalint: module-allow[charge] -- this module implements charging

Unknown codes and waivers that never suppress anything are reported
(``waiver-unknown`` / ``waiver-unused``), so stale waivers cannot linger.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from .diagnostics import Diagnostic

WAIVER_RE = re.compile(
    r"#\s*gammalint:\s*(?P<module>module-)?allow\[(?P<codes>[^\]]*)\]"
    r"(?:\s*--\s*(?P<reason>\S.*))?"
)

#: Codes emitted by the waiver machinery itself (never waivable).
META_CODES = ("waiver-reason", "waiver-unknown", "waiver-unused",
              "waiver-stale")

#: Module waivers must appear in the file head, next to the docstring —
#: burying one deep in a file hides how much it silences.
MODULE_WAIVER_MAX_LINE = 30


@dataclass
class Waiver:
    """One parsed waiver comment."""

    line: int
    codes: tuple[str, ...]
    reason: str
    module_level: bool
    used: set = field(default_factory=set)


def _iter_comments(text: str):
    """``(line, comment_text)`` for every real comment token.

    Tokenizing (rather than regex-scanning raw lines) keeps waiver syntax
    quoted inside strings and docstrings — like the examples above — from
    being parsed as live waivers.
    """
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except tokenize.TokenError:  # pragma: no cover - unterminated input
        return


class WaiverSet:
    """All waivers of one source file, plus their usage bookkeeping."""

    def __init__(self, path: str, text: str) -> None:
        self.path = path
        self.line_waivers: dict[int, Waiver] = {}
        self.module_waivers: list[Waiver] = []
        for lineno, comment in _iter_comments(text):
            match = WAIVER_RE.search(comment)
            if match is None:
                continue
            codes = tuple(
                c.strip() for c in match.group("codes").split(",") if c.strip()
            )
            waiver = Waiver(
                line=lineno,
                codes=codes,
                reason=(match.group("reason") or "").strip(),
                module_level=match.group("module") is not None,
            )
            if waiver.module_level:
                self.module_waivers.append(waiver)
            else:
                self.line_waivers[lineno] = waiver

    def suppresses(self, code: str, line: int) -> bool:
        """Whether ``code`` at ``line`` is waived; marks the waiver used."""
        waiver = self.line_waivers.get(line)
        if waiver is not None and code in waiver.codes:
            waiver.used.add(code)
            return True
        for waiver in self.module_waivers:
            if code in waiver.codes and waiver.line <= MODULE_WAIVER_MAX_LINE:
                waiver.used.add(code)
                return True
        return False

    def problems(self, known_codes: frozenset,
                 check_stale: bool = False) -> list[Diagnostic]:
        """Diagnostics about the waivers themselves.

        ``check_stale`` additionally reports module-level waivers with
        codes that suppressed nothing this run (``waiver-stale``) — the
        ``--check-waivers`` mode.  Line-level staleness is always on
        (``waiver-unused``): a line waiver points at exactly one line, so
        "suppressed nothing" is unambiguous, whereas a module waiver can
        legitimately go quiet on a partial-tree run.
        """
        out = []
        for waiver in self._all():
            if not waiver.reason:
                out.append(self._meta(
                    waiver, "waiver-reason",
                    "waiver is missing its reason; write "
                    "`# gammalint: allow[code] -- why this is safe`",
                ))
            for code in waiver.codes:
                if code not in known_codes:
                    out.append(self._meta(
                        waiver, "waiver-unknown",
                        f"waiver names unknown code {code!r} "
                        f"(known: {', '.join(sorted(known_codes))})",
                    ))
            if waiver.module_level and waiver.line > MODULE_WAIVER_MAX_LINE:
                out.append(self._meta(
                    waiver, "waiver-unknown",
                    f"module-allow must appear within the first "
                    f"{MODULE_WAIVER_MAX_LINE} lines (found at line "
                    f"{waiver.line})",
                ))
            unused = [
                c for c in waiver.codes
                if c in known_codes and c not in waiver.used
            ]
            if unused and not waiver.module_level:
                out.append(self._meta(
                    waiver, "waiver-unused",
                    f"waiver for {', '.join(unused)} suppresses nothing "
                    "on this line; delete it",
                ))
            elif unused and waiver.module_level and check_stale:
                out.append(self._meta(
                    waiver, "waiver-stale",
                    f"module waiver for {', '.join(unused)} suppressed "
                    "nothing in this run; the waived code no longer "
                    "occurs — narrow or delete the waiver",
                ))
        return out

    def _all(self):
        return list(self.line_waivers.values()) + self.module_waivers

    def _meta(self, waiver: Waiver, code: str, message: str) -> Diagnostic:
        return Diagnostic(
            path=self.path, line=waiver.line, col=1,
            code=code, message=message, checker="waivers",
        )
