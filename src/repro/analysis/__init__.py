"""gammalint — AST-based invariant checks for the GAMMA reproduction.

The simulator's correctness rests on conventions no type checker sees:
adjacency reads must be *charged* (or the §IV clocks undercount), every
fast path needs its bit-for-bit reference twin plus an equivalence test,
hot-module NumPy code must pin dtypes and guard packed-key overflow, and
per-warp loops must not race on shared simulator state — not even
transitively through helper calls.  An interprocedural dataflow layer
(:mod:`repro.analysis.flow`: project symbol table, call graph, value-kind
fixpoint) additionally guards process-boundary safety (fork-hostile
state into pickle/Process/pool sinks) and determinism (unordered
iteration, order-sensitive float sums, ambient seeds and host clocks).
This package enforces those invariants mechanically:

* ``python -m repro.analysis src/`` — lint a tree (exit 1 on findings);
* ``tools/lint.py`` — the CI entry point (gammalint + ruff + mypy);
* ``# gammalint: allow[<code>] -- <reason>`` — per-line waiver;
* docs/LINTING.md — checker catalog and how to add one.

The framework is stdlib-only (``ast`` + ``re``), fixture-tested in
``tests/analysis/``.
"""

from .diagnostics import Diagnostic
from .framework import (
    Checker,
    LintContext,
    SourceModule,
    all_checkers,
    build_context,
    format_human,
    format_json,
    format_sarif,
    known_codes,
    lint_module,
    lint_paths,
    lint_source,
    register,
)
from .waivers import Waiver, WaiverSet

__all__ = [
    "Checker",
    "Diagnostic",
    "LintContext",
    "SourceModule",
    "Waiver",
    "WaiverSet",
    "all_checkers",
    "build_context",
    "format_human",
    "format_json",
    "format_sarif",
    "known_codes",
    "lint_module",
    "lint_paths",
    "lint_source",
    "register",
]
