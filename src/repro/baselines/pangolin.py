"""Pangolin baselines (paper refs [8]; §VI "Pangolin-GPU"/"Pangolin-ST").

Pangolin is the only prior GPU GPM framework.  Its defining traits, all
modelled here:

* **in-core only** — graph, embedding tables and aggregation scratch live
  in device memory; moderate graphs already exhaust it ("it cannot process
  GPM tasks on even moderate-size graphs", §VII-A);
* **two-pass extension** — the parallel write conflict is solved by
  running every extension twice (count, scan, re-extend; §V-B Challenge 1);
* **no pre-merge grouping** — each embedding re-intersects its full
  anchor lists (Fig. 8(a));
* **no embedding-table compression** — filtered rows keep their storage
  ("the compression is ignored in existing GPM frameworks", §V-A).

``PangolinST`` is the single-thread CPU build the paper uses as the
normalization baseline of Fig. 16.
"""

from __future__ import annotations

from ..core.memory_pool import TwoPassStrategy, WriteStrategy
from .base import CpuEngine, InCoreEngine


class PangolinGPU(InCoreEngine):
    """Pangolin's GPU build: in-core, two-pass, uncompressed."""

    name = "pangolin-gpu"
    compaction = False
    pre_merge = False

    def _make_strategy(self) -> WriteStrategy:
        return TwoPassStrategy(self.platform)


class PangolinST(CpuEngine):
    """Pangolin's single-thread CPU build."""

    name = "pangolin-st"
    compaction = False
    pre_merge = False
    threads = 1
    op_factor = 1.0
